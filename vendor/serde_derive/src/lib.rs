//! No-op derive macros for the vendored serde stand-in. The workspace
//! only uses `#[derive(Serialize, Deserialize)]` as forward-looking
//! annotations — nothing serializes through serde yet — so the derives
//! expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
