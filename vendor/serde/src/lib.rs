//! Offline stand-in for `serde`. Provides the `Serialize` /
//! `Deserialize` names in both the trait and macro namespaces so
//! `use serde::{Serialize, Deserialize}` + `#[derive(...)]` compile
//! unchanged; the derives are no-ops (see `serde_derive`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait (no methods; nothing in this workspace serializes
/// through serde yet).
pub trait Serialize {}

/// Marker trait, lifetime-parameterized like the real one.
pub trait Deserialize<'de>: Sized {}
