//! Offline stand-in for the `bytes` crate: the little-endian
//! cursor/builder subset used by the checkpoint format.

/// Read-side cursor trait, implemented for `&[u8]` (the slice
/// advances as bytes are consumed, like upstream).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side builder trait.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_slice(b"xy");
        let v = b.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 14);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
