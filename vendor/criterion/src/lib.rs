//! Offline stand-in for `criterion`: a minimal wall-clock
//! micro-benchmark harness with the same macro/trait surface the
//! workspace's benches use (`bench_function`, `iter`, `iter_batched`,
//! `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! Each benchmark warms up briefly, then runs timed batches until the
//! measurement budget is spent and reports the median batch's ns/iter
//! on stdout. Env knobs:
//! * `CRITERION_MEASURE_MS` — measurement budget per bench (default
//!   300; set small for smoke-running benches in CI).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark result (exposed so wrapper binaries can collect
/// measurements programmatically).
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub ns_per_iter: f64,
    pub iters: u64,
}

/// Harness entry point; collects results of every `bench_function`.
pub struct Criterion {
    measure: Duration,
    pub results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            measure: Duration::from_millis(ms),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measure,
            samples: Vec::new(),
            total_iters: 0,
        };
        f(&mut b);
        let ns = b.median_ns();
        println!("{id:<44} {:>12.1} ns/iter  ({} iters)", ns, b.total_iters);
        self.results.push(Measurement {
            name: id.to_string(),
            ns_per_iter: ns,
            iters: b.total_iters,
        });
        self
    }
}

/// Passed to the closure of `bench_function`; runs the measured
/// routine.
pub struct Bencher {
    budget: Duration,
    /// ns/iter of each timed batch.
    samples: Vec<f64>,
    total_iters: u64,
}

/// Batch-size hint (accepted for API compatibility; the harness picks
/// batch counts from the time budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    }

    /// Time `f` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warmup + batch-size calibration: aim for batches of ~1/20th
        // of the budget
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.budget / 10 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch =
            ((self.budget.as_secs_f64() / 20.0 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples.push(dt * 1e9 / batch as f64);
            self.total_iters += batch;
        }
        if self.samples.is_empty() {
            // budget too small for even one batch: take one sample
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64() * 1e9);
            self.total_iters += 1;
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // one warmup run to estimate cost
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let per_iter = t0.elapsed().as_secs_f64().max(1e-9);
        self.total_iters += 1;

        let deadline = Instant::now() + self.budget;
        let target_batch = ((self.budget.as_secs_f64() / 20.0 / per_iter) as u64).clamp(1, 10_000);
        while Instant::now() < deadline {
            let inputs: Vec<I> = (0..target_batch).map(|_| setup()).collect();
            let n = inputs.len() as u64;
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples.push(dt * 1e9 / n as f64);
            self.total_iters += n;
        }
        if self.samples.is_empty() {
            self.samples.push(per_iter * 1e9);
        }
    }
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].ns_per_iter >= 0.0);
        assert!(c.results[0].iters > 0);
    }

    #[test]
    fn batched_measures() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("vec_sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert!(c.results[0].iters > 0);
    }
}
