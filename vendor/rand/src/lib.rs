//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no crates.io access, so this vendored
//! crate provides the exact surface the workspace uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, `rngs::StdRng`,
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++
//! seeded through SplitMix64 — a different stream than upstream
//! `StdRng` (ChaCha12), but with the same determinism guarantees:
//! identical seeds give identical streams on every platform.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from raw bits (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // modulo bias is < 2^-32 for all spans this codebase
                // uses; acceptable for simulation sampling
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods (blanket-implemented, like
/// upstream rand 0.8).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with
    /// SplitMix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Snapshot the 256-bit generator state (for checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot; the
        /// restored generator continues the exact same stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let k = r.gen_range(3usize..17);
            assert!((3..17).contains(&k));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
