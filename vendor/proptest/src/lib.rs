//! Offline stand-in for `proptest`: a deterministic mini
//! property-testing harness exposing the subset this workspace uses —
//! the `proptest!` macro, `Strategy` with `prop_map`/`prop_filter`,
//! range/tuple/array strategies, `collection::vec`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking; failures report the
//! case number, and cases are reproducible (the RNG is seeded from the
//! test's module path + name).

pub mod test_runner {
    /// SplitMix64-based deterministic test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5DEECE66D,
            }
        }

        /// Seed deterministically from a test identifier string.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::from_seed(h)
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Value generator. `generate` returns `None` when a filter
    /// rejects the draw (the runner retries).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                _reason: reason,
            }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        _reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.generate(rng).filter(|v| (self.f)(v))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[inline]
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    Some(self.start.wrapping_add((rng.next_u64() % span) as $t))
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    impl Strategy for Range<f64> {
        type Value = f64;
        #[inline]
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            Some(self.start + rng.next_f64() * (self.end - self.start))
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        #[inline]
        fn generate(&self, rng: &mut TestRng) -> Option<f32> {
            Some(self.start + rng.next_f64() as f32 * (self.end - self.start))
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
            let mut out: Vec<S::Value> = Vec::with_capacity(N);
            for s in self {
                out.push(s.generate(rng)?);
            }
            out.try_into().ok().or_else(|| unreachable!())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: exact or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end);
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = self.size.hi - self.size.lo + 1;
            let n = self.size.lo + (rng.next_u64() % span as u64) as usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests. Each test draws every named argument from
/// its strategy and runs the body for a fixed number of deterministic
/// cases (env `PROPTEST_CASES` overrides the default 64).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ::std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(64);
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..cases {
                    $(
                        let $arg = {
                            let mut __drawn = ::std::option::Option::None;
                            for _ in 0..50_000u32 {
                                if let ::std::option::Option::Some(v) =
                                    $crate::strategy::Strategy::generate(&$strat, &mut __rng)
                                {
                                    __drawn = ::std::option::Option::Some(v);
                                    break;
                                }
                            }
                            __drawn.unwrap_or_else(|| panic!(
                                "strategy for `{}` rejected too many draws",
                                stringify!($arg),
                            ))
                        };
                    )*
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property `{}` failed at case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body (returns an `Err` to the runner on
/// failure instead of panicking mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(format!("assertion failed: {:?} != {:?}", __a, __b));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a != *__b) {
            return ::std::result::Result::Err(format!("assertion failed: {:?} == {:?}", __a, __b));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f = {f}");
        }

        #[test]
        fn map_and_filter_compose(v in (0u32..100).prop_map(|x| x * 2).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 200);
        }

        #[test]
        fn arrays_and_vecs(a in [0u8..10, 0u8..10, 0u8..10], v in crate::collection::vec(0u64..5, 7)) {
            prop_assert_eq!(a.len(), 3);
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }
}
