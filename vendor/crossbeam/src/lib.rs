//! Offline stand-in for `crossbeam`: only the `channel` module subset
//! the vmpi threaded backend uses (unbounded SPSC/MPSC channels with
//! cloneable senders). Backed by `std::sync::mpsc`; receivers are
//! additionally `Sync`-wrapped via a mutex so the type surface matches
//! crossbeam's.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    #[derive(Debug)]
    pub struct RecvError;

    /// Cloneable sending half.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            self.inner
                .send(v)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half. Arc/Mutex-wrapped so it is `Clone + Sync` like
    /// crossbeam's receiver (the workspace only ever receives from one
    /// thread at a time, so the lock is uncontended).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("receiver poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .lock()
                .expect("receiver poisoned")
                .try_recv()
                .ok()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (
            Sender { inner: s },
            Receiver {
                inner: Arc::new(Mutex::new(r)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (s, r) = unbounded::<u32>();
            let s2 = s.clone();
            std::thread::scope(|scope| {
                scope.spawn(move || s.send(1).unwrap());
                scope.spawn(move || s2.send(2).unwrap());
                let a = r.recv().unwrap();
                let b = r.recv().unwrap();
                assert_eq!(a + b, 3);
            });
        }
    }
}
