//! Offline stand-in for `crossbeam`: only the `channel` module subset
//! the vmpi threaded backend uses (unbounded SPSC/MPSC channels with
//! cloneable senders). Backed by `std::sync::mpsc`; receivers are
//! additionally `Sync`-wrapped via a mutex so the type surface matches
//! crossbeam's.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a non-blocking receive returned nothing (crossbeam's
    /// `TryRecvError` surface).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now.
        Empty,
        /// No message queued and every sender has been dropped.
        Disconnected,
    }

    /// Why a bounded-wait receive returned nothing (crossbeam's
    /// `RecvTimeoutError` surface).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Every sender has been dropped.
        Disconnected,
    }

    /// Cloneable sending half.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            self.inner
                .send(v)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half. Arc/Mutex-wrapped so it is `Clone + Sync` like
    /// crossbeam's receiver (the workspace only ever receives from one
    /// thread at a time, so the lock is uncontended). A poisoned lock
    /// (a panic while receiving) reports as `Disconnected`.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            match self.inner.lock() {
                Ok(rx) => rx.recv().map_err(|_| RecvError),
                Err(_) => Err(RecvError),
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = match self.inner.lock() {
                Ok(rx) => rx,
                Err(_) => return Err(TryRecvError::Disconnected),
            };
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let rx = match self.inner.lock() {
                Ok(rx) => rx,
                Err(_) => return Err(RecvTimeoutError::Disconnected),
            };
            rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (
            Sender { inner: s },
            Receiver {
                inner: Arc::new(Mutex::new(r)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (s, r) = unbounded::<u32>();
            let s2 = s.clone();
            std::thread::scope(|scope| {
                scope.spawn(move || s.send(1).unwrap());
                scope.spawn(move || s2.send(2).unwrap());
                let a = r.recv().unwrap();
                let b = r.recv().unwrap();
                assert_eq!(a + b, 3);
            });
        }

        #[test]
        fn try_recv_distinguishes_empty_from_disconnected() {
            let (s, r) = unbounded::<u32>();
            assert_eq!(r.try_recv(), Err(TryRecvError::Empty));
            s.send(9).unwrap();
            assert_eq!(r.try_recv(), Ok(9));
            drop(s);
            assert_eq!(r.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_and_detects_hangup() {
            let (s, r) = unbounded::<u32>();
            assert_eq!(
                r.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            s.send(4).unwrap();
            assert_eq!(r.recv_timeout(Duration::from_millis(5)), Ok(4));
            drop(s);
            assert_eq!(
                r.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
