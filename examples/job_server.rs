//! Submit simulations to the in-process job server and tail a job's
//! live trace: two tenants share the worker pool, an identical
//! duplicate submission is served from one engine run, and the job
//! metadata on each report shows who queued how long and who hit the
//! cache (DESIGN.md §16).
//!
//! ```bash
//! cargo run --release --example job_server
//! ```

use jobsrv::prelude::*;
use jobsrv::JobPriority;

fn main() {
    let srv = JobServer::start(ServerConfig::default().workers(2).thread_budget(8));

    let base = RunConfig::builder()
        .paper(Dataset::D1, 0.03)
        .ranks(2)
        .steps(10)
        .rebalance(None);

    // Tenant A floods three seeds; tenant B submits one job plus an
    // exact duplicate of A's first — the duplicate never runs.
    let mut handles = Vec::new();
    for seed in [1u64, 2, 3] {
        let run = base.clone().seed(seed).build().expect("valid config");
        handles.push(
            srv.submit(
                JobSpec::new(run)
                    .tenant("team-a")
                    .priority(JobPriority::Normal)
                    .label(format!("sweep seed {seed}")),
            ),
        );
    }
    let b_run = base.clone().seed(9).build().expect("valid config");
    let b_job = srv.submit(
        JobSpec::new(b_run)
            .tenant("team-b")
            .priority(JobPriority::High)
            .label("tenant-b run"),
    );
    let dup_run = base.clone().seed(1).build().expect("valid config");
    let dup = srv.submit(
        JobSpec::new(dup_run)
            .tenant("team-b")
            .label("duplicate of seed 1"),
    );

    // Tail tenant B's trace live while everything else runs.
    let tail = b_job.subscribe();
    let mut streamed_steps = 0usize;
    for ev in tail {
        if matches!(ev, TraceEvent::Step { .. }) {
            streamed_steps += 1;
        }
    }
    println!(
        "tailed {streamed_steps} live step events from {}\n",
        b_job.id()
    );

    handles.push(b_job);
    handles.push(dup);

    println!("  job    | tenant  |  cache | queue s |  run s | attempts | population");
    for h in &handles {
        let report = h.wait().expect("job completes");
        let meta = report.job.as_ref().expect("served reports are stamped");
        println!(
            "  {:6} | {:7} | {:>6} | {:>7.3} | {:>6.3} | {:>8} | {:>10}",
            format!("job-{}", meta.job_id),
            if meta.job_id < 3 { "team-a" } else { "team-b" },
            if meta.cache_hit { "HIT" } else { "run" },
            meta.queue_seconds,
            meta.run_seconds,
            meta.attempts,
            report.population,
        );
    }

    let stats = srv.stats();
    println!(
        "\nserver: {} submitted, {} engine attempts, {} completed, {} coalesced/cached",
        stats.submitted,
        stats.attempts,
        stats.completed,
        stats.coalesced + stats.cache_hits,
    );
    let leader_hash = handles[0].wait().unwrap().job.as_ref().unwrap().config_hash;
    println!(
        "the duplicate of seed 1 reused its leader's engine run — identical canonical\n\
         config hash ({leader_hash:016x}), bitwise-identical report, zero extra kernel time."
    );
}
