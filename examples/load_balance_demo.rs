//! Dynamic load balancing on the real threaded backend: run the same
//! plume on 4 rank-threads with and without the balancer and compare
//! measured wall-clock times and rebalance activity (the paper's §V
//! mechanism end-to-end, with genuinely parallel ranks).
//!
//! ```bash
//! cargo run --release --example load_balance_demo
//! ```

use coupled::prelude::*;

fn main() {
    let ranks = 4usize;
    let steps = 40usize;

    let base = RunConfig::builder()
        .paper(Dataset::D1, 0.08)
        .ranks(ranks)
        .steps(steps);

    println!("running {steps} DSMC steps on {ranks} rank-threads ...\n");

    // --- without load balancing -------------------------------------
    let no_lb = base.clone().rebalance(None).build().expect("valid config");
    let t0 = std::time::Instant::now();
    let res_no = run_threaded(&no_lb);
    let wall_no = t0.elapsed().as_secs_f64();

    // --- with the dynamic load balancer ------------------------------
    let with_lb = base
        .rebalance_every(10)
        .rebalance_threshold(1.5)
        .build()
        .expect("valid config");
    let t0 = std::time::Instant::now();
    let res_lb = run_threaded(&with_lb);
    let wall_lb = t0.elapsed().as_secs_f64();

    println!(
        "without LB: wall {wall_no:.2}s, population {}, rebalances 0",
        res_no.population
    );
    println!(
        "with    LB: wall {wall_lb:.2}s, population {}, rebalances {}",
        res_lb.population, res_lb.rebalances
    );
    println!(
        "\nrank-0 measured breakdown (with LB):\n{}",
        res_lb.breakdown
    );
    println!(
        "communication: {} messages, {} bytes (with LB)",
        res_lb.transactions, res_lb.bytes
    );
    println!(
        "\nThe balancer re-decomposed the grid {} time(s): the paper's Algorithm 1\n\
         triggered on the measured load-imbalance indicator (eq. 6), re-partitioned\n\
         the coarse grid with the weighted load model (eq. 7) and remapped parts to\n\
         ranks with the Kuhn–Munkres algorithm to minimise migrated particles.",
        res_lb.rebalances
    );
}
