//! Quickstart: build the dual nozzle grids, run the coupled DSMC/PIC
//! solver for a handful of timesteps, and print what happened.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use coupled::prelude::*;
use coupled::CoupledState;

fn main() {
    // Dataset 1 is the paper's validation case; scale 0.05 keeps this
    // example under a second. The builder is the canonical entry point
    // for every configuration — its `sim` field is the physics setup.
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.05)
        .build()
        .expect("valid quickstart config");
    let config = run.sim;
    println!(
        "nozzle: radius {:.1} mm, length {:.1} mm, {} coarse cells",
        config.nozzle.radius * 1e3,
        config.nozzle.length * 1e3,
        config.nozzle.nd * config.nozzle.nd * config.nozzle.nz, // upper bound
    );

    let mut sim = CoupledState::new(config);
    println!(
        "grids: {} coarse (DSMC) cells, {} fine (PIC) cells, {} fine nodes",
        sim.nm.num_coarse(),
        sim.nm.num_fine(),
        sim.nm.fine.num_nodes()
    );

    for step in 1..=30 {
        let rec = sim.dsmc_step();
        if step % 5 == 0 {
            println!(
                "step {step:>3}: {:>6} particles (+{:>3} injected, -{:>3} exited), \
                 {:>3} collisions, {:>2} reactions, poisson iters {:?}",
                rec.population,
                rec.injected_cells.len(),
                rec.exited,
                rec.collisions,
                rec.reactions.dissociations + rec.reactions.recombinations,
                rec.poisson_iters,
            );
        }
    }

    // final H density along the nozzle axis
    let (neutral, charged) = sim.counts_per_cell();
    let w = sim.species.get(sim.h_id).weight;
    let density: Vec<f64> = neutral
        .iter()
        .zip(&sim.nm.coarse.volumes)
        .map(|(&c, &v)| c as f64 * w / v)
        .collect();
    let profile =
        coupled::diag::axis_profile(&sim.nm.coarse, &density, sim.config.nozzle.length, 10);
    println!("\nH number density on the axis:");
    for (z, n) in profile {
        println!("  z = {:>5.2} mm   n_H = {n:.3e} 1/m^3", z * 1e3);
    }
    println!(
        "\ntotals: {} neutrals, {} ions",
        neutral.iter().sum::<u64>(),
        charged.iter().sum::<u64>()
    );
}
