//! Scenario tour: load every canned scenario by name (or a TOML file
//! passed on the command line), run it through the threaded driver,
//! and print a one-line summary per run.
//!
//! ```bash
//! cargo run --release --example scenario_tour
//! cargo run --release --example scenario_tour -- scenarios/jet.toml
//! ```

use coupled::prelude::*;
use coupled::scenario;

fn main() {
    let runs: Vec<Scenario> = match std::env::args().nth(1) {
        // a path argument runs just that file
        Some(path) => vec![scenario::from_file(&path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        })],
        // no argument: tour the embedded canned set
        None => scenario::names()
            .into_iter()
            .map(|name| scenario::canned(name).expect("canned scenario lowers"))
            .collect(),
    };

    println!(
        "{:<12} {:>5} {:>5} {:>6} {:>6} {:>9} {:>10}",
        "scenario", "ranks", "steps", "k_sub", "pump", "particles", "avg cells"
    );
    for sc in runs {
        let report = run_threaded(&sc.run);
        // the averaged field only fills on serial/modelled drivers, so
        // re-run serially when the scenario asked for diagnostics
        let avg_cells = if sc.run.obs.avg_window > 0 {
            run_serial(&sc.run).density_h_avg.len()
        } else {
            0
        };
        println!(
            "{:<12} {:>5} {:>5} {:>6} {:>6} {:>9} {:>10}   # {}",
            sc.name,
            sc.run.ranks,
            sc.run.steps,
            sc.run.sim.k_sub_dsmc,
            sc.run
                .sim
                .pump_prob
                .map_or("-".to_string(), |p| format!("{p:.2}")),
            report.population,
            avg_cells,
            sc.description,
        );
    }
}
