//! Plasma-plume simulation — the paper's headline workload: the
//! unsteady plume of hydrogen atoms (H) and ions (H⁺) induced by a
//! pulsed vacuum arc, expanding through the 3D cylindrical nozzle
//! with collisions, wall interactions and dissociation/recombination
//! chemistry.
//!
//! ```bash
//! cargo run --release --example plasma_plume
//! ```

use coupled::diag::{ascii_contour, rz_slice};
use coupled::prelude::*;
use coupled::CoupledState;

fn main() {
    let run = RunConfig::builder()
        .paper(Dataset::D1, 0.1)
        .build()
        .expect("valid plume config");
    let config = run.sim;
    let steps = 80usize;
    let mut sim = CoupledState::new(config.clone());

    println!(
        "simulating {} DSMC steps x {} PIC substeps (dt_DSMC = {:.2e} s) ...",
        steps, config.pic_per_dsmc, config.dt_dsmc
    );
    let mut history = Vec::new();
    let mut total_diss = 0usize;
    let mut total_rec = 0usize;
    for step in 1..=steps {
        let rec = sim.dsmc_step();
        total_diss += rec.reactions.dissociations;
        total_rec += rec.reactions.recombinations;
        if step % 10 == 0 {
            let (n, c) = sim.counts_per_cell();
            history.push((
                step,
                n.iter().sum::<u64>(),
                c.iter().sum::<u64>(),
                rec.collisions,
            ));
        }
    }

    println!("\n  step |  H atoms | H+ ions | collisions/step");
    for (step, n, c, coll) in &history {
        println!("  {step:>4} | {n:>8} | {c:>7} | {coll:>6}");
    }
    println!("\nchemistry: {total_diss} dissociations, {total_rec} recombinations");

    // density contours like the paper's Fig. 8
    let (neutral, charged) = sim.counts_per_cell();
    let w_h = sim.species.get(sim.h_id).weight;
    let w_i = sim.species.get(sim.hp_id).weight;
    let mesh = &sim.nm.coarse;
    let nh: Vec<f64> = neutral
        .iter()
        .zip(&mesh.volumes)
        .map(|(&c, &v)| c as f64 * w_h / v)
        .collect();
    let ni: Vec<f64> = charged
        .iter()
        .zip(&mesh.volumes)
        .map(|(&c, &v)| c as f64 * w_i / v)
        .collect();

    let spec = config.nozzle;
    println!("\nH density contour (rows = radius from axis, cols = z):");
    println!(
        "{}",
        ascii_contour(&rz_slice(mesh, &nh, spec.radius, spec.length, 5, 20))
    );
    println!("H+ density contour:");
    println!(
        "{}",
        ascii_contour(&rz_slice(mesh, &ni, spec.radius, spec.length, 5, 20))
    );
    println!("('9' = peak density, '.' = vacuum; the plume expands from the inlet at left)");

    // ParaView-ready export of both density fields
    std::fs::create_dir_all("results").ok();
    mesh::write_vtk(
        "results/plume.vtk",
        mesh,
        &[
            mesh::CellField {
                name: "n_H",
                values: &nh,
            },
            mesh::CellField {
                name: "n_Hplus",
                values: &ni,
            },
        ],
    )
    .expect("write VTK");
    println!(
        "
wrote results/plume.vtk (open with ParaView)"
    );
}
