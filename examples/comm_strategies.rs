//! The two particle-migration strategies side by side (paper §IV-B):
//! run the same plume on thread-ranks under the centralized and the
//! distributed protocol, and confirm the §IV-B.3 efficiency analysis
//! with both measured traffic and the analytic model.
//!
//! ```bash
//! cargo run --release --example comm_strategies
//! ```

use coupled::{run_threaded, Dataset, RunConfig};
use vmpi::{traffic, Strategy};

fn main() {
    let ranks = 6usize;
    let mut base = RunConfig::paper(Dataset::D1, 0.08, ranks);
    base.steps = 25;
    base.rebalance = None;

    println!("measured on {ranks} rank-threads, {} DSMC steps:\n", base.steps);
    println!("  strategy    | transactions |      bytes | population");
    for strategy in [Strategy::Centralized, Strategy::Distributed] {
        let mut run = base.clone();
        run.strategy = strategy;
        let res = run_threaded(&run);
        println!(
            "  {:11} | {:>12} | {:>10} | {:>9}",
            format!("{strategy:?}"),
            res.transactions,
            res.bytes,
            res.population
        );
    }

    // The §IV-B.3 theory on a synthetic migration matrix: M bytes of
    // particles moving uniformly between N ranks.
    println!("\nanalytic traffic for a uniform migration matrix (N = 16, 1 KiB per pair):");
    let n = 16usize;
    let m: Vec<Vec<u64>> = (0..n)
        .map(|s| (0..n).map(|d| if s == d { 0 } else { 1024 }).collect())
        .collect();
    println!("  strategy    | transactions | total bytes | busiest rank");
    for strategy in [Strategy::Centralized, Strategy::Distributed] {
        let t = traffic(strategy, &m);
        println!(
            "  {:11} | {:>12} | {:>11} | {:>12}",
            format!("{strategy:?}"),
            t.transactions,
            t.total_bytes,
            t.max_rank_bytes
        );
    }
    println!(
        "\npaper §IV-B.3: centralized ≈ 2N transactions but ≈ 2M data (all through\n\
         the root); distributed ≈ N(N−1) transactions but each byte moves once.\n\
         Neither wins universally — see bench/fig11_cc_vs_dc for the crossover."
    );
}
