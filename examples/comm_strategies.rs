//! The particle-migration strategies side by side (paper §IV-B plus
//! the sparse adaptive extension): run the same plume on thread-ranks
//! under every concrete protocol and Auto, and confirm the §IV-B.3
//! efficiency analysis with both measured traffic and the analytic
//! model.
//!
//! ```bash
//! cargo run --release --example comm_strategies
//! ```

use coupled::prelude::*;
use vmpi::traffic;

fn main() {
    let ranks = 6usize;
    let steps = 25usize;
    let base = RunConfig::builder()
        .paper(Dataset::D1, 0.08)
        .ranks(ranks)
        .steps(steps)
        .rebalance(None);

    println!("measured on {ranks} rank-threads, {steps} DSMC steps:\n");
    println!("  strategy    | transactions |      bytes | population | uses CC/DC/Sparse/Hier");
    for strategy in Strategy::CONCRETE.into_iter().chain([Strategy::Auto]) {
        let run = base
            .clone()
            .strategy(strategy)
            .build()
            .expect("valid example config");
        let res = run_threaded(&run);
        let [cc, dc, sp, hier] = res.strategy_uses;
        println!(
            "  {:11} | {:>12} | {:>10} | {:>10} | {cc}/{dc}/{sp}/{hier}",
            format!("{strategy:?}"),
            res.transactions,
            res.bytes,
            res.population
        );
    }

    // The §IV-B.3 theory on synthetic migration matrices: M bytes of
    // particles moving uniformly between N ranks, and a quiet step
    // where only two pairs migrate.
    let n = 16usize;
    let dense: Vec<Vec<u64>> = (0..n)
        .map(|s| (0..n).map(|d| if s == d { 0 } else { 1024 }).collect())
        .collect();
    let mut quiet = vec![vec![0u64; n]; n];
    quiet[1][3] = 1024;
    quiet[14][2] = 512;
    for (label, m) in [
        ("uniform 1 KiB per pair", &dense),
        ("quiet, 2 pairs", &quiet),
    ] {
        println!("\nanalytic traffic, N = {n}, {label}:");
        println!("  strategy    | transactions | total bytes | busiest rank");
        for strategy in Strategy::CONCRETE {
            let t = traffic(strategy, m);
            println!(
                "  {:11} | {:>12} | {:>11} | {:>12}",
                format!("{strategy:?}"),
                t.transactions,
                t.total_bytes,
                t.max_rank_bytes
            );
        }
    }
    println!(
        "\npaper §IV-B.3: centralized ≈ 2N transactions but ≈ 2M data (all through\n\
         the root); distributed ≈ N(N−1) transactions but each byte moves once.\n\
         Sparse pays 2 messages per nonzero pair, so a quiet step costs O(pairs).\n\
         Neither fixed choice wins universally — see bench/fig11_cc_vs_dc for the\n\
         crossover and Strategy::Auto for the per-step decision rule."
    );
}
