//! Experiment harness shared by the table/figure reproduction
//! binaries (`src/bin/*`). Each binary regenerates one table or
//! figure of the paper; see EXPERIMENTS.md for the index and the
//! recorded paper-vs-measured comparison.
//!
//! Environment knobs (all optional):
//! * `REPRO_SCALE` — dataset scale factor (default 0.35; §5 of
//!   DESIGN.md). Larger = closer to paper resolution, slower.
//! * `REPRO_STEPS` — DSMC steps per run (default 50; paper uses 100).
//! * `REPRO_OUT` — directory for CSV output (default `results/`).
//! * `REPRO_TRACE` / `--trace-out <path>` — structured JSONL trace of
//!   the designated run (see [`trace_spec`] and DESIGN.md §11).

use balance::{CostSourceKind, RebalanceConfig};
use coupled::{
    ClusterReport, ClusterSim, Dataset, Decomposition, MachineProfile, Placement, RunConfig,
};
use obs::{MetricsSnapshot, TraceSpec};
use std::path::PathBuf;
use vmpi::Strategy;

/// The paper's strong-scaling rank ladder (Table II).
pub const RANK_LADDER: [usize; 7] = [24, 48, 96, 192, 384, 768, 1536];

/// FNV-1a over the little-endian bytes of a float series — the same
/// digest the guard tests pin, so bench output can be compared
/// against the golden hashes directly.
pub fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Dataset scale for experiments (env `REPRO_SCALE`).
pub fn scale() -> f64 {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.35)
}

/// DSMC steps per experiment run (env `REPRO_STEPS`).
pub fn steps() -> usize {
    std::env::var("REPRO_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// Output directory for CSV artifacts (env `REPRO_OUT`).
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("REPRO_OUT").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Write a CSV artifact and report where it went.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let path = out_dir().join(name);
    std::fs::write(&path, coupled::report::csv(headers, rows)).expect("write csv");
    println!("[csv] {}", path.display());
}

/// Trace output path: `--trace-out <path>` (or `--trace-out=<path>`)
/// on the command line, else env `REPRO_TRACE`, else `None`.
pub fn trace_out() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next().map(PathBuf::from);
        }
        if let Some(p) = a.strip_prefix("--trace-out=") {
            return Some(PathBuf::from(p));
        }
    }
    std::env::var("REPRO_TRACE").ok().map(PathBuf::from)
}

/// The [`TraceSpec`] selected for this process: JSONL at
/// [`trace_out`]'s path, or [`TraceSpec::Off`] when no path is given.
/// Binaries that run several simulations attach this to one
/// designated run (re-opening the same path would overwrite it).
pub fn trace_spec() -> TraceSpec {
    trace_out().map(TraceSpec::Jsonl).unwrap_or_default()
}

/// Write a versioned [`coupled::RunReport`] JSON artifact (schema
/// [`obs::SCHEMA_VERSION`]) next to the CSVs, with an optional
/// metrics snapshot embedded.
pub fn write_report_json(
    name: &str,
    report: &coupled::RunReport,
    metrics: Option<&MetricsSnapshot>,
) {
    let path = out_dir().join(name);
    std::fs::write(&path, format!("{}\n", report.to_json(metrics))).expect("write report json");
    println!("[json] {}", path.display());
}

/// Configuration of one modelled cluster run.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    pub dataset: Dataset,
    pub ranks: usize,
    pub strategy: Strategy,
    pub load_balance: bool,
    pub use_km: bool,
    pub t_interval: usize,
    pub threshold: f64,
    pub w_cell: i64,
    /// Where the balancer's partition weights come from (analytic
    /// paper WLM or the timer-augmented measured-cost source).
    pub cost_source: CostSourceKind,
    /// Unified particle/field ownership or the Eulerian/Lagrangian
    /// split decomposition.
    pub decomposition: Decomposition,
    /// Steps to run; `None` uses the global [`steps`] knob.
    pub steps: Option<usize>,
    pub profile: fn() -> MachineProfile,
    pub placement: Placement,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            dataset: Dataset::D2,
            ranks: 24,
            strategy: Strategy::Distributed,
            load_balance: true,
            use_km: true,
            t_interval: 20,
            threshold: 2.0,
            w_cell: 1,
            cost_source: CostSourceKind::PaperWlm,
            decomposition: Decomposition::Unified,
            steps: None,
            profile: MachineProfile::tianhe2,
            placement: Placement::InnerFrame,
        }
    }
}

impl Experiment {
    /// Run the modelled cluster simulation and return its report.
    pub fn run(&self) -> ClusterReport {
        self.run_with(obs::TraceSpec::Off, None)
    }

    /// Like [`Experiment::run`], with an explicit trace sink and
    /// optional metrics registry attached to the run.
    pub fn run_with(&self, trace: TraceSpec, metrics: Option<obs::Registry>) -> ClusterReport {
        let mut builder = RunConfig::builder()
            .paper(self.dataset, scale())
            .ranks(self.ranks)
            .strategy(self.strategy)
            .rebalance(self.load_balance.then(|| RebalanceConfig {
                t_interval: self.t_interval,
                threshold: self.threshold,
                use_km: self.use_km,
                wlm: balance::WlmParams {
                    r: 2,
                    w_cell: self.w_cell,
                },
                cost_source: self.cost_source,
                ..RebalanceConfig::default()
            }))
            .decomposition(self.decomposition)
            .trace(trace);
        if let Some(reg) = metrics {
            builder = builder.metrics(reg);
        }
        let run = builder.build().expect("valid experiment config");
        let mut sim = ClusterSim::new(&run, (self.profile)()).with_placement(self.placement);
        sim.run(self.steps.unwrap_or_else(steps))
    }
}

/// Human label for a strategy.
pub fn strat_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Distributed => "DC",
        Strategy::Centralized => "CC",
        Strategy::Sparse => "Sparse",
        Strategy::Hier => "Hier",
        Strategy::Auto => "Auto",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_ladder_matches_paper() {
        assert_eq!(RANK_LADDER[0], 24);
        assert_eq!(*RANK_LADDER.last().unwrap(), 1536);
    }

    #[test]
    fn tiny_experiment_runs() {
        // guard against env leakage from the defaults test
        std::env::set_var("REPRO_SCALE", "0.02");
        std::env::set_var("REPRO_STEPS", "3");
        let e = Experiment {
            ranks: 4,
            ..Experiment::default()
        };
        let rep = e.run();
        assert!(rep.total_time > 0.0);
        assert_eq!(rep.trace.len(), 3);
        std::env::remove_var("REPRO_SCALE");
        std::env::remove_var("REPRO_STEPS");
    }
}
