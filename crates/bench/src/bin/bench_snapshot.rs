//! Machine-readable kernel-scaling snapshot.
//!
//! Benchmarks the five pooled hot kernels (ballistic move, NTC
//! collide, charge deposition, Boris push, SpMV) at several intra-rank
//! worker counts and writes `BENCH_kernels.json` — one record per
//! `(kernel, workers)` pair with the measured ns/op, plus a
//! `per_particle` section with ns/particle for the four particle
//! kernels — and a speedup table on stdout.
//!
//! Also benchmarks the four wire-exchange protocols (CC, DC, Sparse,
//! Hier) on the threaded backend at 4 and 8 ranks with a quiet (2
//! nonzero pairs) and a dense (all pairs) migration matrix, recording
//! the measured transaction count, the nonzero-pair fraction, and the
//! active node-pair count per case in a dedicated `exchange` JSON
//! section. The 8-rank quiet case doubles as a gate: Hier must move
//! strictly fewer messages than Sparse's 2·nnz payload sends — the
//! node-aggregation win the paper's hierarchical variant is built on.
//!
//! The host's visible CPU count is recorded in the JSON: speedups are
//! only meaningful when the host exposes at least as many CPUs as the
//! worker count (a 1-CPU container time-slices the lanes and reports
//! ~1× regardless of how well the kernels scale).
//!
//! Env knobs:
//! * `CRITERION_MEASURE_MS` — per-bench measurement budget (default
//!   300 ms; raise for steadier numbers).
//! * `BENCH_OUT` — output path (default `BENCH_kernels.json`).
//! * `BENCH_WORKERS` — comma-separated worker counts (default `1,2,4`).
//! * `BENCH_QUICK` — set to `1` for the CI smoke mode: workers fixed
//!   to `1`, exchange section skipped, 40 ms measurement budget
//!   (unless `CRITERION_MEASURE_MS` overrides it).
//!
//! After writing the JSON the binary re-reads and parses it and exits
//! non-zero if any expected kernel row is missing — the smoke run in
//! `scripts/verify.sh`/CI relies on this self-check.

use balance::CostSourceKind;
use coupled::Decomposition;
use criterion::{black_box, Criterion};
use kernels::Pool;
use mesh::{NestedMesh, NozzleSpec, Vec3};
use particles::{Particle, ParticleBuffer, SpeciesTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparse::CooBuilder;
use vmpi::{exchange, run_world, traffic, Comm, Strategy};

/// Migration byte matrix for the exchange benches: `dense` fills every
/// ordered pair; quiet keeps exactly two nonzero pairs (the shape of a
/// settled flow where particles cross only a couple of subdomain
/// boundaries per step).
fn exchange_matrix(n: usize, dense: bool) -> Vec<Vec<u64>> {
    let payload = 61 * 32; // 32 wire particles
    let mut m = vec![vec![0u64; n]; n];
    if dense {
        for (s, row) in m.iter_mut().enumerate() {
            for (d, entry) in row.iter_mut().enumerate() {
                if s != d {
                    *entry = payload;
                }
            }
        }
    } else {
        m[1][3 % n] = payload;
        m[n - 2][0] = payload / 2;
    }
    m
}

/// One measured exchange of `m` under `strategy`: world-total message
/// count (bytes move identically under every strategy's delivery
/// contract, so transactions are the discriminating metric).
fn measure_transactions(strategy: Strategy, m: &[Vec<u64>]) -> u64 {
    let n = m.len();
    run_world(n, |c| {
        c.stats().reset();
        c.barrier().expect("clean-wire barrier");
        let outgoing: Vec<Vec<u8>> = (0..n)
            .map(|d| vec![0xA5u8; m[c.rank()][d] as usize])
            .collect();
        let inc = exchange(&c, strategy, outgoing).expect("clean-wire exchange");
        c.barrier().expect("clean-wire barrier");
        black_box(inc.len());
        c.stats().transactions()
    })[0]
}

fn nested() -> NestedMesh {
    let spec = NozzleSpec {
        nd: 8,
        nz: 16,
        ..NozzleSpec::default()
    };
    let coarse = spec.generate();
    NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n))
}

fn filled_buffer(nm: &NestedMesh, n: usize, species: u8) -> ParticleBuffer {
    let mut rng = StdRng::seed_from_u64(7);
    let mut buf = ParticleBuffer::new();
    for k in 0..n {
        let c = (k * 37) % nm.num_coarse();
        let p = nm.coarse.tet_pos(c);
        buf.push(Particle {
            pos: particles::sample::point_in_tet(&mut rng, p[0], p[1], p[2], p[3]),
            vel: particles::sample::maxwellian(
                &mut rng,
                300.0,
                particles::MASS_H,
                Vec3::new(0.0, 0.0, 1e4),
            ),
            cell: c as u32,
            species,
            id: k as u64,
        });
    }
    buf
}

/// 7-point Laplacian on an `nx × ny × nz` grid (the same sparsity
/// class as the FEM Poisson operator, at a size where SpMV dominates).
fn laplacian(nx: usize, ny: usize, nz: usize) -> sparse::CsrMatrix {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    let mut coo = CooBuilder::new(n, n);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let r = idx(i, j, k);
                coo.add(r, r, 6.0);
                if i > 0 {
                    coo.add(r, idx(i - 1, j, k), -1.0);
                }
                if i + 1 < nx {
                    coo.add(r, idx(i + 1, j, k), -1.0);
                }
                if j > 0 {
                    coo.add(r, idx(i, j - 1, k), -1.0);
                }
                if j + 1 < ny {
                    coo.add(r, idx(i, j + 1, k), -1.0);
                }
                if k > 0 {
                    coo.add(r, idx(i, j, k - 1), -1.0);
                }
                if k + 1 < nz {
                    coo.add(r, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    coo.build()
}

/// Number of particles in the benchmark buffers — the divisor turning
/// ns/op into ns/particle in the JSON `per_particle` section.
const N_PARTICLES: usize = 20_000;

/// Particle kernels reported per-particle (spmv is per-node, not
/// per-particle, so it is excluded).
const PARTICLE_KERNELS: [&str; 4] = ["move", "collide", "deposit", "push"];

fn main() {
    let quick = std::env::var("BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false);
    if quick && std::env::var("CRITERION_MEASURE_MS").is_err() {
        std::env::set_var("CRITERION_MEASURE_MS", "40");
    }
    let mut workers: Vec<usize> = if quick {
        vec![1]
    } else {
        std::env::var("BENCH_WORKERS")
            .unwrap_or_else(|_| "1,2,4".into())
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&w| w >= 1)
            .collect()
    };
    if workers.is_empty() {
        eprintln!("BENCH_WORKERS parsed to nothing; using 1,2,4");
        workers = vec![1, 2, 4];
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let nm = nested();
    let (table, h, hp) = SpeciesTable::hydrogen_plasma(1e12, 6000.0);
    let ion_buf = {
        let mut b = filled_buffer(&nm, N_PARTICLES, h);
        for s in b.species.iter_mut() {
            *s = hp;
        }
        b
    };
    // uniform axial E field for the Boris-push bench
    let phi: Vec<f64> = nm.fine.nodes.iter().map(|p| -1000.0 * p.z).collect();
    let efield = pic::ElectricField::from_potential(&nm.fine, &phi);
    let mat = laplacian(48, 48, 24);
    let x: Vec<f64> = (0..mat.ncols()).map(|i| (i as f64 * 0.37).sin()).collect();

    let mut c = Criterion::default();
    for &w in &workers {
        let pool = Pool::new(w);

        c.bench_function(&format!("move/w{w}"), |b| {
            b.iter_batched(
                || (filled_buffer(&nm, N_PARTICLES, h), StdRng::seed_from_u64(1)),
                |(mut buf, mut rng)| {
                    let st = dsmc::move_particles_pooled(
                        &nm.coarse,
                        &mut buf,
                        &table,
                        1e-7,
                        300.0,
                        &mut rng,
                        &pool,
                        |_| true,
                        None,
                        None,
                    );
                    black_box(st)
                },
                criterion::BatchSize::LargeInput,
            )
        });

        c.bench_function(&format!("collide/w{w}"), |b| {
            b.iter_batched(
                || {
                    (
                        filled_buffer(&nm, N_PARTICLES, h),
                        dsmc::CollisionModel::new(nm.num_coarse(), &table, 300.0),
                        StdRng::seed_from_u64(2),
                        Vec::new(),
                    )
                },
                |(mut buf, mut model, mut rng, mut ev)| {
                    let st = model.collide_pooled(
                        &nm.coarse, &mut buf, &table, h, 1e-6, &mut rng, &mut ev, &pool,
                    );
                    black_box(st)
                },
                criterion::BatchSize::LargeInput,
            )
        });

        let mut q = vec![0.0f64; nm.fine.num_nodes()];
        c.bench_function(&format!("deposit/w{w}"), |b| {
            b.iter(|| {
                q.iter_mut().for_each(|v| *v = 0.0);
                pic::deposit_charge_pooled(&nm, &ion_buf, &table, &mut q, &pool);
                black_box(q[0])
            })
        });

        c.bench_function(&format!("push/w{w}"), |b| {
            b.iter_batched(
                || ion_buf.clone(),
                |mut buf| {
                    let kicked = pic::accelerate_charged_pooled(
                        &nm,
                        &mut buf,
                        &table,
                        &efield,
                        Vec3::ZERO,
                        1e-9,
                        &pool,
                    );
                    black_box(kicked)
                },
                criterion::BatchSize::LargeInput,
            )
        });

        let mut y = vec![0.0f64; mat.nrows()];
        c.bench_function(&format!("spmv/w{w}"), |b| {
            b.iter(|| {
                mat.spmv_pooled(&x, &mut y, &pool);
                black_box(y[0])
            })
        });
    }

    // ---- exchange protocols (threaded backend, whole-world op) -----
    struct ExchCase {
        name: String,
        strategy: &'static str,
        ranks: usize,
        kind: &'static str,
        transactions: u64,
        nonzero_pairs: u64,
        nonzero_fraction: f64,
        node_pairs: u64,
    }
    let mut exch_cases: Vec<ExchCase> = Vec::new();
    let rank_counts: &[usize] = if quick { &[] } else { &[4, 8] };
    for &n in rank_counts {
        for strategy in Strategy::CONCRETE {
            let label = bench::strat_name(strategy).to_lowercase();
            for (kind, dense) in [("quiet", false), ("dense", true)] {
                let m = exchange_matrix(n, dense);
                let name = format!("exchange_{label}_{kind}/w{n}");
                c.bench_function(&name, |b| {
                    b.iter(|| {
                        let out = run_world(n, |comm| {
                            let outgoing: Vec<Vec<u8>> = (0..n)
                                .map(|d| vec![0xA5u8; m[comm.rank()][d] as usize])
                                .collect();
                            exchange(&comm, strategy, outgoing).expect("clean-wire exchange")
                        });
                        black_box(out.len())
                    })
                });
                let model = traffic(strategy, &m);
                let slots = (n * (n - 1)) as f64;
                exch_cases.push(ExchCase {
                    name,
                    strategy: bench::strat_name(strategy),
                    ranks: n,
                    kind,
                    transactions: measure_transactions(strategy, &m),
                    nonzero_pairs: model.nonzero_pairs,
                    nonzero_fraction: model.nonzero_pairs as f64 / slots,
                    node_pairs: model.node_pairs,
                });
            }
        }
    }

    // ---- balance modes (modelled, tiny — runs in quick mode too) ---
    // One small ClusterSim per balancing mode of DESIGN.md §15; the
    // self-check below requires all three rows, so a mode that stops
    // producing a trace fails the smoke run.
    struct BalanceCase {
        mode: &'static str,
        final_lii: f64,
        rebalances: usize,
    }
    let balance_cases: Vec<BalanceCase> = [
        (
            "paper_wlm",
            CostSourceKind::PaperWlm,
            Decomposition::Unified,
        ),
        (
            "timer_augmented",
            CostSourceKind::TimerAugmented,
            Decomposition::Unified,
        ),
        ("eullag", CostSourceKind::PaperWlm, Decomposition::EulLag),
    ]
    .into_iter()
    .map(|(mode, cost_source, decomposition)| {
        let run = coupled::RunConfig::builder()
            .paper(coupled::Dataset::D1, 0.02)
            .ranks(3)
            .rebalance(Some(balance::RebalanceConfig {
                t_interval: 3,
                threshold: 1.2,
                cost_source,
                ..balance::RebalanceConfig::default()
            }))
            .decomposition(decomposition)
            .build()
            .expect("balance smoke config");
        let rep = coupled::ClusterSim::new(&run, coupled::MachineProfile::tianhe2()).run(8);
        BalanceCase {
            mode,
            final_lii: rep.trace.last().map(|t| t.lii).unwrap_or(f64::NAN),
            rebalances: rep.rebalances,
        }
    })
    .collect();
    for case in &balance_cases {
        println!(
            "[balance] {}: final lii {:.3}, {} rebalance(s)",
            case.mode, case.final_lii, case.rebalances
        );
    }

    // ---- canned scenarios (serial, tiny — runs in quick mode too) --
    // One quick serial run per scenarios/*.toml; the self-check below
    // requires a row per canned name, so a scenario that stops
    // lowering or producing particles fails the smoke run.
    struct ScenarioCase {
        name: &'static str,
        population: usize,
        steps: usize,
        density_hash: u64,
    }
    let scenario_cases: Vec<ScenarioCase> = coupled::scenario::names()
        .into_iter()
        .map(|name| {
            let sc = coupled::scenario::canned(name).expect("canned scenario lowers");
            let rep = coupled::run_serial(&sc.run);
            ScenarioCase {
                name,
                population: rep.population,
                steps: sc.run.steps,
                density_hash: bench::fnv1a(&rep.density_h),
            }
        })
        .collect();
    for case in &scenario_cases {
        println!(
            "[scenario] {}: {} particles after {} steps (density fnv1a {:#018x})",
            case.name, case.population, case.steps, case.density_hash
        );
        if case.population == 0 {
            eprintln!("[scenario] {} produced no particles", case.name);
            std::process::exit(1);
        }
    }

    // Aggregation gate (doc comment above): on the 8-rank quiet matrix
    // the hierarchical exchange must beat Sparse's 2 sends per nonzero
    // pair — otherwise trunk aggregation regressed to per-pair wires.
    if !quick {
        let find = |strategy: &str| {
            exch_cases
                .iter()
                .find(|e| e.strategy == strategy && e.ranks == 8 && e.kind == "quiet")
                .expect("quiet 8-rank exchange case present")
        };
        let (hier, sparse) = (find("Hier"), find("Sparse"));
        let sparse_payload_sends = 2 * sparse.nonzero_pairs;
        if hier.transactions >= sparse_payload_sends {
            eprintln!(
                "[exchange] Hier quiet-8 sent {} messages, expected < Sparse's 2·nnz = {}",
                hier.transactions, sparse_payload_sends
            );
            std::process::exit(1);
        }
        println!(
            "[exchange] quiet-8 gate: Hier tx {} < Sparse 2·nnz {} ({} active node pair(s))",
            hier.transactions, sparse_payload_sends, hier.node_pairs
        );
    }

    // ---- report ----------------------------------------------------
    let ns = |kernel: &str, w: usize| {
        c.results
            .iter()
            .find(|m| m.name == format!("{kernel}/w{w}"))
            .map(|m| m.ns_per_iter)
    };
    println!("\nhost CPUs visible: {host_cpus}");
    println!(
        "{:<10} {:>8} {:>14} {:>9}",
        "kernel", "workers", "ns/op", "speedup"
    );
    for kernel in ["move", "collide", "deposit", "push", "spmv"] {
        let base = ns(kernel, workers[0]).unwrap_or(f64::NAN);
        for &w in &workers {
            if let Some(t) = ns(kernel, w) {
                println!("{kernel:<10} {w:>8} {t:>14.1} {:>8.2}x", base / t);
            }
        }
    }

    println!(
        "\n{:<8} {:>6} {:>6} {:>6} {:>9} {:>14}",
        "exchange", "ranks", "matrix", "tx", "nnz_frac", "ns/op"
    );
    for case in &exch_cases {
        let t = c
            .results
            .iter()
            .find(|m| m.name == case.name)
            .map(|m| m.ns_per_iter)
            .unwrap_or(f64::NAN);
        println!(
            "{:<8} {:>6} {:>6} {:>6} {:>9.3} {t:>14.1}",
            case.strategy, case.ranks, case.kind, case.transactions, case.nonzero_fraction
        );
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!(
        "  \"measure_ms\": {},\n",
        std::env::var("CRITERION_MEASURE_MS").unwrap_or_else(|_| "300".into())
    ));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"particles\": {N_PARTICLES},\n"));
    json.push_str("  \"exchange\": [\n");
    let exch_rows: Vec<String> = exch_cases
        .iter()
        .map(|e| {
            let t = c
                .results
                .iter()
                .find(|m| m.name == e.name)
                .map(|m| m.ns_per_iter)
                .unwrap_or(f64::NAN);
            format!(
                "    {{\"strategy\": \"{}\", \"ranks\": {}, \"matrix\": \"{}\", \
                 \"transactions\": {}, \"nonzero_pairs\": {}, \"nonzero_fraction\": {:.4}, \
                 \"node_pairs\": {}, \"ns_per_op\": {t:.1}}}",
                e.strategy,
                e.ranks,
                e.kind,
                e.transactions,
                e.nonzero_pairs,
                e.nonzero_fraction,
                e.node_pairs
            )
        })
        .collect();
    json.push_str(&exch_rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"balance\": [\n");
    let balance_rows: Vec<String> = balance_cases
        .iter()
        .map(|b| {
            format!(
                "    {{\"mode\": \"{}\", \"final_lii\": {:.4}, \"rebalances\": {}}}",
                b.mode, b.final_lii, b.rebalances
            )
        })
        .collect();
    json.push_str(&balance_rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"scenarios\": [\n");
    let scenario_rows: Vec<String> = scenario_cases
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"population\": {}, \"steps\": {}, \
                 \"density_fnv1a\": \"{:#018x}\"}}",
                s.name, s.population, s.steps, s.density_hash
            )
        })
        .collect();
    json.push_str(&scenario_rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"results\": [\n");
    let rows: Vec<String> = c
        .results
        .iter()
        .map(|m| {
            let (kernel, w) = m.name.split_once("/w").expect("name format");
            format!(
                "    {{\"kernel\": \"{kernel}\", \"workers\": {w}, \"ns_per_op\": {:.1}, \"iters\": {}}}",
                m.ns_per_iter, m.iters
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"per_particle\": [\n");
    let mut pp_rows: Vec<String> = Vec::new();
    for kernel in PARTICLE_KERNELS {
        for &w in &workers {
            if let Some(t) = ns(kernel, w) {
                pp_rows.push(format!(
                    "    {{\"kernel\": \"{kernel}\", \"workers\": {w}, \
                     \"ns_per_particle\": {:.4}}}",
                    t / N_PARTICLES as f64
                ));
            }
        }
    }
    json.push_str(&pp_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out, json).expect("write snapshot");

    // self-check: re-read and parse the snapshot; a missing kernel row
    // means the bench silently skipped work. The smoke step in
    // scripts/verify.sh and CI relies on this exit code.
    let text = std::fs::read_to_string(&out).expect("re-read snapshot");
    let doc = match obs::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("[json] {out} failed to parse: {e}");
            std::process::exit(1);
        }
    };
    let has = |section: &str, kernel: &str| {
        doc.get(section)
            .and_then(|s| s.as_array())
            .is_some_and(|rows| {
                rows.iter()
                    .any(|r| r.get("kernel").and_then(|k| k.as_str()) == Some(kernel))
            })
    };
    let mut missing: Vec<String> = Vec::new();
    for kernel in ["move", "collide", "deposit", "push", "spmv"] {
        if !has("results", kernel) {
            missing.push(format!("results/{kernel}"));
        }
    }
    for mode in ["paper_wlm", "timer_augmented", "eullag"] {
        let present = doc
            .get("balance")
            .and_then(|s| s.as_array())
            .is_some_and(|rows| {
                rows.iter()
                    .any(|r| r.get("mode").and_then(|m| m.as_str()) == Some(mode))
            });
        if !present {
            missing.push(format!("balance/{mode}"));
        }
    }
    for kernel in PARTICLE_KERNELS {
        if !has("per_particle", kernel) {
            missing.push(format!("per_particle/{kernel}"));
        }
    }
    for name in coupled::scenario::names() {
        let present = doc
            .get("scenarios")
            .and_then(|s| s.as_array())
            .is_some_and(|rows| {
                rows.iter()
                    .any(|r| r.get("name").and_then(|n| n.as_str()) == Some(name))
            });
        if !present {
            missing.push(format!("scenarios/{name}"));
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "[json] {out} is missing kernel rows: {}",
            missing.join(", ")
        );
        std::process::exit(1);
    }
    println!("[json] {out} (validated)");
}
