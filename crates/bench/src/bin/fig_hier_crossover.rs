//! Modelled exchange-strategy crossover over the paper's rank ladder,
//! extended to the hierarchical protocol (DESIGN.md §14). Evaluates
//! the α–β `CostModel` on the Tianhe-3 profile for every concrete
//! strategy against two migration shapes per rank count:
//!
//! * `uniform`: 1 KiB between every ordered pair — the saturated
//!   plume where per-operation latency dominates. CC wins the small
//!   worlds (the root's 2(N−1) serialized sends dodge the contended
//!   `per_op`), but from 384 ranks up the node-level trunk aggregation
//!   makes Hier the cheapest: its leaders pay one frame per active
//!   node pair instead of one per rank pair.
//! * `quiet`: two nonzero pairs (one of them cross-node) — the settled
//!   flow where Sparse's pay-per-pair bill stays flat. Sparse owns the
//!   small and mid ladder; at 768+ ranks even its two log-depth count
//!   fences cost more than routing the two payloads through leaders,
//!   and Hier edges ahead.
//!
//! Purely analytic (no simulation), so the full ladder runs in
//! milliseconds. Writes `fig_hier_crossover.csv`.

use bench::{strat_name, write_csv, RANK_LADDER};
use coupled::report::table;
use coupled::{CostModel, MachineProfile};
use vmpi::Strategy;

fn uniform(n: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|s| (0..n).map(|d| if s == d { 0 } else { 1024 }).collect())
        .collect()
}

/// Two migrating pairs; the second crosses a node boundary on every
/// profile (rank 3 → the far end of the world).
fn quiet(n: usize) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; n]; n];
    m[1][3 % n] = 61 * 32;
    m[3][n - 2] = 61 * 64;
    m
}

fn main() {
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (kind, matrix) in [
        ("uniform", uniform as fn(usize) -> Vec<Vec<u64>>),
        ("quiet", quiet),
    ] {
        for &ranks in &RANK_LADDER {
            let cost = CostModel::new(MachineProfile::tianhe3(), ranks);
            let m = matrix(ranks);
            let times: Vec<(Strategy, f64)> = Strategy::CONCRETE
                .into_iter()
                .map(|s| (s, cost.exchange_time_for(s, &m)))
                .collect();
            let &(winner, _) = times
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
                .expect("CONCRETE is non-empty");
            assert_eq!(winner, cost.pick_strategy(&m), "Auto must agree");
            let mut row = vec![kind.to_string(), ranks.to_string()];
            for &(s, t) in &times {
                row.push(format!("{:.3}", t * 1e3));
                csv_rows.push(vec![
                    kind.to_string(),
                    ranks.to_string(),
                    strat_name(s).to_string(),
                    format!("{:.6}", t * 1e3),
                    (s == winner).to_string(),
                ]);
            }
            row.push(strat_name(winner).to_string());
            rows.push(row);
        }
    }

    println!("modelled exchange time (ms), Tianhe-3 profile, by migration shape");
    let headers = [
        "matrix",
        "ranks",
        "CC_ms",
        "DC_ms",
        "Sparse_ms",
        "Hier_ms",
        "winner",
    ];
    println!("{}", table(&headers, &rows));
    write_csv(
        "fig_hier_crossover.csv",
        &["matrix", "ranks", "strategy", "time_ms", "winner"],
        &csv_rows,
    );
    println!(
        "shape: CC leads uniform traffic until node-level aggregation pays off\n\
         (trunk frames scale with node pairs, not rank pairs — Hier from 384\n\
         ranks); Sparse owns quiet steps until the very top of the ladder."
    );

    // The headline crossover the EXPERIMENTS.md entry records.
    let cost = CostModel::new(MachineProfile::tianhe3(), 1536);
    assert_eq!(
        cost.pick_strategy(&uniform(1536)),
        Strategy::Hier,
        "1536-rank uniform traffic must resolve to the hierarchical strategy"
    );
    println!("[ok] 1536-rank uniform crossover resolves to Hier");
}
