//! Figure 15: hardware portability — both strategies with LB on the
//! x86 Tianhe-2 profile and the ARMv8 Tianhe-3 prototype profile, on
//! Datasets 2, 4 (medium grids) and 5, 6 (large grids).
//!
//! Paper shapes: similar strong-scaling curves on both architectures;
//! on the large-grid datasets (5, 6) the CC/DC gap is smaller than on
//! the medium-grid datasets (2, 4).

use bench::{strat_name, write_csv, Experiment};
use coupled::report::table;
use coupled::{Dataset, MachineProfile};
use vmpi::Strategy;

type ProfileCtor = fn() -> MachineProfile;

fn main() {
    let ranks_ladder = [24usize, 96, 384, 1536];
    let machines: [(ProfileCtor, &str); 2] = [
        (MachineProfile::tianhe2, "Tianhe-2"),
        (MachineProfile::tianhe3, "Tianhe-3"),
    ];
    let datasets = [Dataset::D2, Dataset::D4, Dataset::D5, Dataset::D6];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut gaps: Vec<(Dataset, f64)> = Vec::new();

    for dataset in datasets {
        for (profile, mname) in machines {
            for strategy in [Strategy::Distributed, Strategy::Centralized] {
                let mut row = vec![format!("{dataset:?} {mname} {}", strat_name(strategy))];
                let mut last = 0.0;
                for &ranks in &ranks_ladder {
                    let rep = Experiment {
                        dataset,
                        ranks,
                        strategy,
                        profile,
                        ..Experiment::default()
                    }
                    .run();
                    last = rep.total_time;
                    row.push(format!("{:.1}", rep.total_time));
                    csv_rows.push(vec![
                        format!("{dataset:?}"),
                        mname.to_string(),
                        strat_name(strategy).to_string(),
                        ranks.to_string(),
                        format!("{:.3}", rep.total_time),
                    ]);
                    eprintln!(
                        "  {dataset:?} {mname} {} @ {ranks}: {:.1}s",
                        strat_name(strategy),
                        rep.total_time
                    );
                }
                if mname == "Tianhe-2" {
                    gaps.push((dataset, last));
                }
                rows.push(row);
            }
        }
    }

    println!("\nFigure 15 — portability: total time (s) across machines/datasets, LB on");
    let headers = ["config", "24", "96", "384", "1536"];
    println!("{}", table(&headers, &rows));
    write_csv(
        "fig15_portability.csv",
        &["dataset", "machine", "strategy", "ranks", "total_s"],
        &csv_rows,
    );

    // CC/DC gap per dataset at 1536 ranks on Tianhe-2 (pairs: DC, CC)
    for pair in gaps.chunks(2) {
        if let [(d, dc), (_, cc)] = pair {
            println!(
                "{d:?}: CC/DC at 1536 ranks = {:.2} (paper: smaller on large-grid datasets 5/6)",
                cc / dc
            );
        }
    }
}
