//! Job-server demonstration: a mixed-priority, two-tenant workload
//! against one `JobServer`, exercising fair-share scheduling, the
//! shared thread budget, duplicate coalescing and the result cache,
//! then printing the per-job metadata table and server counters
//! (DESIGN.md §16).
//!
//! ```text
//! cargo run --release -p bench --bin jobsrv_demo
//! REPRO_SCALE=0.05 cargo run --release -p bench --bin jobsrv_demo
//! ```

use jobsrv::prelude::*;
use jobsrv::JobPriority;

fn main() {
    // Keep the demo quick unless the user dials REPRO_SCALE up.
    let scale = std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.02);
    let steps = 8usize;

    let registry = Registry::new();
    let srv = JobServer::start(
        ServerConfig::default()
            .workers(3)
            .thread_budget(8)
            .metrics(registry.clone()),
    );

    let base = RunConfig::builder()
        .paper(Dataset::D1, scale)
        .ranks(2)
        .steps(steps)
        .rebalance(None);

    // Tenant A floods Normal-priority seeds; tenant B sends one High
    // job, one Low job and an exact duplicate of A's first seed.
    let mut submissions: Vec<(String, JobHandle)> = Vec::new();
    for seed in 1u64..=4 {
        let run = base.clone().seed(seed).build().expect("valid config");
        submissions.push((
            format!("a/seed{seed}"),
            srv.submit(
                JobSpec::new(run)
                    .tenant("team-a")
                    .priority(JobPriority::Normal)
                    .label(format!("sweep seed {seed}")),
            ),
        ));
    }
    let high = base.clone().seed(50).build().expect("valid config");
    submissions.push((
        "b/high".to_string(),
        srv.submit(
            JobSpec::new(high)
                .tenant("team-b")
                .priority(JobPriority::High)
                .label("urgent"),
        ),
    ));
    let low = base.clone().seed(51).build().expect("valid config");
    submissions.push((
        "b/low".to_string(),
        srv.submit(
            JobSpec::new(low)
                .tenant("team-b")
                .priority(JobPriority::Low)
                .label("background"),
        ),
    ));
    let dup = base.clone().seed(1).build().expect("valid config");
    submissions.push((
        "b/dup-of-a1".to_string(),
        srv.submit(JobSpec::new(dup).tenant("team-b").label("duplicate")),
    ));

    println!(
        "{} jobs over 3 workers, thread budget 8 (each job costs 2):\n",
        submissions.len()
    );
    println!("  submission  |    id  | cache | queue s |  run s | attempts | population");
    for (name, h) in &submissions {
        let report = h.wait().expect("job completes");
        let meta = report.job.as_ref().expect("served reports are stamped");
        println!(
            "  {name:11} | {:>6} | {:>5} | {:>7.3} | {:>6.3} | {:>8} | {:>10}",
            format!("job-{}", meta.job_id),
            if meta.cache_hit { "HIT" } else { "run" },
            meta.queue_seconds,
            meta.run_seconds,
            meta.attempts,
            report.population,
        );
    }

    let stats = srv.stats();
    let (cache_hits, cache_misses) = srv.cache_stats();
    println!(
        "\nserver: {} submitted, {} engine attempts, {} completed, {} failed",
        stats.submitted, stats.attempts, stats.completed, stats.failed
    );
    println!(
        "dedup: {} coalesced in flight, {} cache hits ({} misses) — the duplicate",
        stats.coalesced, cache_hits, cache_misses
    );
    println!("submission cost zero engine time.\n");

    // Every job metered into the one server registry under its own
    // prefix; show the per-job engine step counters side by side.
    let snap = registry.snapshot();
    let mut steps_counters: Vec<(String, u64)> = snap
        .metrics
        .iter()
        .filter(|(name, _)| name.ends_with("engine.steps"))
        .filter_map(|(name, v)| match v {
            obs::MetricValue::Counter(c) => Some((name.clone(), *c)),
            _ => None,
        })
        .collect();
    steps_counters.sort();
    for (name, v) in steps_counters {
        println!("  {name} = {v}");
    }
}
