//! Figure 12: impact of the rebalance interval `T` (DC strategy,
//! Dataset 2, Tianhe-2).
//!
//! Paper shape: T = 20 slightly beats 10 and 30 up to ~96 ranks;
//! with more ranks T = 10 pulls slightly ahead; differences are
//! small (minutes-level totals separated by a few percent).

use bench::{write_csv, Experiment, RANK_LADDER};
use coupled::report::{secs, table};

fn main() {
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for t in [10usize, 20, 30] {
        let mut row = vec![format!("T={t}")];
        for &ranks in &RANK_LADDER {
            let rep = Experiment {
                ranks,
                t_interval: t,
                ..Experiment::default()
            }
            .run();
            row.push(secs(rep.total_time));
            csv_rows.push(vec![
                t.to_string(),
                ranks.to_string(),
                format!("{:.3}", rep.total_time),
            ]);
            eprintln!("  T={t} @ {ranks}: {:.1}s", rep.total_time);
        }
        rows.push(row);
    }
    println!("\nFigure 12 — total time (s) vs rebalance interval T, DC+LB");
    let headers = ["variant", "24", "48", "96", "192", "384", "768", "1536"];
    println!("{}", table(&headers, &rows));
    write_csv("fig12_sweep_t.csv", &["T", "ranks", "total_s"], &csv_rows);
}
