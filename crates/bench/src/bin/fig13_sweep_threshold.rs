//! Figure 13: impact of the imbalance `Threshold` (DC strategy,
//! Dataset 2, Tianhe-2).
//!
//! Paper shape: a smaller threshold is slightly better at ≤96 ranks
//! (imbalance is severe there, rebalancing early pays off); with more
//! ranks the threshold has little effect.

use bench::{write_csv, Experiment, RANK_LADDER};
use coupled::report::{secs, table};

fn main() {
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for threshold in [1.5f64, 2.0, 3.0] {
        let mut row = vec![format!("Thr={threshold}")];
        for &ranks in &RANK_LADDER {
            let rep = Experiment {
                ranks,
                threshold,
                ..Experiment::default()
            }
            .run();
            row.push(secs(rep.total_time));
            csv_rows.push(vec![
                threshold.to_string(),
                ranks.to_string(),
                format!("{:.3}", rep.total_time),
            ]);
            eprintln!("  Thr={threshold} @ {ranks}: {:.1}s", rep.total_time);
        }
        rows.push(row);
    }
    println!("\nFigure 13 — total time (s) vs Threshold, DC+LB, Dataset 2");
    let headers = ["variant", "24", "48", "96", "192", "384", "768", "1536"];
    println!("{}", table(&headers, &rows));
    write_csv(
        "fig13_sweep_threshold.csv",
        &["threshold", "ranks", "total_s"],
        &csv_rows,
    );
}
