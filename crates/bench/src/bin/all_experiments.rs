//! Run every table/figure reproduction in sequence (the full
//! EXPERIMENTS.md regeneration). Each experiment is also available as
//! its own binary; this wrapper just shells out to them so their
//! output stays identical either way.

use std::process::Command;

const EXPERIMENTS: [&str; 11] = [
    "fig05_imbalance",
    "fig08_contours",
    "fig09_validation",
    "tab02_strong_scaling",
    "tab03_move_times",
    "tab04_breakdown",
    "fig11_cc_vs_dc",
    "tab05_km_overhead",
    "fig12_sweep_t",
    "tab06_sweep_wcell",
    "fig13_sweep_threshold",
];

const EXPERIMENTS_EXTRA: [&str; 6] = [
    "fig14_placement",
    "fig15_portability",
    "fig_hier_crossover",
    "ablation_autotune",
    "fig_balance_modes",
    "fig_scenario_imbalance",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let all: Vec<&str> = EXPERIMENTS
        .iter()
        .chain(EXPERIMENTS_EXTRA.iter())
        .copied()
        .collect();
    for name in all {
        println!("\n================ {name} ================");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed");
    }
    println!(
        "\nall experiments completed; CSVs in {}",
        bench::out_dir().display()
    );
}
