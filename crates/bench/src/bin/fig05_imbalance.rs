//! Figure 5: percentage of particles per rank over 200 PIC timesteps
//! with 4 MPI processes and NO load balancing.
//!
//! Paper result: rank 0 holds ~100% of the particles for the first 50
//! PIC steps and still ~90% at step 200 — the motivating observation
//! for the dynamic load balancer.

use bench::{steps, write_csv, Experiment};
use coupled::report::table;

fn main() {
    let exp = Experiment {
        ranks: 4,
        load_balance: false,
        ..Experiment::default()
    };
    // the paper plots 200 PIC steps = 100 DSMC steps; honour
    // REPRO_STEPS but interpret the x-axis in PIC steps
    let rep = exp.run();

    let mut rows = Vec::new();
    for (i, tr) in rep.trace.iter().enumerate() {
        let pic_step = (i + 1) * 2;
        let mut row = vec![pic_step.to_string()];
        for share in &tr.share {
            row.push(format!("{:.1}", share * 100.0));
        }
        rows.push(row);
    }
    println!("Figure 5 — particle distribution (%) per rank, 4 ranks, no LB");
    println!("(paper: rank with the inlet keeps ~90%+ of all particles)");
    let headers = ["pic_step", "rank0_%", "rank1_%", "rank2_%", "rank3_%"];
    // print every 5th row to keep the console readable
    let sparse: Vec<Vec<String>> = rows.iter().step_by(5).cloned().collect();
    println!("{}", table(&headers, &sparse));
    write_csv("fig05_imbalance.csv", &headers, &rows);

    let max_at = |i: usize| {
        rep.trace[i.min(rep.trace.len() - 1)]
            .share
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            * 100.0
    };
    println!(
        "max rank share: {:.1}% at PIC step 50, {:.1}% at the end (paper: ~100% early, ~90% at step 200)",
        max_at(24),
        max_at(rep.trace.len() - 1)
    );
    println!(
        "(our scaled domain fills in ~{} DSMC steps, so the concentration decays faster than the paper's)",
        steps()
    );
}
