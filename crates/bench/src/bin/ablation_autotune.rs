//! Ablation: the auto-tuning procedure the paper uses to pick T and
//! Threshold (§V-A / §VII-B "parameters were automatically chosen
//! during our pilot study ... using a sampling script").
//!
//! Sweeps the (T, Threshold) grid with short pilot runs on Dataset 1
//! (a *different* dataset than the performance runs use, exactly like
//! the paper) and reports the chosen parameters.

use coupled::report::table;
use coupled::{tune_balancer, Dataset, MachineProfile, RunConfig};

fn main() {
    let run = RunConfig::builder()
        .paper(Dataset::D1, bench::scale().min(0.15))
        .ranks(48)
        .build()
        .expect("valid autotune config");
    let pilot_steps = bench::steps().min(30);
    let report = tune_balancer(
        &run,
        MachineProfile::tianhe2(),
        pilot_steps,
        &coupled::tune::DEFAULT_T_GRID,
        &coupled::tune::DEFAULT_THRESHOLD_GRID,
    );

    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.t_interval.to_string(),
                format!("{}", p.threshold),
                format!("{:.2}", p.total_time),
                p.rebalances.to_string(),
            ]
        })
        .collect();
    println!("auto-tuning pilot runs ({pilot_steps} steps, 48 ranks, Dataset 1):");
    let headers = ["T", "Threshold", "pilot_total_s", "rebalances"];
    println!("{}", table(&headers, &rows));
    bench::write_csv("ablation_autotune.csv", &headers, &rows);
    println!(
        "chosen: T = {}, Threshold = {} (paper's sampled defaults: T = 20, Threshold = 2.0)",
        report.best.t_interval, report.best.threshold
    );
}
