//! Table V: overhead of dynamic load balancing with and without the
//! KM remapping, for both strategies (Dataset 2, Tianhe-2).
//!
//! Paper shapes: KM halves the rebalance overhead for CC at small
//! rank counts; overheads shrink as rank counts grow (fewer
//! rebalances fire); CC overheads are far larger than DC because the
//! migration traffic funnels through the root.

use bench::{write_csv, Experiment, RANK_LADDER};
use coupled::report::table;
use coupled::Phase;
use vmpi::Strategy;

fn main() {
    let variants = [
        (Strategy::Distributed, true, "DC with KM"),
        (Strategy::Distributed, false, "DC without KM"),
        (Strategy::Centralized, true, "CC with KM"),
        (Strategy::Centralized, false, "CC without KM"),
    ];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (strategy, use_km, name) in variants {
        let mut row = vec![name.to_string()];
        for &ranks in &RANK_LADDER {
            let rep = Experiment {
                ranks,
                strategy,
                use_km,
                ..Experiment::default()
            }
            .run();
            let overhead = rep.breakdown[Phase::Rebalance];
            row.push(format!("{overhead:.2}"));
            csv_rows.push(vec![
                name.to_string(),
                ranks.to_string(),
                format!("{overhead:.4}"),
                rep.rebalances.to_string(),
            ]);
            eprintln!(
                "  {name} @ {ranks}: overhead={overhead:.2}s ({} rebalances)",
                rep.rebalances
            );
        }
        rows.push(row);
    }
    println!("\nTable V — rebalance overhead (s), Dataset 2, Tianhe-2");
    let headers = ["variant", "24", "48", "96", "192", "384", "768", "1536"];
    println!("{}", table(&headers, &rows));
    write_csv(
        "tab05_km_overhead.csv",
        &["variant", "ranks", "overhead_s", "rebalances"],
        &csv_rows,
    );

    // compare at 48 ranks (the balancer reliably fires there)
    let cc_km: f64 = rows[2][2].parse().unwrap();
    let cc_no: f64 = rows[3][2].parse().unwrap();
    println!(
        "CC overhead without/with KM at 48 ranks: {:.1}x (paper: ~2x)",
        cc_no / cc_km.max(1e-9)
    );
}
