//! Figure 11: exchange-strategy comparison on the BSCC profile with
//! Dataset 3 (10× fewer particles than Dataset 2), extended from the
//! paper's DC-vs-CC pair to the three-way sweep plus Auto.
//!
//! Paper shapes: with few particles the DC and CC total times are
//! close at ≤384 ranks; at 768 ranks the distributed strategy's
//! communication cost blows up (more than 2× the centralized cost)
//! making the whole CC solver ~25% faster than DC. The Sparse
//! strategy only pays for pairs that actually migrate particles, and
//! Auto re-picks per exchange, so it should track the lower envelope
//! of the fixed strategies.

use bench::{strat_name, write_csv, Experiment};
use coupled::report::table;
use coupled::{Dataset, MachineProfile, Phase};
use vmpi::Strategy;

const STRATEGIES: [Strategy; 4] = [
    Strategy::Distributed,
    Strategy::Centralized,
    Strategy::Sparse,
    Strategy::Auto,
];

fn main() {
    let ranks_ladder = [96usize, 192, 384, 768];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for &ranks in &ranks_ladder {
        let mut row = vec![ranks.to_string()];
        let mut totals = [0.0f64; STRATEGIES.len()];
        for (i, strategy) in STRATEGIES.into_iter().enumerate() {
            let rep = Experiment {
                dataset: Dataset::D3,
                ranks,
                strategy,
                profile: MachineProfile::bscc,
                ..Experiment::default()
            }
            .run();
            let exchange = rep.breakdown[Phase::DsmcExchange] + rep.breakdown[Phase::PicExchange];
            totals[i] = rep.total_time;
            row.push(format!("{:.1}", rep.total_time));
            row.push(format!("{exchange:.2}"));
            csv_rows.push(vec![
                strat_name(strategy).to_string(),
                ranks.to_string(),
                format!("{:.3}", rep.total_time),
                format!("{exchange:.4}"),
                rep.strategy_uses.map(|u| u.to_string()).join("|"),
            ]);
            let [cc, dc, sp, hier] = rep.strategy_uses;
            eprintln!(
                "  {} @ {ranks}: total={:.1}s exchange={exchange:.2}s uses(CC/DC/Sparse/Hier)={cc}/{dc}/{sp}/{hier}",
                strat_name(strategy),
                rep.total_time
            );
        }
        row.push(format!("{:.2}", totals[0] / totals[1]));
        rows.push(row);
    }

    println!("\nFigure 11 — exchange strategies on BSCC, Dataset 3 (fewer particles)");
    let headers = [
        "ranks",
        "DC_total",
        "DC_exch",
        "CC_total",
        "CC_exch",
        "Sparse_total",
        "Sparse_exch",
        "Auto_total",
        "Auto_exch",
        "DC/CC",
    ];
    println!("{}", table(&headers, &rows));
    write_csv(
        "fig11_cc_vs_dc.csv",
        &[
            "strategy",
            "ranks",
            "total_s",
            "exchange_s",
            "uses_cc_dc_sparse_hier",
        ],
        &csv_rows,
    );
    println!("paper: DC/CC ≈ 1 below 384 ranks, ≈ 1.25 at 768 ranks");
    println!("extension: Auto tracks the lower envelope of the fixed strategies");
}
