//! Chaos demonstration run: execute the threaded solver over a
//! deterministically faulty transport and prove bitwise recovery.
//!
//! Runs the same configuration twice — once on a clean wire, once
//! under the supplied fault plan — and compares the final `density_h`
//! fingerprints. With a kill event in the plan, add a checkpoint
//! cadence and the restart policy to watch engine-level recovery
//! replay the run to the identical result.
//!
//! ```text
//! cargo run --release -p bench --bin chaos_run -- \
//!     --fault-plan seed=7,drop=30,dup=20,delay=25/4,kill=1@5 \
//!     --ranks 3 --steps 12 --checkpoint-every 4 --on-fault restart
//! ```
//!
//! Plan grammar (see `vmpi::FaultPlan::parse`): `seed=N`, `drop=`/
//! `dup=`/`delay=` per-mille rates (`delay=R/S` with max span `S`),
//! `kill=RANK@STEP`, `stall=RANK@STEP/MILLIS`.

use coupled::{run_threaded, run_threaded_result, Dataset, FaultPolicy, RunConfig};
use vmpi::FaultPlan;

/// FNV-1a over the little-endian bytes of the density field (the
/// fingerprint the chaos guard tests pin).
fn fnv1a(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

struct Cli {
    plan: FaultPlan,
    ranks: usize,
    steps: usize,
    checkpoint_every: usize,
    on_fault: FaultPolicy,
    seed: u64,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        plan: FaultPlan::seeded(7).drops(30).dups(20).delays(25, 4),
        ranks: 3,
        steps: 12,
        checkpoint_every: 4,
        on_fault: FaultPolicy::RestartFromCheckpoint,
        seed: 4242,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--fault-plan" => cli.plan = FaultPlan::parse(&val("--fault-plan")?)?,
            "--ranks" => cli.ranks = val("--ranks")?.parse().map_err(|e| format!("ranks: {e}"))?,
            "--steps" => cli.steps = val("--steps")?.parse().map_err(|e| format!("steps: {e}"))?,
            "--checkpoint-every" => {
                cli.checkpoint_every = val("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("checkpoint-every: {e}"))?
            }
            "--seed" => cli.seed = val("--seed")?.parse().map_err(|e| format!("seed: {e}"))?,
            "--on-fault" => {
                cli.on_fault = match val("--on-fault")?.as_str() {
                    "abort" => FaultPolicy::Abort,
                    "restart" => FaultPolicy::RestartFromCheckpoint,
                    other => return Err(format!("--on-fault abort|restart, got {other:?}")),
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("chaos_run: {e}");
            std::process::exit(2);
        }
    };
    let config = |plan: Option<FaultPlan>| {
        RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(cli.ranks)
            .seed(cli.seed)
            .steps(cli.steps)
            .rebalance(None)
            .checkpoint_every(cli.checkpoint_every)
            .on_fault(cli.on_fault)
            .fault_plan(plan)
            .build()
            .expect("valid run config")
    };

    println!("== clean wire ==");
    let clean = run_threaded(&config(None));
    let clean_hash = fnv1a(&clean.density_h);
    println!(
        "population={} density_h fnv1a={clean_hash:#018x}",
        clean.population
    );

    println!("== chaotic wire: {:?} ==", cli.plan);
    match run_threaded_result(&config(Some(cli.plan))) {
        Ok(r) => {
            let hash = fnv1a(&r.density_h);
            println!("population={} density_h fnv1a={hash:#018x}", r.population);
            println!(
                "faults_injected={} comm_retries={} comm_dedup_dropped={} recoveries={}",
                r.faults_injected, r.comm_retries, r.comm_dedup_dropped, r.recoveries
            );
            if hash == clean_hash {
                println!("BITWISE MATCH: chaotic run reproduced the clean result exactly");
            } else {
                println!("MISMATCH: chaotic {hash:#018x} vs clean {clean_hash:#018x}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            println!("run failed: {e}");
            std::process::exit(1);
        }
    }
}
