//! Table II + Figure 10: strong scaling of the four implementation
//! variants (DC/CC × ±LB) on the Tianhe-2 profile, Dataset 2.
//!
//! Paper shapes to reproduce:
//! * all variants speed up from 24 → 1536 ranks;
//! * DC beats CC at every rank count on Tianhe-2 (large particle
//!   counts), with a growing margin;
//! * LB improves both strategies, most strongly at small rank counts
//!   (~40% at 48 ranks);
//! * total time flattens (or regresses slightly) at 1536 ranks.

use bench::{strat_name, write_csv, Experiment, RANK_LADDER};
use coupled::report::{secs, table};
use vmpi::Strategy;

fn main() {
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let variants = [
        (Strategy::Distributed, true, "DC+LB"),
        (Strategy::Distributed, false, "DC-Only"),
        (Strategy::Centralized, true, "CC+LB"),
        (Strategy::Centralized, false, "CC-Only"),
    ];
    for (strategy, lb, name) in variants {
        let mut row = vec![name.to_string()];
        for &ranks in &RANK_LADDER {
            let rep = Experiment {
                ranks,
                strategy,
                load_balance: lb,
                ..Experiment::default()
            }
            .run();
            row.push(secs(rep.total_time));
            csv_rows.push(vec![
                strat_name(strategy).to_string(),
                lb.to_string(),
                ranks.to_string(),
                format!("{:.3}", rep.total_time),
            ]);
            eprintln!("  {name} @ {ranks} ranks: {:.1}s", rep.total_time);
        }
        rows.push(row);
    }

    println!("\nTable II — total modelled execution time (s), Dataset 2, Tianhe-2");
    let headers = ["variant", "24", "48", "96", "192", "384", "768", "1536"];
    println!("{}", table(&headers, &rows));
    write_csv(
        "tab02_strong_scaling.csv",
        &["strategy", "lb", "ranks", "total_s"],
        &csv_rows,
    );

    // headline checks, printed for EXPERIMENTS.md
    let get = |r: usize, c: usize| rows[r][c + 1].parse::<f64>().unwrap();
    let speedup_dc = get(1, 0) / get(1, 6);
    println!("DC-Only speedup 24→1536: {speedup_dc:.1}x (paper: ~14x)");
    let lb_gain_48 = (get(1, 1) - get(0, 1)) / get(1, 1) * 100.0;
    println!("LB gain for DC at 48 ranks: {lb_gain_48:.0}% (paper: ~40%)");
    let dc_vs_cc_1536 = (get(2, 6) - get(0, 6)) / get(0, 6) * 100.0;
    println!("DC advantage over CC at 1536 ranks: {dc_vs_cc_1536:.0}% (paper: >60%)");
}
