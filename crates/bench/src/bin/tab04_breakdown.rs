//! Table IV: per-procedure breakdown of the DC+LB implementation on
//! Tianhe-2, Dataset 2.
//!
//! Paper shapes: DSMC_Move / Inject / Reindex scale near-linearly;
//! exchange costs are small and shrink; Poisson_Solve does NOT scale
//! (slowly grows with rank count) and becomes the bottleneck.

use bench::{write_csv, Experiment, RANK_LADDER};
use coupled::report::table;
use coupled::Phase;

fn main() {
    let phases = [
        Phase::DsmcMove,
        Phase::DsmcExchange,
        Phase::Inject,
        Phase::PicMove,
        Phase::PicExchange,
        Phase::PoissonSolve,
        Phase::Reindex,
    ];
    let mut per_rank_reports = Vec::new();
    for &ranks in &RANK_LADDER {
        let rep = Experiment {
            ranks,
            ..Experiment::default()
        }
        .run();
        eprintln!("  {ranks} ranks: total={:.1}s", rep.total_time);
        per_rank_reports.push(rep);
    }

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for p in phases {
        let mut row = vec![p.name().to_string()];
        for (rep, &ranks) in per_rank_reports.iter().zip(&RANK_LADDER) {
            row.push(format!("{:.1}", rep.breakdown[p]));
            csv_rows.push(vec![
                p.name().to_string(),
                ranks.to_string(),
                format!("{:.3}", rep.breakdown[p]),
            ]);
        }
        rows.push(row);
    }
    println!("\nTable IV — breakdown (s), DC+LB, Dataset 2, Tianhe-2");
    let headers = ["procedure", "24", "48", "96", "192", "384", "768", "1536"];
    println!("{}", table(&headers, &rows));
    write_csv(
        "tab04_breakdown.csv",
        &["procedure", "ranks", "time_s"],
        &csv_rows,
    );

    // headline checks
    let poi = |i: usize| per_rank_reports[i].breakdown[Phase::PoissonSolve];
    println!(
        "Poisson_Solve 24 ranks: {:.1}s vs 1536 ranks: {:.1}s — must NOT scale (paper: 95 -> 126)",
        poi(0),
        poi(6)
    );
    let mv = |i: usize| per_rank_reports[i].breakdown[Phase::DsmcMove];
    println!(
        "DSMC_Move speedup 24 -> 1536: {:.1}x (paper: ~43x)",
        mv(0) / mv(6).max(1e-12)
    );
}
