//! Figure 14: impact of MPI rank placement (inner-frame / inner-rack
//! / inter-rack) for both strategies with LB on Tianhe-2, ≤96 ranks.
//!
//! Paper shape: inner-frame is best, but the spread is only ~1–2%,
//! demonstrating robustness to placement.

use bench::{strat_name, write_csv, Experiment};
use coupled::report::table;
use coupled::Placement;
use vmpi::Strategy;

fn main() {
    let placements = [
        (Placement::InnerFrame, "inner-frame"),
        (Placement::InnerRack, "inner-rack"),
        (Placement::InterRack, "inter-rack"),
    ];
    let ranks_ladder = [24usize, 48, 96];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for strategy in [Strategy::Centralized, Strategy::Distributed] {
        for (placement, pname) in placements {
            let mut row = vec![format!("{} {pname}", strat_name(strategy))];
            for &ranks in &ranks_ladder {
                let rep = Experiment {
                    ranks,
                    strategy,
                    placement,
                    ..Experiment::default()
                }
                .run();
                row.push(format!("{:.1}", rep.total_time));
                csv_rows.push(vec![
                    strat_name(strategy).to_string(),
                    pname.to_string(),
                    ranks.to_string(),
                    format!("{:.3}", rep.total_time),
                ]);
                eprintln!(
                    "  {} {pname} @ {ranks}: {:.1}s",
                    strat_name(strategy),
                    rep.total_time
                );
            }
            rows.push(row);
        }
    }
    println!("\nFigure 14 — total time (s) per MPI rank placement, LB on");
    let headers = ["variant", "24", "48", "96"];
    println!("{}", table(&headers, &rows));
    write_csv(
        "fig14_placement.csv",
        &["strategy", "placement", "ranks", "total_s"],
        &csv_rows,
    );

    // spread check at 96 ranks, DC
    let dc: Vec<f64> = rows[3..6].iter().map(|r| r[3].parse().unwrap()).collect();
    let spread = (dc.iter().copied().fold(f64::MIN, f64::max)
        - dc.iter().copied().fold(f64::MAX, f64::min))
        / dc[0]
        * 100.0;
    println!("DC placement spread at 96 ranks: {spread:.1}% (paper: ~1-2%)");
}
