//! Table III: total execution times of DSMC_Move + PIC_Move with and
//! without dynamic load balancing (DC strategy, Dataset 2, Tianhe-2).
//!
//! Paper shape: with LB the combined move time drops to less than a
//! third of the unbalanced implementation at small rank counts.

use bench::{write_csv, Experiment, RANK_LADDER};
use coupled::report::{secs, table};
use coupled::Phase;

fn main() {
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for lb in [true, false] {
        let name = if lb { "LB" } else { "No-LB" };
        let mut row = vec![name.to_string()];
        for &ranks in &RANK_LADDER {
            let rep = Experiment {
                ranks,
                load_balance: lb,
                ..Experiment::default()
            }
            .run();
            let move_time = rep.breakdown[Phase::DsmcMove] + rep.breakdown[Phase::PicMove];
            row.push(secs(move_time));
            csv_rows.push(vec![
                name.to_string(),
                ranks.to_string(),
                format!("{move_time:.3}"),
            ]);
            eprintln!("  {name} @ {ranks}: move={move_time:.1}s");
        }
        rows.push(row);
    }
    println!("\nTable III — DSMC_Move + PIC_Move time (s), DC, Dataset 2, Tianhe-2");
    let headers = ["variant", "24", "48", "96", "192", "384", "768", "1536"];
    println!("{}", table(&headers, &rows));
    write_csv(
        "tab03_move_times.csv",
        &["variant", "ranks", "move_s"],
        &csv_rows,
    );

    let with_lb: f64 = rows[0][1].parse().unwrap();
    let without: f64 = rows[1][1].parse().unwrap();
    println!(
        "no-LB / LB move-time ratio at 24 ranks: {:.1}x (paper: >3x)",
        without / with_lb
    );
}
