//! Scenario imbalance comparison (DESIGN.md §17): lii trajectories of
//! the three canned scenarios on the modelled cluster driver, with
//! the timer-augmented balancer active.
//!
//! The scenarios span the imbalance spectrum by construction:
//! * `freestream` — near-uniform inflow across the whole duct, the
//!   balancer's easy case;
//! * `thermal_box` — quiescent fill with a weak pump and subcycled
//!   DSMC, mild drift toward the inlet;
//! * `jet` — a narrow dense plume from a small orifice, the stress
//!   case: the inlet rank holds the bulk of the particles until the
//!   balancer intervenes.
//!
//! Expectation: the jet starts far more imbalanced than the others
//! and is pulled back toward parity by rebalances; the freestream
//! trajectory stays near 1 throughout.

use balance::{CostSourceKind, RebalanceConfig};
use bench::{steps, write_csv};
use coupled::report::table;
use coupled::{ClusterSim, MachineProfile};

/// Steady-state lii: mean over the last quarter of the trace.
fn steady_state_lii(lii: &[f64]) -> f64 {
    let tail = &lii[lii.len() - (lii.len() / 4).max(1)..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

fn main() {
    // scenarios carry a short guard-sized horizon; stretch it so the
    // flows develop and the balancer gets to act
    let horizon = steps().max(40);

    let mut csv_rows = Vec::new();
    let mut summary: Vec<Vec<String>> = Vec::new();
    for name in coupled::scenario::names() {
        let mut run = coupled::scenario::canned(name)
            .expect("canned scenario lowers")
            .run;
        run.rebalance = Some(RebalanceConfig {
            t_interval: 5,
            threshold: 1.2,
            cost_source: CostSourceKind::TimerAugmented,
            ..RebalanceConfig::default()
        });
        let rep = ClusterSim::new(&run, MachineProfile::tianhe2()).run(horizon);
        let lii: Vec<f64> = rep.trace.iter().map(|tr| tr.lii).collect();
        for (i, (tr, &l)) in rep.trace.iter().zip(&lii).enumerate() {
            csv_rows.push(vec![
                name.to_string(),
                i.to_string(),
                format!("{l:.4}"),
                tr.rebalanced.to_string(),
            ]);
        }
        let peak = lii.iter().copied().fold(f64::MIN, f64::max);
        summary.push(vec![
            name.to_string(),
            format!("{peak:.3}"),
            format!("{:.3}", steady_state_lii(&lii)),
            rep.rebalances.to_string(),
            rep.population.to_string(),
        ]);
    }

    println!("scenario imbalance, timer-augmented balancer, {horizon} modelled steps\n");
    println!(
        "{}",
        table(
            &[
                "scenario",
                "peak lii",
                "steady lii",
                "rebalances",
                "particles"
            ],
            &summary,
        )
    );
    write_csv(
        "fig_scenario_imbalance.csv",
        &["scenario", "step", "lii", "rebalanced"],
        &csv_rows,
    );
}
