//! Figure 9: H number density along the central axis at four time
//! points, serial vs parallel, with relative errors.
//!
//! Paper result: the serial and parallel axis profiles coincide at
//! every time point; mean relative errors < ~3%, growing where the
//! density approaches zero (plume front).
//!
//! Statistics note: the paper samples 10⁷+ particles; our scaled runs
//! carry ~10⁴, so the axis density is averaged over the innermost
//! radial bin of an r–z histogram (all near-axis cells per z-slab)
//! rather than single cells, and the expected statistical floor is
//! ~1/√N per bin.

use coupled::diag::{mean_relative_error, rz_slice};
use coupled::prelude::*;

fn main() {
    let scale = bench::scale().min(0.3);
    let base_steps = bench::steps();
    // four "time points": quarter, half, three-quarter, full run
    let checkpoints = [
        base_steps / 4,
        base_steps / 2,
        3 * base_steps / 4,
        base_steps,
    ];

    let mut csv_rows = Vec::new();
    for &steps in &checkpoints {
        // `--trace-out` traces the full-length parallel run only (the
        // earlier checkpoints would overwrite the same file).
        let trace = if steps == base_steps {
            bench::trace_spec()
        } else {
            TraceSpec::Off
        };
        let run = RunConfig::builder()
            .paper(Dataset::D1, scale)
            .ranks(4)
            .steps(steps.max(1))
            .rebalance(None)
            .build()
            .expect("valid fig09 config");
        let ser = run_serial(&run);
        let mut par_run = run.clone();
        par_run.obs.trace = trace;
        let par = run_threaded(&par_run);

        let spec = run.sim.nozzle;
        let mesh = spec.generate();
        let nz_bins = 8usize;
        // innermost radial bin = the near-axis density profile
        let sp = &rz_slice(&mesh, &ser.density_h, spec.radius, spec.length, 2, nz_bins)[0];
        let pp = &rz_slice(&mesh, &par.density_h, spec.radius, spec.length, 2, nz_bins)[0];
        let s_prof: Vec<(f64, f64)> = sp
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i as f64 + 0.5) / nz_bins as f64 * spec.length, v))
            .collect();
        let p_prof: Vec<(f64, f64)> = pp
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i as f64 + 0.5) / nz_bins as f64 * spec.length, v))
            .collect();
        let err = mean_relative_error(&s_prof, &p_prof);
        let t_us = run.sim.dt_dsmc * steps as f64 * 1e6;
        println!(
            "t = {t_us:.2} µs ({steps} steps): mean relative error on axis = {:.1}%",
            err * 100.0
        );
        println!("   z (mm) | serial n_H (1/m3) | parallel n_H (1/m3)");
        for ((z, s), (_, p)) in s_prof.iter().zip(&p_prof) {
            println!("   {:6.2} | {s:>17.4e} | {p:>17.4e}", z * 1e3);
            csv_rows.push(vec![
                format!("{t_us:.3}"),
                format!("{:.4}", z * 1e3),
                format!("{s:.5e}"),
                format!("{p:.5e}"),
            ]);
        }
    }
    bench::write_csv(
        "fig09_validation.csv",
        &["t_us", "z_mm", "serial", "parallel"],
        &csv_rows,
    );
    println!("\npaper: curves coincide; mean relative errors < 2.97% at 10^7+ particles;");
    println!("our populations are ~10^3x smaller, so the statistical floor is a few %.");
    println!("Raise REPRO_SCALE to tighten the comparison.");
}
