//! Figure 8: H number-density contours after the run, produced by the
//! serial reference and by the real (threaded) parallel solver.
//!
//! Paper result: the contours agree up to random-seed noise. We
//! render both as ASCII r–z contours and report the field-level
//! agreement.

use coupled::diag::{ascii_contour, mean_relative_error, rz_slice};
use coupled::prelude::*;

fn main() {
    let scale = bench::scale().min(0.15); // threaded runs are real work
    let run = RunConfig::builder()
        .paper(Dataset::D1, scale)
        .ranks(4)
        .steps(bench::steps())
        .rebalance(None)
        .build()
        .expect("valid fig08 config");

    println!("running serial reference ({} steps)...", run.steps);
    let ser = run_serial(&run);
    println!("running 4-rank threaded solver...");
    // the threaded run is the designated trace target: pass
    // `--trace-out <path>` (or set REPRO_TRACE) for a JSONL trace,
    // and its report + metrics land next to the CSV.
    let metrics = Registry::new();
    let mut par_run = run.clone();
    par_run.obs.trace = bench::trace_spec();
    par_run.obs.metrics = Some(metrics.clone());
    let par = run_threaded(&par_run);
    bench::write_report_json(
        "fig08_parallel_report.json",
        &par,
        Some(&metrics.snapshot()),
    );

    let spec = run.sim.nozzle;
    let mesh = spec.generate();
    // coarse bins: at our scaled population each bin still holds
    // enough particles for the comparison to be statistical, not noise
    let (nr, nz) = (4usize, 12usize);
    let s_slice = rz_slice(&mesh, &ser.density_h, spec.radius, spec.length, nr, nz);
    let p_slice = rz_slice(&mesh, &par.density_h, spec.radius, spec.length, nr, nz);

    println!("\n(a) serial H density contour (rows = radius, cols = z, 0-9 scale):");
    println!("{}", ascii_contour(&s_slice));
    println!("(b) parallel (4 ranks) H density contour:");
    println!("{}", ascii_contour(&p_slice));

    // field-level agreement on the flattened slices
    let a: Vec<(f64, f64)> = s_slice
        .iter()
        .flatten()
        .enumerate()
        .map(|(i, &v)| (i as f64, v))
        .collect();
    let b: Vec<(f64, f64)> = p_slice
        .iter()
        .flatten()
        .enumerate()
        .map(|(i, &v)| (i as f64, v))
        .collect();
    let err = mean_relative_error(&a, &b);
    println!(
        "mean relative contour difference: {:.1}% (paper: 'minor differences ... due to random seeds')",
        err * 100.0
    );
    println!(
        "populations: serial {} vs parallel {}",
        ser.population, par.population
    );

    let rows: Vec<Vec<String>> = a
        .iter()
        .zip(&b)
        .map(|((i, s), (_, p))| vec![i.to_string(), format!("{s:.4e}"), format!("{p:.4e}")])
        .collect();
    bench::write_csv("fig08_contours.csv", &["bin", "serial", "parallel"], &rows);
}
