//! Balance-mode comparison (DESIGN.md §15): lii trajectories of the
//! pluggable balancing pipeline on the high-imbalance injection jet
//! (the inlet rank starts with nearly all particles, fig. 5).
//!
//! Three modes over the same run:
//! * `paper_wlm` — analytic weighted load model (eq. 7), unified
//!   particle/field decomposition (the paper's configuration);
//! * `timer_augmented` — EWMA-smoothed measured per-phase costs feed
//!   the partition weights instead of the analytic model;
//! * `eullag` — paper WLM weights, Eulerian/Lagrangian split (static
//!   block-partitioned field grid, gather/scatter charge halo), so
//!   the balancer moves particle work only.
//!
//! Expectation: the timer-augmented source tracks the true collision
//! cost (quadratic in cell occupancy) and settles at a steady-state
//! lii no worse than the analytic model's.

use balance::CostSourceKind;
use bench::{steps, write_csv, Experiment};
use coupled::report::table;
use coupled::Decomposition;

/// Steady-state lii: mean over the last quarter of the trace.
fn steady_state_lii(lii: &[f64]) -> f64 {
    let tail = &lii[lii.len() - (lii.len() / 4).max(1)..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

fn main() {
    let modes: [(&str, CostSourceKind, Decomposition); 3] = [
        (
            "paper_wlm",
            CostSourceKind::PaperWlm,
            Decomposition::Unified,
        ),
        (
            "timer_augmented",
            CostSourceKind::TimerAugmented,
            Decomposition::Unified,
        ),
        ("eullag", CostSourceKind::PaperWlm, Decomposition::EulLag),
    ];

    // the steady-state comparison is only meaningful once the jet has
    // filled the domain, so floor the horizon regardless of the
    // (usually shorter) global REPRO_STEPS knob
    let horizon = steps().max(80);

    let mut csv_rows = Vec::new();
    let mut trajectories: Vec<(&str, Vec<f64>)> = Vec::new();
    for (name, cost_source, decomposition) in modes {
        let rep = Experiment {
            ranks: 8,
            t_interval: 10,
            threshold: 1.5,
            cost_source,
            decomposition,
            steps: Some(horizon),
            ..Experiment::default()
        }
        .run();
        let lii: Vec<f64> = rep.trace.iter().map(|tr| tr.lii).collect();
        for (i, (tr, &l)) in rep.trace.iter().zip(&lii).enumerate() {
            csv_rows.push(vec![
                name.to_string(),
                i.to_string(),
                format!("{l:.4}"),
                tr.rebalanced.to_string(),
            ]);
        }
        eprintln!(
            "  {name}: steady-state lii {:.3}, {} rebalances, total {:.1}s",
            steady_state_lii(&lii),
            rep.rebalances,
            rep.total_time
        );
        trajectories.push((name, lii));
    }

    println!("\nBalance modes — lii trajectories, 8 ranks, injection jet");
    let rows: Vec<Vec<String>> = trajectories
        .iter()
        .map(|(name, lii)| {
            vec![
                name.to_string(),
                format!("{:.3}", lii.iter().copied().fold(0.0f64, f64::max)),
                format!("{:.3}", steady_state_lii(lii)),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["mode", "peak_lii", "steady_state_lii"], &rows)
    );
    write_csv(
        "fig_balance_modes.csv",
        &["mode", "step", "lii", "rebalanced"],
        &csv_rows,
    );

    let paper = steady_state_lii(&trajectories[0].1);
    let timer = steady_state_lii(&trajectories[1].1);
    // small tolerance: both modes rebalance the same jet, the claim is
    // "no worse", not "strictly better on every seed"
    assert!(
        timer <= paper * 1.05 + 1e-9,
        "timer-augmented steady-state lii {timer:.3} regressed past paper WLM {paper:.3}"
    );
    println!(
        "timer-augmented steady-state lii {timer:.3} vs paper WLM {paper:.3} (\u{2264} required)"
    );
}
