//! Table VI: total execution times under different `W_cell` values of
//! the weighted load model (DC strategy, Dataset 2, Tianhe-2).
//!
//! Paper shapes: moderate `W_cell` (100–1000) is mildly better than 1;
//! an extreme value (10000) hurts at small rank counts because cell
//! weight swamps particle weight and the partitioner stops balancing
//! particles; effects fade at large rank counts (≤10%).

use bench::{write_csv, Experiment, RANK_LADDER};
use coupled::report::{secs, table};

fn main() {
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for w_cell in [1i64, 10, 100, 1000, 10000] {
        let mut row = vec![format!("W_cell={w_cell}")];
        for &ranks in &RANK_LADDER {
            let rep = Experiment {
                ranks,
                w_cell,
                ..Experiment::default()
            }
            .run();
            row.push(secs(rep.total_time));
            csv_rows.push(vec![
                w_cell.to_string(),
                ranks.to_string(),
                format!("{:.3}", rep.total_time),
            ]);
            eprintln!("  W_cell={w_cell} @ {ranks}: {:.1}s", rep.total_time);
        }
        rows.push(row);
    }
    println!("\nTable VI — total time (s) vs W_cell, DC+LB, Dataset 2, Tianhe-2");
    let headers = ["variant", "24", "48", "96", "192", "384", "768", "1536"];
    println!("{}", table(&headers, &rows));
    write_csv(
        "tab06_sweep_wcell.csv",
        &["w_cell", "ranks", "total_s"],
        &csv_rows,
    );

    let w1: f64 = rows[0][1].parse().unwrap();
    let w10000: f64 = rows[4][1].parse().unwrap();
    println!(
        "W_cell=10000 vs W_cell=1 at 24 ranks: {:+.0}% (paper: ~+16%)",
        (w10000 - w1) / w1 * 100.0
    );
}
