//! Criterion benchmarks of the concrete particle-exchange strategies
//! on the real threaded backend (paper §IV-B): same payload, different
//! protocols. The `quiet` variants keep a single nonzero pair — the
//! regime the sparse counts-first protocol is built for.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vmpi::{exchange, run_world, Comm, Strategy};

const NAMES: [(Strategy, &str); 3] = [
    (Strategy::Distributed, "distributed"),
    (Strategy::Centralized, "centralized"),
    (Strategy::Sparse, "sparse"),
];

fn bench_exchange(c: &mut Criterion) {
    for ranks in [4usize, 8] {
        for (strategy, name) in NAMES {
            c.bench_function(&format!("exchange/{name}_{ranks}ranks_64KiB"), |b| {
                b.iter(|| {
                    let out = run_world(ranks, |comm| {
                        let outgoing: Vec<Vec<u8>> = (0..comm.size())
                            .map(|d| {
                                if d == comm.rank() {
                                    Vec::new()
                                } else {
                                    vec![0xAB; 64 * 1024 / comm.size()]
                                }
                            })
                            .collect();
                        let incoming = exchange(&comm, strategy, outgoing);
                        incoming.iter().map(|b| b.len()).sum::<usize>()
                    });
                    black_box(out)
                })
            });
            c.bench_function(&format!("exchange/{name}_{ranks}ranks_quiet"), |b| {
                b.iter(|| {
                    let out = run_world(ranks, |comm| {
                        let mut outgoing = vec![Vec::new(); comm.size()];
                        if comm.rank() == 1 {
                            outgoing[0] = vec![0xAB; 61 * 32];
                        }
                        let incoming = exchange(&comm, strategy, outgoing);
                        incoming.iter().map(|b| b.len()).sum::<usize>()
                    });
                    black_box(out)
                })
            });
        }
    }
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
