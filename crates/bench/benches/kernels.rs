//! Criterion micro-benchmarks of the per-particle hot kernels:
//! point location / tet walking, the Boris pusher, NTC collisions,
//! charge deposition and the wire format.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mesh::{locate, NestedMesh, NozzleSpec, Vec3};
use particles::{Particle, ParticleBuffer, SpeciesTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn nested() -> NestedMesh {
    let spec = NozzleSpec {
        nd: 8,
        nz: 16,
        ..NozzleSpec::default()
    };
    let coarse = spec.generate();
    NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n))
}

fn filled_buffer(nm: &NestedMesh, n: usize) -> ParticleBuffer {
    let mut rng = StdRng::seed_from_u64(7);
    let mut buf = ParticleBuffer::new();
    for k in 0..n {
        let c = (k * 37) % nm.num_coarse();
        let p = nm.coarse.tet_pos(c);
        buf.push(Particle {
            pos: particles::sample::point_in_tet(&mut rng, p[0], p[1], p[2], p[3]),
            vel: particles::sample::maxwellian(
                &mut rng,
                300.0,
                particles::MASS_H,
                Vec3::new(0.0, 0.0, 1e4),
            ),
            cell: c as u32,
            species: 0,
            id: k as u64,
        });
    }
    buf
}

fn bench_locate(c: &mut Criterion) {
    let nm = nested();
    let loc = locate::CellLocator::new(&nm.coarse, 1024);
    let targets: Vec<Vec3> = (0..64)
        .map(|k| nm.coarse.centroids[(k * 53) % nm.num_coarse()])
        .collect();
    c.bench_function("locate/walk_from_far_seed", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &p in &targets {
                if locate::locate_walk(&nm.coarse, 0, p, 100_000).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
    c.bench_function("locate/bin_locator", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &p in &targets {
                if loc.locate(&nm.coarse, p).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
}

fn bench_move(c: &mut Criterion) {
    let nm = nested();
    let (table, _, _) = SpeciesTable::hydrogen_plasma(1e12, 6000.0);
    c.bench_function("dsmc/move_10k_particles", |b| {
        b.iter_batched(
            || (filled_buffer(&nm, 10_000), StdRng::seed_from_u64(1)),
            |(mut buf, mut rng)| {
                dsmc::move_particles(&nm.coarse, &mut buf, &table, 1e-7, 300.0, &mut rng);
                black_box(buf.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_boris(c: &mut Criterion) {
    let e = Vec3::new(100.0, -50.0, 25.0);
    let b_field = Vec3::new(0.0, 0.0, 0.05);
    let qm = particles::QE / particles::MASS_H;
    c.bench_function("pic/boris_push_electrostatic", |bch| {
        bch.iter(|| {
            let mut v = Vec3::new(1e4, 0.0, 0.0);
            for _ in 0..1000 {
                v = pic::boris_push(v, black_box(e), Vec3::ZERO, qm, 1e-8);
            }
            black_box(v)
        })
    });
    c.bench_function("pic/boris_push_magnetized", |bch| {
        bch.iter(|| {
            let mut v = Vec3::new(1e4, 0.0, 0.0);
            for _ in 0..1000 {
                v = pic::boris_push(v, black_box(e), b_field, qm, 1e-8);
            }
            black_box(v)
        })
    });
}

fn bench_collide(c: &mut Criterion) {
    let nm = nested();
    let (table, _, _) = SpeciesTable::hydrogen_plasma(1e12, 6000.0);
    c.bench_function("dsmc/ntc_collide_10k", |b| {
        b.iter_batched(
            || {
                (
                    filled_buffer(&nm, 10_000),
                    dsmc::CollisionModel::new(nm.num_coarse(), &table, 300.0),
                    StdRng::seed_from_u64(2),
                    Vec::new(),
                )
            },
            |(mut buf, mut model, mut rng, mut ev)| {
                let stats = model.collide(&nm.coarse, &mut buf, &table, 0, 1e-6, &mut rng, &mut ev);
                black_box(stats)
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_deposit(c: &mut Criterion) {
    let nm = nested();
    let (table, _, hp) = SpeciesTable::hydrogen_plasma(1e12, 6000.0);
    let mut buf = filled_buffer(&nm, 10_000);
    for s in buf.species.iter_mut() {
        *s = hp;
    }
    c.bench_function("pic/deposit_10k_ions", |b| {
        b.iter(|| black_box(pic::deposit_charge(&nm, &buf, &table)))
    });
}

fn bench_pack(c: &mut Criterion) {
    let nm = nested();
    let buf = filled_buffer(&nm, 10_000);
    let idx: Vec<usize> = (0..buf.len()).collect();
    c.bench_function("particles/pack_unpack_10k", |b| {
        b.iter(|| {
            let bytes = particles::pack_selected(&buf, &idx);
            let mut out = ParticleBuffer::new();
            particles::unpack_all(&bytes, &mut out);
            black_box(out.len())
        })
    });
}

/// 1-vs-N worker variants of the four pooled hot kernels. Wall-clock
/// speedup needs as many host CPUs as workers; `bench_snapshot`
/// (src/bin) runs the same kernels and records ns/op to
/// `BENCH_kernels.json` together with the visible CPU count.
fn bench_pooled_scaling(c: &mut Criterion) {
    let nm = nested();
    let (table, _, hp) = SpeciesTable::hydrogen_plasma(1e12, 6000.0);
    for workers in [1usize, 4] {
        let pool = kernels::Pool::new(workers);

        c.bench_function(&format!("dsmc/move_pooled_10k/w{workers}"), |b| {
            b.iter_batched(
                || (filled_buffer(&nm, 10_000), StdRng::seed_from_u64(1)),
                |(mut buf, mut rng)| {
                    let st = dsmc::move_particles_pooled(
                        &nm.coarse,
                        &mut buf,
                        &table,
                        1e-7,
                        300.0,
                        &mut rng,
                        &pool,
                        |_| true,
                        None,
                        None,
                    );
                    black_box(st)
                },
                criterion::BatchSize::LargeInput,
            )
        });

        c.bench_function(&format!("dsmc/collide_pooled_10k/w{workers}"), |b| {
            b.iter_batched(
                || {
                    (
                        filled_buffer(&nm, 10_000),
                        dsmc::CollisionModel::new(nm.num_coarse(), &table, 300.0),
                        StdRng::seed_from_u64(2),
                        Vec::new(),
                    )
                },
                |(mut buf, mut model, mut rng, mut ev)| {
                    let st = model.collide_pooled(
                        &nm.coarse, &mut buf, &table, 0, 1e-6, &mut rng, &mut ev, &pool,
                    );
                    black_box(st)
                },
                criterion::BatchSize::LargeInput,
            )
        });

        let mut ion_buf = filled_buffer(&nm, 10_000);
        for s in ion_buf.species.iter_mut() {
            *s = hp;
        }
        let mut q = vec![0.0f64; nm.fine.num_nodes()];
        c.bench_function(&format!("pic/deposit_pooled_10k/w{workers}"), |b| {
            b.iter(|| {
                q.iter_mut().for_each(|v| *v = 0.0);
                pic::deposit_charge_pooled(&nm, &ion_buf, &table, &mut q, &pool);
                black_box(q[0])
            })
        });
    }
}

fn bench_sort_by_cell(c: &mut Criterion) {
    let nm = nested();
    c.bench_function("particles/sort_by_cell_10k", |b| {
        b.iter_batched(
            || {
                (
                    filled_buffer(&nm, 10_000),
                    particles::SortScratch::default(),
                )
            },
            |(mut buf, mut scratch)| {
                buf.sort_by_cell(nm.num_coarse(), &mut scratch);
                black_box(buf.cell[0])
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_locate,
    bench_move,
    bench_boris,
    bench_collide,
    bench_deposit,
    bench_pack,
    bench_pooled_scaling,
    bench_sort_by_cell
);
criterion_main!(benches);
