//! Criterion benchmarks for the Poisson path (assembly + CG, the
//! paper's scalability bottleneck) and the graph partitioner + KM
//! remapping used by the load balancer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mesh::{NestedMesh, NozzleSpec};
use partition::{max_weight_assignment, part_graph_kway, Graph, KwayOptions};
use pic::PoissonSolver;
use sparse::KrylovOptions;

fn nested() -> NestedMesh {
    let spec = NozzleSpec {
        nd: 8,
        nz: 16,
        ..NozzleSpec::default()
    };
    let coarse = spec.generate();
    NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n))
}

fn bench_poisson(c: &mut Criterion) {
    let nm = nested();
    c.bench_function("poisson/assemble", |b| {
        b.iter(|| black_box(PoissonSolver::new(&nm.fine, KrylovOptions::default())))
    });

    let mut solver = PoissonSolver::new(
        &nm.fine,
        KrylovOptions {
            rtol: 1e-6,
            max_iters: 1000,
        },
    );
    let interior = (0..nm.fine.num_nodes())
        .find(|&i| !solver.is_boundary[i])
        .unwrap();
    let mut q = vec![0.0; nm.fine.num_nodes()];
    q[interior] = 1e-15;
    c.bench_function("poisson/cg_solve_cold", |b| {
        b.iter(|| {
            // perturb so the warm start does not trivialize the solve
            q[interior] *= -1.0;
            let (_, stats) = solver.solve(&q);
            black_box(stats.iterations)
        })
    });
}

fn bench_partition(c: &mut Criterion) {
    let nm = nested();
    let (xadj, adjncy) = nm.coarse.cell_graph();
    let g = Graph::new(xadj, adjncy, vec![1; nm.num_coarse()]);
    c.bench_function("partition/kway_16", |b| {
        b.iter(|| black_box(part_graph_kway(&g, 16, KwayOptions::default())))
    });
    c.bench_function("partition/kway_64", |b| {
        b.iter(|| black_box(part_graph_kway(&g, 64, KwayOptions::default())))
    });
}

fn bench_hungarian(c: &mut Criterion) {
    for n in [16usize, 64, 128] {
        let w: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 7 + j * 13) % 100) as i64).collect())
            .collect();
        c.bench_function(&format!("hungarian/km_{n}x{n}"), |b| {
            b.iter(|| black_box(max_weight_assignment(&w)))
        });
    }
}

criterion_group!(benches, bench_poisson, bench_partition, bench_hungarian);
criterion_main!(benches);
