//! Multilevel k-way graph partitioning and Kuhn–Munkres assignment —
//! the workspace's replacement for METIS (`METIS_PartGraphKway`) and
//! the KM remapping algorithm of the paper (§IV-A, §V-B, §V-C).

pub mod coarsen;
pub mod graph;
pub mod hungarian;
pub mod initial;
pub mod kway;
pub mod metrics;
pub mod refine;

pub use graph::Graph;
pub use hungarian::{max_weight_assignment, min_cost_assignment};
pub use kway::{part_graph_kway, part_graph_kway_weighted, KwayOptions};
pub use metrics::{edge_cut, imbalance, part_weights};
