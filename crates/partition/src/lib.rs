//! Multilevel k-way graph partitioning, Kuhn–Munkres assignment and
//! decomposition modes — the workspace's replacement for METIS
//! (`METIS_PartGraphKway`) and the KM remapping algorithm of the
//! paper (§IV-A, §V-B, §V-C), plus the unified vs Eulerian/Lagrangian
//! mode selector of the split-decomposition extension.

pub mod coarsen;
pub mod decomp;
pub mod graph;
pub mod hungarian;
pub mod initial;
pub mod kway;
pub mod metrics;
pub mod refine;

pub use decomp::{block_owner, block_ranges, Decomposition};
pub use graph::Graph;
pub use hungarian::{max_weight_assignment, min_cost_assignment};
pub use kway::{part_graph_kway, part_graph_kway_weighted, KwayOptions};
pub use metrics::{edge_cut, imbalance, part_weights};
