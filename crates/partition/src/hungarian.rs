//! Kuhn–Munkres (Hungarian) algorithm for the assignment problem
//! (paper §V-C).
//!
//! The load balancer converts grid remapping into maximum-weight
//! perfect matching on the bipartite graph (new partition parts ×
//! ranks), where the weight of (part `p`, rank `r`) is the amount of
//! load already resident on `r` that the new part `p` would keep in
//! place. A maximum matching therefore minimises migrated particles.
//!
//! This is the classic O(n³) potentials formulation.

/// Solve the *minimum-cost* assignment problem for the square matrix
/// `cost` (`n×n`, `cost[i][j]` = cost of assigning row `i` to column
/// `j`). Returns `(assignment, total_cost)` with `assignment[i] =
/// column of row i`.
pub fn min_cost_assignment(cost: &[Vec<i64>]) -> (Vec<usize>, i64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }
    const INF: i64 = i64::MAX / 4;

    // 1-based arrays per the classic formulation.
    let mut u = vec![0i64; n + 1]; // row potentials
    let mut v = vec![0i64; n + 1]; // column potentials
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = (0..n).map(|i| cost[i][assignment[i]]).sum();
    (assignment, total)
}

/// Solve the *maximum-weight* assignment problem. Returns
/// `(assignment, total_weight)` with `assignment[i] = column of row i`.
pub fn max_weight_assignment(weight: &[Vec<i64>]) -> (Vec<usize>, i64) {
    let n = weight.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let max_w = weight
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .max()
        .unwrap_or(0);
    let cost: Vec<Vec<i64>> = weight
        .iter()
        .map(|row| row.iter().map(|&w| max_w - w).collect())
        .collect();
    let (assignment, _) = min_cost_assignment(&cost);
    let total = (0..n).map(|i| weight[i][assignment[i]]).sum();
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_diagonal_is_best() {
        let w = vec![vec![10, 1, 1], vec![1, 10, 1], vec![1, 1, 10]];
        let (a, total) = max_weight_assignment(&w);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(total, 30);
    }

    #[test]
    fn forced_permutation() {
        // best assignment is the anti-diagonal
        let w = vec![vec![0, 0, 9], vec![0, 9, 0], vec![9, 0, 0]];
        let (a, total) = max_weight_assignment(&w);
        assert_eq!(a, vec![2, 1, 0]);
        assert_eq!(total, 27);
    }

    #[test]
    fn min_cost_classic_example() {
        // well-known 3x3 example with optimum 5 (1+3+1? verify by brute force)
        let c = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        let (a, total) = min_cost_assignment(&c);
        // brute force check
        let mut best = i64::MAX;
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            best = best.min(c[0][p[0]] + c[1][p[1]] + c[2][p[2]]);
        }
        assert_eq!(total, best);
        // assignment is a permutation
        let mut seen = [false; 3];
        for &j in &a {
            assert!(!seen[j]);
            seen[j] = true;
        }
    }

    #[test]
    fn matches_bruteforce_on_random_matrices() {
        let mut s = 0x12345u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 100) as i64
        };
        for _ in 0..20 {
            let n = 4;
            let w: Vec<Vec<i64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
            let (_, total) = max_weight_assignment(&w);
            // brute force over all 4! permutations
            let mut best = i64::MIN;
            let idx = [0usize, 1, 2, 3];
            let mut perm = idx;
            // Heap's algorithm (iterative, small n)
            fn heaps(k: usize, arr: &mut [usize; 4], w: &[Vec<i64>], best: &mut i64) {
                if k == 1 {
                    let tot: i64 = (0..4).map(|i| w[i][arr[i]]).sum();
                    *best = (*best).max(tot);
                    return;
                }
                for i in 0..k {
                    heaps(k - 1, arr, w, best);
                    if k.is_multiple_of(2) {
                        arr.swap(i, k - 1);
                    } else {
                        arr.swap(0, k - 1);
                    }
                }
            }
            heaps(4, &mut perm, &w, &mut best);
            assert_eq!(total, best);
        }
    }

    #[test]
    fn one_by_one_and_empty() {
        assert_eq!(max_weight_assignment(&[]), (vec![], 0));
        let (a, t) = max_weight_assignment(&[vec![7]]);
        assert_eq!(a, vec![0]);
        assert_eq!(t, 7);
    }

    #[test]
    fn handles_negative_weights() {
        let w = vec![vec![-5, -1], vec![-1, -5]];
        let (a, total) = max_weight_assignment(&w);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(total, -2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Square cost/weight matrices up to 8x8 with entry magnitudes
    /// covering the migration-volume range the remap layer feeds in.
    /// (The vendored proptest has no flat-map, so draw a max-size
    /// flat buffer plus a dimension and slice the matrix out.)
    fn matrix() -> impl Strategy<Value = Vec<Vec<i64>>> {
        (
            1usize..9,
            proptest::collection::vec(0i64..10_000, 64usize..65),
        )
            .prop_map(|(n, flat)| (0..n).map(|i| flat[i * n..(i + 1) * n].to_vec()).collect())
    }

    fn is_permutation(a: &[usize]) -> bool {
        let mut seen = vec![false; a.len()];
        a.iter()
            .all(|&j| j < seen.len() && !std::mem::replace(&mut seen[j], true))
    }

    proptest! {
        #[test]
        fn min_cost_is_a_permutation_no_costlier_than_identity(c in matrix()) {
            let n = c.len();
            let (a, total) = min_cost_assignment(&c);
            prop_assert!(is_permutation(&a), "not a permutation: {a:?}");
            let selected: i64 = (0..n).map(|i| c[i][a[i]]).sum();
            prop_assert_eq!(total, selected);
            // the remap invariant: never migrate more than keeping the
            // identity part->rank mapping would
            let identity: i64 = (0..n).map(|i| c[i][i]).sum();
            prop_assert!(total <= identity, "cost {} > identity {}", total, identity);
        }

        #[test]
        fn max_weight_is_a_permutation_no_lighter_than_identity(w in matrix()) {
            let n = w.len();
            let (a, total) = max_weight_assignment(&w);
            prop_assert!(is_permutation(&a), "not a permutation: {a:?}");
            let identity: i64 = (0..n).map(|i| w[i][i]).sum();
            prop_assert!(total >= identity, "kept weight {} < identity {}", total, identity);
        }

        #[test]
        fn min_and_max_agree_under_negation(c in matrix()) {
            let neg: Vec<Vec<i64>> = c.iter()
                .map(|row| row.iter().map(|&v| -v).collect())
                .collect();
            let (_, min_total) = min_cost_assignment(&c);
            let (_, max_total) = max_weight_assignment(&neg);
            prop_assert_eq!(min_total, -max_total);
        }
    }
}
