//! Multilevel k-way partitioning driver — the workspace's stand-in
//! for `METIS_PartGraphKway` (paper §IV-A, §V-B).
//!
//! Pipeline: coarsen by heavy-edge matching until the graph is small,
//! compute a greedy initial partition on the coarsest level, then
//! project back level by level with boundary refinement, and finish
//! with a balance fix-up.

use crate::coarsen::{coarsen, CoarseLevel};
use crate::graph::Graph;
use crate::initial::greedy_growing;
use crate::refine::{force_balance, refine_boundary};

/// Options for [`part_graph_kway`].
#[derive(Debug, Clone, Copy)]
pub struct KwayOptions {
    /// Stop coarsening once the graph has at most `coarsen_to * k`
    /// vertices.
    pub coarsen_to: usize,
    /// Refinement sweeps per level.
    pub refine_passes: usize,
    /// RNG seed for the coarsening order (determinism).
    pub seed: u64,
}

impl Default for KwayOptions {
    fn default() -> Self {
        KwayOptions {
            coarsen_to: 30,
            refine_passes: 6,
            seed: 1,
        }
    }
}

/// Partition `g` into `k` parts with optional vertex weights already
/// stored in `g.vwgt`. Returns part id per vertex.
///
/// Mirrors the call signature of the paper's Algorithm 1 line 10:
/// `NewPartition ← METIS_PartGraphKway(cellnum, procsnum, wlm)`.
pub fn part_graph_kway(g: &Graph, k: usize, opts: KwayOptions) -> Vec<u32> {
    assert!(k >= 1);
    let n = g.num_vertices();
    if k == 1 {
        return vec![0; n];
    }
    if n <= k {
        // trivial: one vertex per part round-robin
        return (0..n).map(|v| (v % k) as u32).collect();
    }

    // Phase 1: coarsen.
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = g.clone();
    let stop = (opts.coarsen_to * k).max(2 * k);
    let mut round = 0u64;
    while current.num_vertices() > stop {
        let lvl = coarsen(&current, opts.seed.wrapping_add(round));
        round += 1;
        // Coarsening stalls when matching finds no pairs; bail out.
        if lvl.graph.num_vertices() as f64 > 0.95 * current.num_vertices() as f64 {
            break;
        }
        current = lvl.graph.clone();
        levels.push(lvl);
        if round > 64 {
            break;
        }
    }

    // Phase 2: initial partition on the coarsest graph.
    let mut part = greedy_growing(&current, k);
    refine_boundary(&current, &mut part, k, opts.refine_passes);

    // Phase 3: project back and refine at every level.
    for lvl in levels.iter().rev() {
        let fine_n = lvl.map.len();
        let mut fine_part = vec![0u32; fine_n];
        for v in 0..fine_n {
            fine_part[v] = part[lvl.map[v] as usize];
        }
        // The graph at this level is the *input* of the coarsening
        // step; reconstruct it by walking down from g.
        part = fine_part;
        // We refine against the level's fine graph which we no longer
        // hold; instead refine on the original graph only at the last
        // level (cheap and effective for mesh-like graphs).
    }
    debug_assert_eq!(part.len(), n);

    refine_boundary(g, &mut part, k, opts.refine_passes);
    force_balance(g, &mut part, k);
    refine_boundary(g, &mut part, k, 2);
    part
}

/// Convenience: partition with explicit vertex weights (the weighted
/// load model), leaving `g` untouched.
pub fn part_graph_kway_weighted(
    xadj: &[u32],
    adjncy: &[u32],
    vwgt: &[i64],
    k: usize,
    opts: KwayOptions,
) -> Vec<u32> {
    let g = Graph::new(xadj.to_vec(), adjncy.to_vec(), vwgt.to_vec());
    part_graph_kway(&g, k, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, imbalance};
    use crate::refine::BALANCE_TOL;

    fn grid3d(nx: u32, ny: u32, nz: u32) -> Graph {
        let idx = |i: u32, j: u32, k: u32| (k * ny + j) * nx + i;
        let mut edges = Vec::new();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let v = idx(i, j, k);
                    if i + 1 < nx {
                        edges.push((v, idx(i + 1, j, k)));
                    }
                    if j + 1 < ny {
                        edges.push((v, idx(i, j + 1, k)));
                    }
                    if k + 1 < nz {
                        edges.push((v, idx(i, j, k + 1)));
                    }
                }
            }
        }
        let n = (nx * ny * nz) as usize;
        Graph::from_edges(n, &edges, vec![1; n])
    }

    #[test]
    fn balanced_partitions_on_3d_grid() {
        let g = grid3d(8, 8, 8);
        for k in [2usize, 4, 8, 16] {
            let part = part_graph_kway(&g, k, KwayOptions::default());
            let imb = imbalance(&g, &part, k);
            assert!(imb <= BALANCE_TOL + 0.05, "k={k}: imbalance {imb}");
            for p in 0..k as u32 {
                assert!(part.contains(&p), "empty part {p} for k={k}");
            }
        }
    }

    #[test]
    fn cut_beats_random() {
        let g = grid3d(8, 8, 4);
        let n = g.num_vertices();
        let k = 4;
        let part = part_graph_kway(&g, k, KwayOptions::default());
        // pseudo-random partition for comparison
        let rand_part: Vec<u32> = (0..n).map(|v| ((v * 2654435761) % k) as u32).collect();
        assert!(edge_cut(&g, &part) * 2 < edge_cut(&g, &rand_part));
    }

    #[test]
    fn weighted_partition_balances_weight_not_count() {
        // line of 64, first 8 vertices carry almost all weight
        let mut edges = Vec::new();
        for v in 0..63u32 {
            edges.push((v, v + 1));
        }
        let mut vwgt = vec![1i64; 64];
        for w in vwgt.iter_mut().take(8) {
            *w = 100;
        }
        let g = Graph::from_edges(64, &edges, vwgt);
        let part = part_graph_kway(&g, 2, KwayOptions::default());
        let imb = imbalance(&g, &part, 2);
        assert!(imb < 1.2, "imbalance {imb}");
        // the heavy head must be split off from most of the tail
        assert_ne!(part[0], part[63]);
    }

    #[test]
    fn k_equals_one_and_tiny_graphs() {
        let g = grid3d(2, 2, 1);
        assert_eq!(part_graph_kway(&g, 1, KwayOptions::default()), vec![0; 4]);
        let tiny = Graph::from_edges(2, &[(0, 1)], vec![1, 1]);
        let p = part_graph_kway(&tiny, 4, KwayOptions::default());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn deterministic() {
        let g = grid3d(6, 6, 3);
        let a = part_graph_kway(&g, 4, KwayOptions::default());
        let b = part_graph_kway(&g, 4, KwayOptions::default());
        assert_eq!(a, b);
    }
}
