//! Partition quality metrics: edge cut and load imbalance.

use crate::graph::Graph;

/// Total weight of edges whose endpoints lie in different parts (each
/// undirected edge counted once).
pub fn edge_cut(g: &Graph, part: &[u32]) -> i64 {
    let mut cut = 0i64;
    for v in 0..g.num_vertices() {
        for (u, w) in g.edges(v) {
            if part[v] != part[u as usize] {
                cut += w;
            }
        }
    }
    cut / 2
}

/// Load imbalance factor: `max_part_weight * k / total_weight`.
/// 1.0 is perfect balance.
pub fn imbalance(g: &Graph, part: &[u32], k: usize) -> f64 {
    let mut wgt = vec![0i64; k];
    for v in 0..g.num_vertices() {
        wgt[part[v] as usize] += g.vwgt[v];
    }
    let max = *wgt.iter().max().unwrap_or(&0);
    let total = g.total_vwgt().max(1);
    max as f64 * k as f64 / total as f64
}

/// Per-part total vertex weights.
pub fn part_weights(g: &Graph, part: &[u32], k: usize) -> Vec<i64> {
    let mut wgt = vec![0i64; k];
    for v in 0..g.num_vertices() {
        wgt[part[v] as usize] += g.vwgt[v];
    }
    wgt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_and_imbalance_on_square() {
        // square 0-1-2-3-0
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], vec![1; 4]);
        let part = vec![0, 0, 1, 1];
        assert_eq!(edge_cut(&g, &part), 2);
        assert!((imbalance(&g, &part, 2) - 1.0).abs() < 1e-12);
        let skew = vec![0, 0, 0, 1];
        assert_eq!(edge_cut(&g, &skew), 2);
        assert!((imbalance(&g, &skew, 2) - 1.5).abs() < 1e-12);
        assert_eq!(part_weights(&g, &skew, 2), vec![3, 1]);
    }

    #[test]
    fn weighted_cut() {
        let mut g = Graph::from_edges(2, &[(0, 1)], vec![1, 1]);
        g.ewgt = vec![5, 5];
        assert_eq!(edge_cut(&g, &[0, 1]), 5);
        assert_eq!(edge_cut(&g, &[0, 0]), 0);
    }
}
