//! Decomposition modes for the coupled solver.
//!
//! The paper's runs use one *unified* decomposition: the coarse-grid
//! partition owns both the particles resident in a cell and the field
//! nodes under it, so rebalancing moves field work together with
//! particle work. Sauget & Latu's Eulerian/Lagrangian split instead
//! pins the field grid (Eulerian side: deposit reduction, solve,
//! push gather) to a static block partition and lets the particle
//! (Lagrangian) partition chase the density skew alone — at the price
//! of a gather/scatter halo exchange between the two maps.
//!
//! This module holds the mode selector and the static Eulerian block
//! partition; the halo exchange itself rides the `Comm` surface in
//! the coupled drivers.

use std::ops::Range;

/// How a coupled run splits work across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Decomposition {
    /// One partition owns particles and field alike (paper default).
    #[default]
    Unified,
    /// Eulerian/Lagrangian split: static block-partitioned field
    /// grid, dynamically rebalanced particle cells.
    EulLag,
}

impl Decomposition {
    /// Stable short name, used in trace events and report tables.
    pub fn name(self) -> &'static str {
        match self {
            Decomposition::Unified => "unified",
            Decomposition::EulLag => "eullag",
        }
    }
}

/// Static Eulerian partition: split `n_items` contiguous indices into
/// `k` near-equal blocks (the first `n_items % k` blocks get one
/// extra). Deterministic and independent of any particle state, so
/// every rank derives the identical field map locally.
pub fn block_ranges(n_items: usize, k: usize) -> Vec<Range<usize>> {
    assert!(k >= 1);
    let base = n_items / k;
    let extra = n_items % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for r in 0..k {
        let len = base + usize::from(r < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Owner of index `idx` under [`block_ranges`]`(n_items, k)` without
/// materialising the ranges.
pub fn block_owner(n_items: usize, k: usize, idx: usize) -> usize {
    assert!(idx < n_items);
    let base = n_items / k;
    let extra = n_items % k;
    let fat = extra * (base + 1);
    if idx < fat {
        idx / (base + 1)
    } else {
        extra + (idx - fat) / base.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_exactly_once_in_order() {
        for (n, k) in [(10, 3), (12, 4), (7, 7), (5, 8), (0, 2), (1, 1)] {
            let ranges = block_ranges(n, k);
            assert_eq!(ranges.len(), k);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "ragged blocks for ({n},{k}): {sizes:?}");
        }
    }

    #[test]
    fn owner_agrees_with_ranges() {
        for (n, k) in [(10usize, 3usize), (12, 4), (7, 7), (100, 6)] {
            let ranges = block_ranges(n, k);
            for idx in 0..n {
                let by_scan = ranges.iter().position(|r| r.contains(&idx)).unwrap();
                assert_eq!(block_owner(n, k, idx), by_scan, "idx {idx} of ({n},{k})");
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Decomposition::Unified.name(), "unified");
        assert_eq!(Decomposition::EulLag.name(), "eullag");
        assert_eq!(Decomposition::default(), Decomposition::Unified);
    }
}
