//! Greedy graph-growing initial partition (multilevel phase 2).
//!
//! On the coarsest graph we grow `k` regions one at a time: each
//! region starts from a vertex far from already-assigned vertices and
//! greedily absorbs the frontier vertex with the strongest connection
//! to the region until the region reaches its weight target.

use crate::graph::Graph;

/// Compute an initial `k`-way partition of `g`. Returns the part id
/// per vertex. Assumes `g` is connected-ish; stray unassigned
/// vertices are swept into the lightest part at the end.
pub fn greedy_growing(g: &Graph, k: usize) -> Vec<u32> {
    let n = g.num_vertices();
    assert!(k >= 1);
    let total = g.total_vwgt().max(1);
    let target = (total + k as i64 - 1) / k as i64;

    let mut part = vec![u32::MAX; n];
    let mut part_wgt = vec![0i64; k];

    for p in 0..k {
        // Seed: unassigned vertex with the fewest assigned neighbours
        // (prefers fresh territory), ties broken by smallest id.
        let mut seed = None;
        let mut best_key = (u32::MAX, u32::MAX);
        for v in 0..n {
            if part[v] != u32::MAX {
                continue;
            }
            let assigned_nb = g
                .neighbors(v)
                .iter()
                .filter(|&&u| part[u as usize] != u32::MAX)
                .count() as u32;
            let key = (assigned_nb, v as u32);
            if key < best_key {
                best_key = key;
                seed = Some(v);
            }
        }
        let Some(seed) = seed else { break };

        // Grow a region from the seed.
        // gain[v] = total edge weight from v into the region.
        let mut gain = vec![0i64; n];
        let mut in_frontier = vec![false; n];
        let mut frontier: Vec<u32> = Vec::new();

        let absorb = |v: usize,
                      part: &mut Vec<u32>,
                      part_wgt: &mut Vec<i64>,
                      gain: &mut Vec<i64>,
                      in_frontier: &mut Vec<bool>,
                      frontier: &mut Vec<u32>| {
            part[v] = p as u32;
            part_wgt[p] += g.vwgt[v];
            for (u, w) in g.edges(v) {
                let u = u as usize;
                if part[u] == u32::MAX {
                    gain[u] += w;
                    if !in_frontier[u] {
                        in_frontier[u] = true;
                        frontier.push(u as u32);
                    }
                }
            }
        };

        absorb(
            seed,
            &mut part,
            &mut part_wgt,
            &mut gain,
            &mut in_frontier,
            &mut frontier,
        );

        // Leave room for the remaining parts: stop at target even if
        // the frontier is rich.
        while part_wgt[p] < target && p + 1 < k {
            // Pop the frontier vertex with max gain.
            let mut best: Option<(usize, i64)> = None;
            let mut best_idx = 0;
            for (idx, &v) in frontier.iter().enumerate() {
                let v = v as usize;
                if part[v] != u32::MAX {
                    continue;
                }
                if best.is_none_or(|(_, bg)| gain[v] > bg) {
                    best = Some((v, gain[v]));
                    best_idx = idx;
                }
            }
            let Some((v, _)) = best else { break };
            frontier.swap_remove(best_idx);
            in_frontier[v] = false;
            absorb(
                v,
                &mut part,
                &mut part_wgt,
                &mut gain,
                &mut in_frontier,
                &mut frontier,
            );
        }

        // Final part absorbs everything left.
        if p + 1 == k {
            for (v, pv) in part.iter_mut().enumerate() {
                if *pv == u32::MAX {
                    *pv = p as u32;
                    part_wgt[p] += g.vwgt[v];
                }
            }
        }
    }

    // Sweep stragglers (disconnected leftovers) into the lightest part.
    for (v, pv) in part.iter_mut().enumerate() {
        if *pv == u32::MAX {
            let p = (0..k).min_by_key(|&p| part_wgt[p]).unwrap();
            *pv = p as u32;
            part_wgt[p] += g.vwgt[v];
        }
    }

    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, imbalance};

    fn grid(nx: u32, ny: u32) -> Graph {
        let mut edges = Vec::new();
        for i in 0..ny {
            for j in 0..nx {
                let v = i * nx + j;
                if j + 1 < nx {
                    edges.push((v, v + 1));
                }
                if i + 1 < ny {
                    edges.push((v, v + nx));
                }
            }
        }
        Graph::from_edges((nx * ny) as usize, &edges, vec![1; (nx * ny) as usize])
    }

    #[test]
    fn covers_all_vertices_with_valid_parts() {
        let g = grid(8, 8);
        for k in [1usize, 2, 3, 4, 7] {
            let part = greedy_growing(&g, k);
            assert_eq!(part.len(), 64);
            assert!(part.iter().all(|&p| (p as usize) < k));
            // every part non-empty for k <= n
            for p in 0..k as u32 {
                assert!(part.contains(&p), "part {p} empty for k={k}");
            }
        }
    }

    #[test]
    fn roughly_balanced_on_uniform_grid() {
        let g = grid(10, 10);
        let part = greedy_growing(&g, 4);
        let imb = imbalance(&g, &part, 4);
        assert!(imb < 1.35, "imbalance {imb}");
    }

    #[test]
    fn respects_vertex_weights() {
        // two cliques of equal total weight but different cardinality
        let mut g = grid(6, 1); // path of 6
        g.vwgt = vec![10, 10, 10, 1, 1, 28];
        let part = greedy_growing(&g, 2);
        let imb = imbalance(&g, &part, 2);
        assert!(imb < 1.4, "imbalance {imb}, parts {part:?}");
    }

    #[test]
    fn cut_is_reasonable_on_path() {
        // partitioning a path in 2 should cut ~1 edge
        let g = grid(16, 1);
        let part = greedy_growing(&g, 2);
        assert!(edge_cut(&g, &part) <= 2);
    }
}
