//! Heavy-edge-matching graph coarsening (multilevel phase 1).
//!
//! Pairs of vertices joined by heavy edges are merged into single
//! coarse vertices; vertex weights add, parallel coarse edges
//! aggregate their weights. This is the same scheme METIS uses.

use crate::graph::Graph;
use std::collections::HashMap;

/// One level of the multilevel hierarchy: the coarse graph plus the
/// fine→coarse vertex map.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    pub graph: Graph,
    /// `map[v_fine] = v_coarse`.
    pub map: Vec<u32>,
}

/// Coarsen `g` one level using heavy-edge matching. Visits vertices
/// in a deterministic order derived from `seed` so partitions are
/// reproducible.
pub fn coarsen(g: &Graph, seed: u64) -> CoarseLevel {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Cheap deterministic shuffle (splitmix-style) to avoid
    // degenerate matchings on structured meshes.
    let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
    for i in (1..n).rev() {
        s ^= s >> 30;
        s = s.wrapping_mul(0xBF58476D1CE4E5B9);
        s ^= s >> 27;
        let j = (s % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }

    let mut matched = vec![u32::MAX; n];
    let mut ncoarse = 0u32;
    for &v in &order {
        let v = v as usize;
        if matched[v] != u32::MAX {
            continue;
        }
        // Heaviest unmatched neighbour.
        let mut best: Option<(u32, i64)> = None;
        for (u, w) in g.edges(v) {
            if matched[u as usize] == u32::MAX
                && u as usize != v
                && best.is_none_or(|(_, bw)| w > bw)
            {
                best = Some((u, w));
            }
        }
        let c = ncoarse;
        ncoarse += 1;
        matched[v] = c;
        if let Some((u, _)) = best {
            matched[u as usize] = c;
        }
    }

    // Aggregate coarse vertex weights and edges.
    let mut vwgt = vec![0i64; ncoarse as usize];
    for v in 0..n {
        vwgt[matched[v] as usize] += g.vwgt[v];
    }
    let mut edge_acc: Vec<HashMap<u32, i64>> = vec![HashMap::new(); ncoarse as usize];
    for v in 0..n {
        let cv = matched[v];
        for (u, w) in g.edges(v) {
            let cu = matched[u as usize];
            if cu != cv {
                *edge_acc[cv as usize].entry(cu).or_insert(0) += w;
            }
        }
    }
    let mut xadj = Vec::with_capacity(ncoarse as usize + 1);
    let mut adjncy = Vec::new();
    let mut ewgt = Vec::new();
    xadj.push(0u32);
    for acc in &edge_acc {
        let mut items: Vec<(u32, i64)> = acc.iter().map(|(&u, &w)| (u, w)).collect();
        items.sort_unstable();
        for (u, w) in items {
            adjncy.push(u);
            ewgt.push(w);
        }
        xadj.push(adjncy.len() as u32);
    }

    CoarseLevel {
        graph: Graph {
            xadj,
            adjncy,
            vwgt,
            ewgt,
        },
        map: matched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarsening_shrinks_and_conserves_weight() {
        // 4x4 grid graph
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                let v = i * 4 + j;
                if j + 1 < 4 {
                    edges.push((v, v + 1));
                }
                if i + 1 < 4 {
                    edges.push((v, v + 4));
                }
            }
        }
        let g = Graph::from_edges(16, &edges, vec![1; 16]);
        let lvl = coarsen(&g, 42);
        assert!(lvl.graph.num_vertices() < 16);
        assert!(lvl.graph.num_vertices() >= 8, "HEM merges at most pairs");
        assert_eq!(lvl.graph.total_vwgt(), g.total_vwgt());
        // map covers all coarse ids
        let max = *lvl.map.iter().max().unwrap() as usize;
        assert_eq!(max + 1, lvl.graph.num_vertices());
    }

    #[test]
    fn coarse_edges_are_symmetric() {
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)],
            vec![1; 6],
        );
        let lvl = coarsen(&g, 7);
        let cg = &lvl.graph;
        for v in 0..cg.num_vertices() {
            for (u, w) in cg.edges(v) {
                let back: Vec<_> = cg
                    .edges(u as usize)
                    .filter(|&(x, _)| x as usize == v)
                    .collect();
                assert_eq!(back.len(), 1);
                assert_eq!(back[0].1, w);
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = Graph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (3, 4)],
            vec![1; 8],
        );
        let a = coarsen(&g, 5);
        let b = coarsen(&g, 5);
        assert_eq!(a.map, b.map);
        assert_eq!(a.graph, b.graph);
    }
}
