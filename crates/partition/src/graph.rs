//! CSR graph used by the partitioner.
//!
//! Mirrors the METIS input convention (`xadj` / `adjncy`) that the
//! paper feeds to `METIS_PartGraphKway`, with integer vertex weights
//! (the weighted load model of §V-B) and edge weights.

/// An undirected graph in CSR form. Every edge appears twice (once
/// per endpoint), exactly as METIS expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Offsets into `adjncy`; length `n + 1`.
    pub xadj: Vec<u32>,
    /// Concatenated adjacency lists.
    pub adjncy: Vec<u32>,
    /// Vertex weights (load per cell); length `n`.
    pub vwgt: Vec<i64>,
    /// Edge weights, parallel to `adjncy`.
    pub ewgt: Vec<i64>,
}

impl Graph {
    /// Build from CSR arrays with unit edge weights.
    pub fn new(xadj: Vec<u32>, adjncy: Vec<u32>, vwgt: Vec<i64>) -> Self {
        assert_eq!(xadj.len(), vwgt.len() + 1);
        assert_eq!(*xadj.last().unwrap() as usize, adjncy.len());
        let ewgt = vec![1; adjncy.len()];
        Graph {
            xadj,
            adjncy,
            vwgt,
            ewgt,
        }
    }

    /// Build from an explicit edge list (each undirected edge listed
    /// once). Handy in tests.
    pub fn from_edges(n: usize, edges: &[(u32, u32)], vwgt: Vec<i64>) -> Self {
        assert_eq!(vwgt.len(), n);
        let mut deg = vec![0u32; n];
        for &(a, b) in edges {
            assert_ne!(a, b, "self loops not allowed");
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut xadj = vec![0u32; n + 1];
        for i in 0..n {
            xadj[i + 1] = xadj[i] + deg[i];
        }
        let mut adjncy = vec![0u32; xadj[n] as usize];
        let mut fill = xadj.clone();
        for &(a, b) in edges {
            adjncy[fill[a as usize] as usize] = b;
            fill[a as usize] += 1;
            adjncy[fill[b as usize] as usize] = a;
            fill[b as usize] += 1;
        }
        let ewgt = vec![1; adjncy.len()];
        Graph {
            xadj,
            adjncy,
            vwgt,
            ewgt,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Neighbour ids of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v] as usize..self.xadj[v + 1] as usize]
    }

    /// `(neighbor, edge weight)` pairs of vertex `v`.
    #[inline]
    pub fn edges(&self, v: usize) -> impl Iterator<Item = (u32, i64)> + '_ {
        let r = self.xadj[v] as usize..self.xadj[v + 1] as usize;
        self.adjncy[r.clone()]
            .iter()
            .copied()
            .zip(self.ewgt[r].iter().copied())
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> i64 {
        self.vwgt.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_builds_symmetric_csr() {
        // path 0-1-2 plus edge 0-2 (triangle)
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)], vec![1, 2, 3]);
        assert_eq!(g.num_vertices(), 3);
        let mut n0: Vec<u32> = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(g.total_vwgt(), 6);
        // symmetry: each neighbor relation appears both ways
        for v in 0..3 {
            for &u in g.neighbors(v) {
                assert!(g.neighbors(u as usize).contains(&(v as u32)));
            }
        }
    }

    #[test]
    fn edges_iterator_pairs_weights() {
        let mut g = Graph::from_edges(2, &[(0, 1)], vec![1, 1]);
        g.ewgt = vec![7, 7];
        let e: Vec<_> = g.edges(0).collect();
        assert_eq!(e, vec![(1, 7)]);
    }
}
