//! Greedy boundary refinement (multilevel phase 3).
//!
//! After projecting a coarse partition back to a finer graph, boundary
//! vertices are greedily moved to the neighbouring part that most
//! reduces the edge cut, subject to a balance constraint. This is a
//! simplified Fiduccia–Mattheyses-style pass, run a fixed number of
//! rounds per level (the classic METIS recipe).

use crate::graph::Graph;

/// Maximum tolerated part weight as a multiple of the average.
pub const BALANCE_TOL: f64 = 1.05;

/// Refine `part` in place. `k` = number of parts, `passes` = number of
/// full sweeps. Returns the total cut-gain achieved.
pub fn refine_boundary(g: &Graph, part: &mut [u32], k: usize, passes: usize) -> i64 {
    let n = g.num_vertices();
    let total = g.total_vwgt().max(1);
    let max_wgt = ((total as f64 / k as f64) * BALANCE_TOL).ceil() as i64;

    let mut part_wgt = vec![0i64; k];
    for v in 0..n {
        part_wgt[part[v] as usize] += g.vwgt[v];
    }

    let mut total_gain = 0i64;
    let mut conn = vec![0i64; k];
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let pv = part[v] as usize;
            // Connectivity of v to each part.
            for c in conn.iter_mut() {
                *c = 0;
            }
            let mut has_foreign = false;
            for (u, w) in g.edges(v) {
                let pu = part[u as usize] as usize;
                conn[pu] += w;
                if pu != pv {
                    has_foreign = true;
                }
            }
            if !has_foreign {
                continue; // interior vertex
            }
            // Best destination by cut gain; require strict improvement
            // or a tie that improves balance.
            let mut best: Option<(usize, i64)> = None;
            for p in 0..k {
                if p == pv {
                    continue;
                }
                if conn[p] == 0 {
                    continue; // only move along edges
                }
                if part_wgt[p] + g.vwgt[v] > max_wgt {
                    continue;
                }
                let gain = conn[p] - conn[pv];
                let better = match best {
                    None => gain > 0 || (gain == 0 && part_wgt[p] + g.vwgt[v] < part_wgt[pv]),
                    Some((bp, bg)) => gain > bg || (gain == bg && part_wgt[p] < part_wgt[bp]),
                };
                if better && (gain > 0 || (gain == 0 && part_wgt[p] + g.vwgt[v] < part_wgt[pv])) {
                    best = Some((p, gain));
                }
            }
            if let Some((p, gain)) = best {
                part_wgt[pv] -= g.vwgt[v];
                part_wgt[p] += g.vwgt[v];
                part[v] = p as u32;
                total_gain += gain;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    total_gain
}

/// Rebalance an arbitrarily unbalanced partition by shedding load from
/// overweight parts along boundary edges. Used when the projected
/// partition violates the balance constraint badly (e.g. highly skewed
/// vertex weights from the load model).
pub fn force_balance(g: &Graph, part: &mut [u32], k: usize) {
    let n = g.num_vertices();
    let total = g.total_vwgt().max(1);
    let max_wgt = ((total as f64 / k as f64) * BALANCE_TOL).ceil() as i64;
    let mut part_wgt = vec![0i64; k];
    for v in 0..n {
        part_wgt[part[v] as usize] += g.vwgt[v];
    }
    // Repeatedly move the cheapest boundary vertex out of the heaviest
    // offending part.
    for _ in 0..4 * n {
        let Some(hp) = (0..k)
            .filter(|&p| part_wgt[p] > max_wgt)
            .max_by_key(|&p| part_wgt[p])
        else {
            break;
        };
        // boundary vertex of hp with a neighbour in the lightest
        // adjacent part; the move must strictly improve the pair
        // (dest + v lighter than hp is now), otherwise a single
        // over-cap vertex bounces between parts and can leave its
        // source part empty
        let mut best: Option<(usize, usize)> = None;
        for v in 0..n {
            if part[v] as usize != hp {
                continue;
            }
            for (u, _) in g.edges(v) {
                let pu = part[u as usize] as usize;
                if pu != hp && part_wgt[pu] + g.vwgt[v] < part_wgt[hp] {
                    let better = best.is_none_or(|(_, bp)| part_wgt[pu] < part_wgt[bp]);
                    if better {
                        best = Some((v, pu));
                    }
                }
            }
        }
        let Some((v, p)) = best else { break };
        part_wgt[hp] -= g.vwgt[v];
        part_wgt[p] += g.vwgt[v];
        part[v] = p as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, imbalance};

    fn grid(nx: u32, ny: u32) -> Graph {
        let mut edges = Vec::new();
        for i in 0..ny {
            for j in 0..nx {
                let v = i * nx + j;
                if j + 1 < nx {
                    edges.push((v, v + 1));
                }
                if i + 1 < ny {
                    edges.push((v, v + nx));
                }
            }
        }
        Graph::from_edges((nx * ny) as usize, &edges, vec![1; (nx * ny) as usize])
    }

    #[test]
    fn refinement_never_worsens_cut() {
        let g = grid(8, 8);
        // checkerboard partition: terrible cut
        let mut part: Vec<u32> = (0..64).map(|v| ((v % 8) + (v / 8)) as u32 % 2).collect();
        let before = edge_cut(&g, &part);
        let gain = refine_boundary(&g, &mut part, 2, 8);
        let after = edge_cut(&g, &part);
        assert!(after <= before);
        assert_eq!(before - after, gain);
        assert!(
            after < before / 2,
            "checkerboard should improve a lot: {before} -> {after}"
        );
    }

    #[test]
    fn refinement_respects_balance() {
        let g = grid(10, 10);
        let mut part: Vec<u32> = (0..100).map(|v| (v / 50) as u32).collect();
        refine_boundary(&g, &mut part, 2, 8);
        assert!(imbalance(&g, &part, 2) <= BALANCE_TOL + 1e-9);
    }

    #[test]
    fn force_balance_fixes_skew() {
        let g = grid(10, 10);
        // everything in part 0
        let mut part = vec![0u32; 100];
        // mark one vertex part 1 to give force_balance a boundary
        part[99] = 1;
        force_balance(&g, &mut part, 2);
        // max part weight is allowed up to ceil(50 * 1.05) = 53, i.e.
        // an imbalance of 1.06 on this integer-weighted graph.
        assert!(imbalance(&g, &part, 2) <= 1.06 + 1e-9);
    }

    #[test]
    fn force_balance_never_empties_a_part_on_giant_vertex() {
        // one vertex carries nearly all weight — heavier than the
        // balance cap. The old unconditional shed moved it out of its
        // part and stranded the partition with an empty part.
        let g = {
            let edges: Vec<(u32, u32)> = (0..11u32).map(|v| (v, v + 1)).collect();
            let mut vwgt = vec![2i64; 12];
            vwgt[0] = 1_000_000;
            Graph::from_edges(12, &edges, vwgt)
        };
        let mut part: Vec<u32> = (0..12).map(|v| (v / 6) as u32).collect();
        force_balance(&g, &mut part, 2);
        assert!(part.contains(&0), "part 0 emptied: {part:?}");
        assert!(part.contains(&1), "part 1 emptied: {part:?}");
    }
}
