//! The velocity half of *PIC_Move*: gather the electric field at each
//! charged particle and apply the Boris kick. Position advance (with
//! cell tracking, walls and outflow) is shared with DSMC via
//! `dsmc::move_particles_filtered`.

use crate::boris::{kick_lanes_electrostatic, kick_lanes_magnetized};
use crate::field::ElectricField;
use kernels::Pool;
use mesh::{NestedMesh, Vec3};
use particles::{ParticleBuffer, SpeciesTable};

/// Per-species push tables: `charged[s]` and the Boris half-kick
/// factor `(q/m)·Δt/2`, indexed by species id — hoists the
/// per-particle `species.get()` lookup and `is_charged` branch out of
/// the hot loop. The factor is built with the exact expression the
/// scalar pusher evaluated (`(charge/mass) * dt * 0.5`).
fn kick_tables(species: &SpeciesTable, dt: f64) -> (Vec<bool>, Vec<f64>) {
    let mut charged = Vec::new();
    let mut half = Vec::new();
    for (id, sp) in species.iter() {
        let id = id as usize;
        if charged.len() <= id {
            charged.resize(id + 1, false);
            half.resize(id + 1, 0.0);
        }
        charged[id] = sp.is_charged();
        half[id] = sp.charge / sp.mass * dt * 0.5;
    }
    (charged, half)
}

/// Gather the charged particles of `idx_range` into dense lanes,
/// run the branch-free Boris sweep, scatter the results back.
/// `vx/vy/vz` are the velocity lanes being updated (chunk or whole
/// buffer), indexed chunk-locally; shared lanes are indexed globally
/// via `off`. Returns the number of particles kicked.
#[allow(clippy::too_many_arguments)]
fn kick_chunk(
    nm: &NestedMesh,
    efield: &ElectricField,
    b: Vec3,
    charged: &[bool],
    half: &[f64],
    off: usize,
    vx: &mut [f64],
    vy: &mut [f64],
    vz: &mut [f64],
    px: &[f64],
    py: &[f64],
    pz: &[f64],
    cell: &[u32],
    spec: &[u8],
) -> usize {
    let n = vx.len();
    let mut idx: Vec<u32> = Vec::new();
    let (mut gvx, mut gvy, mut gvz) = (Vec::new(), Vec::new(), Vec::new());
    let (mut hx, mut hy, mut hz) = (Vec::new(), Vec::new(), Vec::new());
    let mut f: Vec<f64> = Vec::new();
    for k in 0..n {
        let gi = off + k;
        let s = spec[gi] as usize;
        if !charged[s] {
            continue;
        }
        // field gather stays scalar: it searches the nested mesh
        let e = efield.at(nm, cell[gi] as usize, Vec3::new(px[gi], py[gi], pz[gi]));
        let fs = half[s];
        idx.push(k as u32);
        gvx.push(vx[k]);
        gvy.push(vy[k]);
        gvz.push(vz[k]);
        hx.push(e.x * fs);
        hy.push(e.y * fs);
        hz.push(e.z * fs);
        f.push(fs);
    }
    // `b` is uniform, so the zero test is hoisted out of the loop;
    // neutrals were never gathered, so they stay bit-for-bit untouched
    if b.norm2() == 0.0 {
        kick_lanes_electrostatic([&mut gvx, &mut gvy, &mut gvz], [&hx, &hy, &hz]);
    } else {
        kick_lanes_magnetized(&mut gvx, &mut gvy, &mut gvz, &hx, &hy, &hz, &f, b);
    }
    for (j, &k) in idx.iter().enumerate() {
        let k = k as usize;
        vx[k] = gvx[j];
        vy[k] = gvy[j];
        vz[k] = gvz[j];
    }
    idx.len()
}

/// Apply one Boris velocity update to every charged particle using
/// the per-fine-cell field `efield` and uniform magnetic field `b`.
/// Returns the number of particles kicked.
pub fn accelerate_charged(
    nm: &NestedMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    efield: &ElectricField,
    b: Vec3,
    dt: f64,
) -> usize {
    let (charged, half) = kick_tables(species, dt);
    let ParticleBuffer {
        px,
        py,
        pz,
        vx,
        vy,
        vz,
        cell,
        species: spec,
        ..
    } = buf;
    kick_chunk(
        nm, efield, b, &charged, &half, 0, vx, vy, vz, px, py, pz, cell, spec,
    )
}

/// One worker's share of the velocity lanes: the chunk's global
/// offset plus its `vx`/`vy`/`vz` slices.
type VelChunk<'a> = (usize, &'a mut [f64], &'a mut [f64], &'a mut [f64]);

/// Pooled Boris kick: the velocity lanes are split into one
/// contiguous chunk per worker (field gather + push is pure
/// per-particle work), so the result is bitwise identical to
/// [`accelerate_charged`] for every worker count.
pub fn accelerate_charged_pooled(
    nm: &NestedMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    efield: &ElectricField,
    b: Vec3,
    dt: f64,
    pool: &Pool,
) -> usize {
    if pool.is_serial() || buf.len() < 2 {
        return accelerate_charged(nm, buf, species, efield, b, dt);
    }
    let (charged, half) = kick_tables(species, dt);
    let ranges = kernels::chunk_ranges(buf.len(), pool.workers());
    let vxc = kernels::carve_mut(&ranges, &mut buf.vx);
    let vyc = kernels::carve_mut(&ranges, &mut buf.vy);
    let vzc = kernels::carve_mut(&ranges, &mut buf.vz);
    let (px, py, pz) = (&buf.px, &buf.py, &buf.pz);
    let (cell, spec) = (&buf.cell, &buf.species);
    let mut parts: Vec<VelChunk> = Vec::with_capacity(ranges.len());
    let mut off = 0usize;
    for ((cvx, cvy), cvz) in vxc.into_iter().zip(vyc).zip(vzc) {
        let len = cvx.len();
        parts.push((off, cvx, cvy, cvz));
        off += len;
    }
    let (charged, half) = (&charged, &half);
    pool.run_parts(parts, |_, (off, vx, vy, vz)| {
        kick_chunk(
            nm, efield, b, charged, half, off, vx, vy, vz, px, py, pz, cell, spec,
        )
    })
    .into_iter()
    .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::NozzleSpec;
    use particles::Particle;

    fn nested() -> NestedMesh {
        let spec = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        };
        let coarse = spec.generate();
        NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n))
    }

    #[test]
    fn neutrals_untouched_ions_kicked() {
        let nm = nested();
        let (table, h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let mut buf = ParticleBuffer::new();
        for (k, s) in [h, hp, hp].iter().enumerate() {
            buf.push(Particle {
                pos: nm.coarse.centroids[0],
                vel: Vec3::ZERO,
                cell: 0,
                species: *s,
                id: k as u64,
            });
        }
        // uniform field along +z
        let phi: Vec<f64> = nm.fine.nodes.iter().map(|p| -1000.0 * p.z).collect();
        let ef = ElectricField::from_potential(&nm.fine, &phi);
        let kicked = accelerate_charged(&nm, &mut buf, &table, &ef, Vec3::ZERO, 1e-7);
        assert_eq!(kicked, 2);
        assert_eq!(buf.vel(0), Vec3::ZERO, "neutral must not feel E");
        assert!(buf.vel(1).z > 0.0, "ion accelerated along E");
        assert_eq!(buf.vel(1), buf.vel(2));
    }

    #[test]
    fn pooled_push_is_bitwise_identical_to_serial() {
        let nm = nested();
        let (table, h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let make = || {
            let mut buf = ParticleBuffer::new();
            for k in 0..300u64 {
                let c = (k as usize * 7) % nm.num_coarse();
                buf.push(Particle {
                    pos: nm.coarse.centroids[c],
                    vel: Vec3::new(k as f64, -(k as f64) * 0.5, 100.0),
                    cell: c as u32,
                    species: if k % 4 == 0 { h } else { hp },
                    id: k,
                });
            }
            buf
        };
        let phi: Vec<f64> = nm
            .fine
            .nodes
            .iter()
            .map(|p| -500.0 * p.z + 200.0 * p.x)
            .collect();
        let ef = ElectricField::from_potential(&nm.fine, &phi);
        let b = Vec3::new(0.0, 0.01, 0.0);
        let mut serial = make();
        let kicked_serial = accelerate_charged(&nm, &mut serial, &table, &ef, b, 1e-7);
        for workers in [2usize, 4, 8] {
            let mut par = make();
            let kicked = accelerate_charged_pooled(
                &nm,
                &mut par,
                &table,
                &ef,
                b,
                1e-7,
                &kernels::Pool::new(workers),
            );
            assert_eq!(kicked, kicked_serial);
            for i in 0..serial.len() {
                assert_eq!(serial.vel(i), par.vel(i), "workers={workers}");
            }
        }
    }

    #[test]
    fn zero_field_changes_nothing() {
        let nm = nested();
        let (table, _h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let mut buf = ParticleBuffer::new();
        let v0 = Vec3::new(1e3, 2e3, 3e3);
        buf.push(Particle {
            pos: nm.coarse.centroids[0],
            vel: v0,
            cell: 0,
            species: hp,
            id: 0,
        });
        let ef = ElectricField::zeros(&nm.fine);
        accelerate_charged(&nm, &mut buf, &table, &ef, Vec3::ZERO, 1e-7);
        assert_eq!(buf.vel(0), v0);
    }
}
