//! The velocity half of *PIC_Move*: gather the electric field at each
//! charged particle and apply the Boris kick. Position advance (with
//! cell tracking, walls and outflow) is shared with DSMC via
//! `dsmc::move_particles_filtered`.

use crate::boris::boris_push;
use crate::field::ElectricField;
use mesh::{NestedMesh, Vec3};
use particles::{ParticleBuffer, SpeciesTable};

/// Apply one Boris velocity update to every charged particle using
/// the per-fine-cell field `efield` and uniform magnetic field `b`.
/// Returns the number of particles kicked.
pub fn accelerate_charged(
    nm: &NestedMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    efield: &ElectricField,
    b: Vec3,
    dt: f64,
) -> usize {
    let mut kicked = 0usize;
    for i in 0..buf.len() {
        let sp = species.get(buf.species[i]);
        if !sp.is_charged() {
            continue;
        }
        let e = efield.at(nm, buf.cell[i] as usize, buf.pos[i]);
        let qm = sp.charge / sp.mass;
        buf.vel[i] = boris_push(buf.vel[i], e, b, qm, dt);
        kicked += 1;
    }
    kicked
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::NozzleSpec;
    use particles::Particle;

    fn nested() -> NestedMesh {
        let spec = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        };
        let coarse = spec.generate();
        NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n))
    }

    #[test]
    fn neutrals_untouched_ions_kicked() {
        let nm = nested();
        let (table, h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let mut buf = ParticleBuffer::new();
        for (k, s) in [h, hp, hp].iter().enumerate() {
            buf.push(Particle {
                pos: nm.coarse.centroids[0],
                vel: Vec3::ZERO,
                cell: 0,
                species: *s,
                id: k as u64,
            });
        }
        // uniform field along +z
        let phi: Vec<f64> = nm.fine.nodes.iter().map(|p| -1000.0 * p.z).collect();
        let ef = ElectricField::from_potential(&nm.fine, &phi);
        let kicked = accelerate_charged(&nm, &mut buf, &table, &ef, Vec3::ZERO, 1e-7);
        assert_eq!(kicked, 2);
        assert_eq!(buf.vel[0], Vec3::ZERO, "neutral must not feel E");
        assert!(buf.vel[1].z > 0.0, "ion accelerated along E");
        assert_eq!(buf.vel[1], buf.vel[2]);
    }

    #[test]
    fn zero_field_changes_nothing() {
        let nm = nested();
        let (table, _h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let mut buf = ParticleBuffer::new();
        let v0 = Vec3::new(1e3, 2e3, 3e3);
        buf.push(Particle {
            pos: nm.coarse.centroids[0],
            vel: v0,
            cell: 0,
            species: hp,
            id: 0,
        });
        let ef = ElectricField::zeros(&nm.fine);
        accelerate_charged(&nm, &mut buf, &table, &ef, Vec3::ZERO, 1e-7);
        assert_eq!(buf.vel[0], v0);
    }
}
