//! The velocity half of *PIC_Move*: gather the electric field at each
//! charged particle and apply the Boris kick. Position advance (with
//! cell tracking, walls and outflow) is shared with DSMC via
//! `dsmc::move_particles_filtered`.

use crate::boris::boris_push;
use crate::field::ElectricField;
use kernels::Pool;
use mesh::{NestedMesh, Vec3};
use particles::{ParticleBuffer, SpeciesTable};

/// Apply one Boris velocity update to every charged particle using
/// the per-fine-cell field `efield` and uniform magnetic field `b`.
/// Returns the number of particles kicked.
pub fn accelerate_charged(
    nm: &NestedMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    efield: &ElectricField,
    b: Vec3,
    dt: f64,
) -> usize {
    let mut kicked = 0usize;
    for i in 0..buf.len() {
        let sp = species.get(buf.species[i]);
        if !sp.is_charged() {
            continue;
        }
        let e = efield.at(nm, buf.cell[i] as usize, buf.pos[i]);
        let qm = sp.charge / sp.mass;
        buf.vel[i] = boris_push(buf.vel[i], e, b, qm, dt);
        kicked += 1;
    }
    kicked
}

/// Pooled Boris kick: the velocity array is split into one contiguous
/// chunk per worker (field gather + push is pure per-particle work),
/// so the result is bitwise identical to [`accelerate_charged`] for
/// every worker count.
pub fn accelerate_charged_pooled(
    nm: &NestedMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    efield: &ElectricField,
    b: Vec3,
    dt: f64,
    pool: &Pool,
) -> usize {
    if pool.is_serial() || buf.len() < 2 {
        return accelerate_charged(nm, buf, species, efield, b, dt);
    }
    let (pos, cell, spec) = (&buf.pos, &buf.cell, &buf.species);
    pool.par_chunks_mut(&mut buf.vel, |_, off, vels| {
        let mut kicked = 0usize;
        for (k, v) in vels.iter_mut().enumerate() {
            let i = off + k;
            let sp = species.get(spec[i]);
            if !sp.is_charged() {
                continue;
            }
            let e = efield.at(nm, cell[i] as usize, pos[i]);
            let qm = sp.charge / sp.mass;
            *v = boris_push(*v, e, b, qm, dt);
            kicked += 1;
        }
        kicked
    })
    .into_iter()
    .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::NozzleSpec;
    use particles::Particle;

    fn nested() -> NestedMesh {
        let spec = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        };
        let coarse = spec.generate();
        NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n))
    }

    #[test]
    fn neutrals_untouched_ions_kicked() {
        let nm = nested();
        let (table, h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let mut buf = ParticleBuffer::new();
        for (k, s) in [h, hp, hp].iter().enumerate() {
            buf.push(Particle {
                pos: nm.coarse.centroids[0],
                vel: Vec3::ZERO,
                cell: 0,
                species: *s,
                id: k as u64,
            });
        }
        // uniform field along +z
        let phi: Vec<f64> = nm.fine.nodes.iter().map(|p| -1000.0 * p.z).collect();
        let ef = ElectricField::from_potential(&nm.fine, &phi);
        let kicked = accelerate_charged(&nm, &mut buf, &table, &ef, Vec3::ZERO, 1e-7);
        assert_eq!(kicked, 2);
        assert_eq!(buf.vel[0], Vec3::ZERO, "neutral must not feel E");
        assert!(buf.vel[1].z > 0.0, "ion accelerated along E");
        assert_eq!(buf.vel[1], buf.vel[2]);
    }

    #[test]
    fn pooled_push_is_bitwise_identical_to_serial() {
        let nm = nested();
        let (table, h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let make = || {
            let mut buf = ParticleBuffer::new();
            for k in 0..300u64 {
                let c = (k as usize * 7) % nm.num_coarse();
                buf.push(Particle {
                    pos: nm.coarse.centroids[c],
                    vel: Vec3::new(k as f64, -(k as f64) * 0.5, 100.0),
                    cell: c as u32,
                    species: if k % 4 == 0 { h } else { hp },
                    id: k,
                });
            }
            buf
        };
        let phi: Vec<f64> = nm
            .fine
            .nodes
            .iter()
            .map(|p| -500.0 * p.z + 200.0 * p.x)
            .collect();
        let ef = ElectricField::from_potential(&nm.fine, &phi);
        let b = Vec3::new(0.0, 0.01, 0.0);
        let mut serial = make();
        let kicked_serial = accelerate_charged(&nm, &mut serial, &table, &ef, b, 1e-7);
        for workers in [2usize, 4, 8] {
            let mut par = make();
            let kicked = accelerate_charged_pooled(
                &nm,
                &mut par,
                &table,
                &ef,
                b,
                1e-7,
                &kernels::Pool::new(workers),
            );
            assert_eq!(kicked, kicked_serial);
            for (a, b2) in serial.vel.iter().zip(&par.vel) {
                assert_eq!(a, b2, "workers={workers}");
            }
        }
    }

    #[test]
    fn zero_field_changes_nothing() {
        let nm = nested();
        let (table, _h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let mut buf = ParticleBuffer::new();
        let v0 = Vec3::new(1e3, 2e3, 3e3);
        buf.push(Particle {
            pos: nm.coarse.centroids[0],
            vel: v0,
            cell: 0,
            species: hp,
            id: 0,
        });
        let ef = ElectricField::zeros(&nm.fine);
        accelerate_charged(&nm, &mut buf, &table, &ef, Vec3::ZERO, 1e-7);
        assert_eq!(buf.vel[0], v0);
    }
}
