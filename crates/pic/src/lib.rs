//! Particle-in-Cell on the fine tetrahedral grid (paper §III-C):
//! charge deposition, FEM Poisson solve (`K φ = b`), electric-field
//! reconstruction `E = −∇φ` and the Boris pusher.

pub mod boris;
pub mod deposit;
pub mod field;
pub mod poisson;
pub mod push;

pub use boris::boris_push;
pub use deposit::{deposit_charge, deposit_charge_into, deposit_charge_pooled, fine_cell_of};
pub use field::ElectricField;
pub use poisson::{shape_gradients, PoissonSolver, EPS0};
pub use push::{accelerate_charged, accelerate_charged_pooled};
