//! The Boris particle pusher (paper §III-C: "We use the Boris method
//! to calculate the numerical value of the velocity v").
//!
//! Velocity update under `m dv/dt = q (E + v × B)`, split into a half
//! electric kick, a magnetic rotation and another half kick. With
//! `B = 0` (the paper's electrostatic default) the rotation is the
//! identity and the scheme reduces to a plain electric acceleration —
//! but the rotation path is implemented and tested for the constant-B
//! configuration the paper also allows.

use mesh::Vec3;

/// One Boris velocity update. Returns the new velocity.
///
/// * `v`: current velocity (m/s)
/// * `e`: electric field at the particle (V/m)
/// * `b`: magnetic flux density (T); pass `Vec3::ZERO` for the
///   electrostatic case
/// * `qm`: charge-to-mass ratio q/m (C/kg)
/// * `dt`: timestep (s)
#[inline]
pub fn boris_push(v: Vec3, e: Vec3, b: Vec3, qm: f64, dt: f64) -> Vec3 {
    let half_kick = e * (qm * dt * 0.5);
    let v_minus = v + half_kick;

    let v_plus = if b.norm2() == 0.0 {
        v_minus
    } else {
        // rotation: t = (qB/m)(Δt/2), s = 2t/(1+|t|²)
        let t = b * (qm * dt * 0.5);
        let s = t * (2.0 / (1.0 + t.norm2()));
        let v_prime = v_minus + v_minus.cross(t);
        v_minus + v_prime.cross(s)
    };

    v_plus + half_kick
}

/// Branch-free electrostatic Boris sweep over gathered scalar lanes:
/// `v ← (v + h) + h` per component with per-particle half-kick
/// `h = E·(q/m)(Δt/2)`. With `B = 0` the rotation is the identity and
/// the update is fully componentwise, so each lane is an independent
/// autovectorizable sweep — bitwise identical to [`boris_push`] with
/// `b = Vec3::ZERO`, entry by entry.
pub fn kick_lanes_electrostatic(v: [&mut [f64]; 3], h: [&[f64]; 3]) {
    for (vl, hl) in v.into_iter().zip(h) {
        for (vk, &hk) in vl.iter_mut().zip(hl) {
            *vk = (*vk + hk) + hk;
        }
    }
}

/// Magnetized Boris sweep over gathered scalar lanes: half kick,
/// rotation about uniform `b`, half kick. `f[k]` is the per-particle
/// factor `(q/m)(Δt/2)` (it scales both the half-kick, already folded
/// into `h`, and the rotation vector `t = B·f`). Every expression
/// mirrors [`boris_push`] componentwise, so the sweep is bitwise
/// identical to calling it per particle.
#[allow(clippy::too_many_arguments)]
pub fn kick_lanes_magnetized(
    vx: &mut [f64],
    vy: &mut [f64],
    vz: &mut [f64],
    hx: &[f64],
    hy: &[f64],
    hz: &[f64],
    f: &[f64],
    b: Vec3,
) {
    for k in 0..vx.len() {
        // v⁻ = v + h
        let vmx = vx[k] + hx[k];
        let vmy = vy[k] + hy[k];
        let vmz = vz[k] + hz[k];
        // t = B·f, s = 2t/(1+|t|²)
        let tx = b.x * f[k];
        let ty = b.y * f[k];
        let tz = b.z * f[k];
        let sf = 2.0 / (1.0 + (tx * tx + ty * ty + tz * tz));
        let sx = tx * sf;
        let sy = ty * sf;
        let sz = tz * sf;
        // v′ = v⁻ + v⁻ × t
        let vpx = vmx + (vmy * tz - vmz * ty);
        let vpy = vmy + (vmz * tx - vmx * tz);
        let vpz = vmz + (vmx * ty - vmy * tx);
        // v⁺ = v⁻ + v′ × s, then the second half kick
        vx[k] = (vmx + (vpy * sz - vpz * sy)) + hx[k];
        vy[k] = (vmy + (vpz * sx - vpx * sz)) + hy[k];
        vz[k] = (vmz + (vpx * sy - vpy * sx)) + hz[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use particles::{MASS_H, QE};

    const QM: f64 = QE / MASS_H;

    #[test]
    fn lane_sweeps_match_scalar_push_bitwise() {
        let n = 23usize;
        let dt = 1e-7;
        let mk = |k: usize, a: f64, c: f64| (k as f64 * a - c).sin() * 1e4;
        let vx: Vec<f64> = (0..n).map(|k| mk(k, 1.3, 0.2)).collect();
        let vy: Vec<f64> = (0..n).map(|k| mk(k, 0.7, 1.1)).collect();
        let vz: Vec<f64> = (0..n).map(|k| mk(k, 2.1, 0.5)).collect();
        // per-particle q/m (as if species differed) and E field
        let qm: Vec<f64> = (0..n).map(|k| QM * (1.0 + (k % 3) as f64)).collect();
        let e: Vec<Vec3> = (0..n)
            .map(|k| Vec3::new(mk(k, 0.3, 2.0), mk(k, 1.9, 0.1), mk(k, 0.9, 0.9)) * 1e-2)
            .collect();
        // the factors exactly as the push kernel builds them
        let f: Vec<f64> = (0..n).map(|k| qm[k] * dt * 0.5).collect();
        let hx: Vec<f64> = (0..n).map(|k| e[k].x * f[k]).collect();
        let hy: Vec<f64> = (0..n).map(|k| e[k].y * f[k]).collect();
        let hz: Vec<f64> = (0..n).map(|k| e[k].z * f[k]).collect();
        for b in [Vec3::ZERO, Vec3::new(0.02, -0.01, 0.005)] {
            let (mut sx, mut sy, mut sz) = (vx.clone(), vy.clone(), vz.clone());
            if b.norm2() == 0.0 {
                kick_lanes_electrostatic([&mut sx, &mut sy, &mut sz], [&hx, &hy, &hz]);
            } else {
                kick_lanes_magnetized(&mut sx, &mut sy, &mut sz, &hx, &hy, &hz, &f, b);
            }
            for k in 0..n {
                let want = boris_push(Vec3::new(vx[k], vy[k], vz[k]), e[k], b, qm[k], dt);
                assert_eq!(sx[k].to_bits(), want.x.to_bits(), "k={k} b={b:?}");
                assert_eq!(sy[k].to_bits(), want.y.to_bits(), "k={k} b={b:?}");
                assert_eq!(sz[k].to_bits(), want.z.to_bits(), "k={k} b={b:?}");
            }
        }
    }

    #[test]
    fn zero_field_is_identity() {
        let v = Vec3::new(1e4, -2e3, 5e2);
        assert_eq!(boris_push(v, Vec3::ZERO, Vec3::ZERO, QM, 1e-7), v);
    }

    #[test]
    fn electrostatic_reduces_to_qe_over_m() {
        let v = Vec3::ZERO;
        let e = Vec3::new(0.0, 0.0, 1000.0);
        let dt = 1e-7;
        let out = boris_push(v, e, Vec3::ZERO, QM, dt);
        let expect = QM * 1000.0 * dt;
        assert!((out.z - expect).abs() < 1e-9 * expect);
        assert_eq!(out.x, 0.0);
    }

    #[test]
    fn magnetic_rotation_preserves_speed() {
        // pure B field: |v| must be exactly preserved by the rotation
        let v = Vec3::new(1e4, 0.0, 0.0);
        let b = Vec3::new(0.0, 0.0, 0.1);
        let out = boris_push(v, Vec3::ZERO, b, QM, 1e-9);
        assert!((out.norm() - v.norm()).abs() < 1e-6 * v.norm());
        // and rotate the velocity in the xy-plane
        assert!(out.y.abs() > 0.0);
        assert!(out.z.abs() < 1e-12);
    }

    #[test]
    fn gyration_orbit_closes() {
        // integrate one full gyro-period; particle speed stays put and
        // the velocity returns near its start (2nd-order scheme)
        let b = Vec3::new(0.0, 0.0, 0.05);
        let omega = QM * 0.05; // cyclotron frequency
        let period = 2.0 * std::f64::consts::PI / omega;
        let steps = 2000usize;
        let dt = period / steps as f64;
        let v0 = Vec3::new(5e3, 0.0, 0.0);
        let mut v = v0;
        for _ in 0..steps {
            v = boris_push(v, Vec3::ZERO, b, QM, dt);
        }
        assert!((v.norm() - v0.norm()).abs() < 1e-9 * v0.norm());
        assert!((v - v0).norm() < 0.02 * v0.norm(), "{:?}", v);
    }

    #[test]
    fn exb_drift_emerges() {
        // crossed fields: guiding centre drifts at E×B/|B|²
        let e = Vec3::new(100.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 0.0, 0.01);
        let drift = e.cross(b) / b.norm2(); // (0, -1e4, 0)
        let steps = 20000usize;
        let omega = QM * b.norm();
        let dt = (2.0 * std::f64::consts::PI / omega) / 200.0;
        let mut v = Vec3::ZERO;
        let mut mean = Vec3::ZERO;
        for _ in 0..steps {
            v = boris_push(v, e, b, QM, dt);
            mean += v / steps as f64;
        }
        assert!(
            (mean - drift).norm() < 0.05 * drift.norm(),
            "mean {mean:?} vs drift {drift:?}"
        );
    }
}
