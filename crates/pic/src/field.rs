//! Electric field from the potential: `E = −∇φ` (paper eq. 3),
//! piecewise constant per fine cell with linear elements, gathered to
//! particles with the same shape functions used for deposition.

use crate::poisson::shape_gradients;
use mesh::{NestedMesh, TetMesh, Vec3};

/// Per-fine-cell constant electric field.
#[derive(Debug, Clone)]
pub struct ElectricField {
    /// `e[f]` = field in fine cell `f` (V/m).
    pub e: Vec<Vec3>,
}

impl ElectricField {
    /// Zero field (used before the first Poisson solve: the paper
    /// drives particles "by the electric field of the previous
    /// timestep").
    pub fn zeros(fine: &TetMesh) -> Self {
        ElectricField {
            e: vec![Vec3::ZERO; fine.num_cells()],
        }
    }

    /// Compute `E = −∇φ` on every fine cell.
    pub fn from_potential(fine: &TetMesh, phi: &[f64]) -> Self {
        assert_eq!(phi.len(), fine.num_nodes());
        let mut e = vec![Vec3::ZERO; fine.num_cells()];
        for (t, et) in e.iter_mut().enumerate() {
            let g = shape_gradients(fine.tet_pos(t));
            let tet = fine.tets[t];
            let mut grad = Vec3::ZERO;
            for k in 0..4 {
                grad += g[k] * phi[tet[k] as usize];
            }
            *et = -grad;
        }
        ElectricField { e }
    }

    /// Field at a particle position inside coarse cell `coarse_cell`.
    pub fn at(&self, nm: &NestedMesh, coarse_cell: usize, pos: Vec3) -> Vec3 {
        let f = crate::deposit::fine_cell_of(nm, coarse_cell, pos);
        self.e[f]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::NozzleSpec;

    fn nested() -> NestedMesh {
        let spec = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        };
        let coarse = spec.generate();
        NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n))
    }

    #[test]
    fn zero_potential_zero_field() {
        let nm = nested();
        let phi = vec![0.0; nm.fine.num_nodes()];
        let e = ElectricField::from_potential(&nm.fine, &phi);
        assert!(e.e.iter().all(|v| v.norm() == 0.0));
    }

    #[test]
    fn linear_potential_gives_constant_field() {
        let nm = nested();
        // φ = 100 · z  =>  E = (0, 0, −100)
        let phi: Vec<f64> = nm.fine.nodes.iter().map(|p| 100.0 * p.z).collect();
        let e = ElectricField::from_potential(&nm.fine, &phi);
        for v in &e.e {
            assert!((v.z + 100.0).abs() < 1e-6, "{v:?}");
            assert!(v.x.abs() < 1e-6 && v.y.abs() < 1e-6);
        }
        // gather at arbitrary points agrees
        let c = nm.num_coarse() / 2;
        let at = e.at(&nm, c, nm.coarse.centroids[c]);
        assert!((at.z + 100.0).abs() < 1e-6);
    }

    #[test]
    fn field_is_minus_gradient_direction() {
        let nm = nested();
        // φ increasing along +x => E points along −x
        let phi: Vec<f64> = nm.fine.nodes.iter().map(|p| 50.0 * p.x).collect();
        let e = ElectricField::from_potential(&nm.fine, &phi);
        for v in &e.e {
            assert!(v.x < 0.0);
        }
    }
}
