//! Finite-element Poisson solver on the fine tetrahedral grid
//! (paper §III-C, eq. 4–5): assemble `K φ = b` with linear tet
//! elements, grounded Dirichlet boundaries, CSR storage and a Krylov
//! solve (the paper uses PETSc KSP; we use Jacobi-preconditioned CG).
//!
//! `−∇²φ = ρ/ε₀` with `b_i = (1/ε₀) Σ_k q_k λ_i(x_k)` for point
//! charges — exactly the deposition output of [`crate::deposit`].

use kernels::Pool;
use mesh::{FaceTag, TetMesh, Vec3};
use sparse::{cg_with, CooBuilder, CsrMatrix, KrylovOptions, SolveStats};

/// Vacuum permittivity (F/m).
pub const EPS0: f64 = 8.854_187_812_8e-12;

/// Constant shape-function gradients of a linear tet: returns
/// `[∇λ0, ∇λ1, ∇λ2, ∇λ3]`.
pub fn shape_gradients(p: [Vec3; 4]) -> [Vec3; 4] {
    // λ_i = 1 on vertex i, 0 on the opposite face; the gradient is
    // the inward face normal scaled by 1/distance:
    // ∇λ_i = n_face_i_area_vector / (3 V), pointing towards vertex i.
    let v6 = (p[1] - p[0]).cross(p[2] - p[0]).dot(p[3] - p[0]); // 6V signed
    let mut g = [Vec3::ZERO; 4];
    // face opposite vertex i is formed by the other three vertices
    const FACES: [[usize; 3]; 4] = [[1, 2, 3], [0, 3, 2], [0, 1, 3], [0, 2, 1]];
    for i in 0..4 {
        let [a, b, c] = FACES[i];
        // area vector with orientation chosen so ∇λ_i points to vertex i
        let n = (p[b] - p[a]).cross(p[c] - p[a]);
        let n = if n.dot(p[i] - p[a]) > 0.0 { n } else { -n };
        g[i] = n / v6.abs();
    }
    g
}

/// Pre-assembled Poisson system on a fine grid with Dirichlet nodes
/// grounded (φ = 0 on all inlet/outlet/wall nodes — conducting
/// nozzle).
pub struct PoissonSolver {
    /// Stiffness matrix with Dirichlet rows replaced by identity.
    pub matrix: CsrMatrix,
    /// Dirichlet flags per node.
    pub is_boundary: Vec<bool>,
    /// Last solution, reused as the warm start (successive PIC steps
    /// change ρ slowly, so warm starting saves most iterations).
    phi: Vec<f64>,
    opts: KrylovOptions,
}

impl PoissonSolver {
    /// Assemble the stiffness matrix of `fine`. O(cells); call once
    /// per mesh (topology never changes during a run).
    pub fn new(fine: &TetMesh, opts: KrylovOptions) -> Self {
        let n = fine.num_nodes();
        let mut is_boundary = vec![false; n];
        for (t, nb) in fine.neighbors.iter().enumerate() {
            for (f, tag) in nb.iter().enumerate() {
                if matches!(tag, FaceTag::Boundary(_)) {
                    for nd in fine.face_nodes(t, f) {
                        is_boundary[nd as usize] = true;
                    }
                }
            }
        }

        let mut coo = CooBuilder::new(n, n);
        for t in 0..fine.num_cells() {
            let p = fine.tet_pos(t);
            let g = shape_gradients(p);
            let vol = fine.volumes[t];
            let tet = fine.tets[t];
            for i in 0..4 {
                let gi = tet[i] as usize;
                if is_boundary[gi] {
                    continue; // row replaced by identity below
                }
                for j in 0..4 {
                    let gj = tet[j] as usize;
                    if is_boundary[gj] {
                        // grounded boundary (φ=0): column drops out
                        continue;
                    }
                    coo.add(gi, gj, vol * g[i].dot(g[j]));
                }
            }
        }
        for (i, &b) in is_boundary.iter().enumerate() {
            if b {
                coo.add(i, i, 1.0);
            }
        }
        let matrix = coo.build();
        PoissonSolver {
            matrix,
            is_boundary,
            phi: vec![0.0; n],
            opts,
        }
    }

    /// Solve for the potential given the deposited *real* node charge
    /// (C). Returns `(φ, stats)`; φ is also cached internally as the
    /// next warm start.
    pub fn solve(&mut self, node_charge: &[f64]) -> (&[f64], SolveStats) {
        self.solve_with(node_charge, &Pool::serial(), None)
    }

    /// As [`PoissonSolver::solve`], with the CG inner products and
    /// SpMV run on `pool` and an optional per-iteration residual
    /// history capture. The CG reduction order is fixed (see
    /// [`sparse::det_dot`]), so the solution is bitwise identical for
    /// every worker count.
    pub fn solve_with(
        &mut self,
        node_charge: &[f64],
        pool: &Pool,
        history: Option<&mut Vec<f64>>,
    ) -> (&[f64], SolveStats) {
        let n = self.phi.len();
        assert_eq!(node_charge.len(), n);
        let mut b = vec![0.0f64; n];
        for i in 0..n {
            b[i] = if self.is_boundary[i] {
                0.0
            } else {
                node_charge[i] / EPS0
            };
        }
        // warm start: boundary entries of phi must honour the BC
        for i in 0..n {
            if self.is_boundary[i] {
                self.phi[i] = 0.0;
            }
        }
        let stats = cg_with(&self.matrix, &b, &mut self.phi, self.opts, pool, history);
        (&self.phi, stats)
    }

    /// Current cached potential.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// Restore a potential snapshot (checkpoint state: `phi` doubles
    /// as the CG warm start, so the first solve after a restart must
    /// begin from the same iterate to stay bit-identical).
    pub fn set_phi(&mut self, phi: &[f64]) {
        assert_eq!(phi.len(), self.phi.len(), "node count mismatch");
        self.phi.copy_from_slice(phi);
    }

    /// Number of unknowns.
    pub fn num_nodes(&self) -> usize {
        self.phi.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::{NestedMesh, NozzleSpec};

    fn fine_mesh() -> TetMesh {
        let spec = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        };
        let coarse = spec.generate();
        NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n)).fine
    }

    #[test]
    fn matrix_is_symmetric_spd_like() {
        let fine = fine_mesh();
        let s = PoissonSolver::new(&fine, KrylovOptions::default());
        assert!(s.matrix.is_symmetric(1e-10));
        // diagonal strictly positive
        for d in s.matrix.diagonal() {
            assert!(d > 0.0);
        }
    }

    #[test]
    fn zero_charge_gives_zero_potential() {
        let fine = fine_mesh();
        let mut s = PoissonSolver::new(&fine, KrylovOptions::default());
        let zeros = vec![0.0; fine.num_nodes()];
        let (phi, stats) = s.solve(&zeros);
        assert!(stats.converged);
        assert!(phi.iter().all(|&p| p.abs() < 1e-12));
    }

    #[test]
    fn point_charge_creates_positive_interior_potential() {
        let fine = fine_mesh();
        let mut s = PoissonSolver::new(&fine, KrylovOptions::default());
        // put charge on some interior node
        let interior = (0..fine.num_nodes())
            .find(|&i| !s.is_boundary[i])
            .expect("interior node exists");
        let mut q = vec![0.0; fine.num_nodes()];
        q[interior] = 1e-15; // ~6k elementary charges
        let (phi, stats) = s.solve(&q);
        let phi = phi.to_vec();
        assert!(stats.converged, "{stats:?}");
        assert!(phi[interior] > 0.0);
        // boundary stays grounded
        for (i, &b) in s.is_boundary.iter().enumerate() {
            if b {
                assert_eq!(phi[i], 0.0);
            }
        }
        // the charged node has the max potential
        let max = phi.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((phi[interior] - max).abs() < 1e-12);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let fine = fine_mesh();
        let mut s = PoissonSolver::new(&fine, KrylovOptions::default());
        let interior = (0..fine.num_nodes()).find(|&i| !s.is_boundary[i]).unwrap();
        let mut q = vec![0.0; fine.num_nodes()];
        q[interior] = 1e-15;
        let (_, cold) = s.solve(&q);
        // tiny perturbation: warm start should converge much faster
        q[interior] *= 1.0001;
        let (_, warm) = s.solve(&q);
        assert!(warm.iterations < cold.iterations, "{warm:?} vs {cold:?}");
    }

    #[test]
    fn shape_gradients_partition_of_unity() {
        let p = [
            Vec3::new(0.1, 0.2, 0.3),
            Vec3::new(1.3, 0.1, 0.2),
            Vec3::new(0.2, 1.1, 0.4),
            Vec3::new(0.3, 0.4, 1.5),
        ];
        let g = shape_gradients(p);
        // gradients sum to zero (λ's sum to 1)
        let sum = g[0] + g[1] + g[2] + g[3];
        assert!(sum.norm() < 1e-12);
        // ∇λ_i · (p_i − p_j) = 1 for any j ≠ i
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    let d = g[i].dot(p[i] - p[j]);
                    assert!((d - 1.0).abs() < 1e-10, "i={i} j={j}: {d}");
                }
            }
        }
    }
}
