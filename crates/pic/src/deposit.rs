//! Charge deposition onto the fine (PIC) grid nodes (paper §III-C:
//! "interpolating the particle charge to the grid nodes").
//!
//! Each charged simulation particle carries `charge × weight` real
//! charge; it is distributed to the 4 nodes of its fine cell with the
//! linear (barycentric) shape functions — the same functions used to
//! gather the field back, making the scheme momentum-consistent.

use kernels::Pool;
use mesh::NestedMesh;
use particles::{ParticleBuffer, SpeciesTable};

/// Find the fine child cell of `coarse_cell` containing `pos`.
/// Falls back to the child with the largest minimum barycentric
/// weight (robust to roundoff on child faces).
pub fn fine_cell_of(nm: &NestedMesh, coarse_cell: usize, pos: mesh::Vec3) -> usize {
    let mut best = nm.children[coarse_cell][0] as usize;
    let mut best_min = f64::NEG_INFINITY;
    for &f in &nm.children[coarse_cell] {
        let w = nm.fine.bary(f as usize, pos);
        let wmin = w.iter().copied().fold(f64::INFINITY, f64::min);
        if wmin > best_min {
            best_min = wmin;
            best = f as usize;
        }
    }
    best
}

/// As [`fine_cell_of`], but also returning the winning barycentric
/// weights: the search evaluates `bary` for every child anyway, so
/// keeping the winner's weights spares the caller a second full
/// evaluation (`bary` is pure, so the saved weights are bitwise the
/// ones a recompute would produce).
pub fn fine_cell_with_bary(
    nm: &NestedMesh,
    coarse_cell: usize,
    pos: mesh::Vec3,
) -> (usize, [f64; 4]) {
    fine_cell_with_bary_in(&nm.fine, &nm.children[coarse_cell], pos)
}

/// [`fine_cell_with_bary`] over an already-fetched child list — the
/// cell-blocked deposit hoists `nm.children[coarse]` once per block.
fn fine_cell_with_bary_in(
    fine: &mesh::TetMesh,
    children: &[u32],
    pos: mesh::Vec3,
) -> (usize, [f64; 4]) {
    let mut best = children[0] as usize;
    let mut best_min = f64::NEG_INFINITY;
    let mut best_w: Option<[f64; 4]> = None;
    for &f in children {
        let w = fine.bary(f as usize, pos);
        let wmin = w.iter().copied().fold(f64::INFINITY, f64::min);
        if wmin > best_min {
            best_min = wmin;
            best = f as usize;
            best_w = Some(w);
        }
    }
    // all-NaN weights never update best_w; mirror the old two-call
    // behavior (bary of children[0]) in that degenerate case
    let w = best_w.unwrap_or_else(|| fine.bary(best, pos));
    (best, w)
}

/// Per-species deposit tables indexed by species id: `charged[s]` and
/// the deposited macro-charge `q[s] = charge·weight` — hoists the
/// per-particle `species.get()` lookup and `is_charged` branch out of
/// the deposit loop.
fn charge_tables(species: &SpeciesTable) -> (Vec<bool>, Vec<f64>) {
    let mut charged = Vec::new();
    let mut qw = Vec::new();
    for (id, sp) in species.iter() {
        let id = id as usize;
        if charged.len() <= id {
            charged.resize(id + 1, false);
            qw.resize(id + 1, 0.0);
        }
        charged[id] = sp.is_charged();
        qw[id] = sp.charge * sp.weight;
    }
    (charged, qw)
}

/// Deposit all charged particles of `buf` onto the fine-grid nodes.
/// Returns the accumulated node charge (Coulombs of *real* charge per
/// node), suitable as the FEM right-hand side after division by ε₀.
pub fn deposit_charge(nm: &NestedMesh, buf: &ParticleBuffer, species: &SpeciesTable) -> Vec<f64> {
    let mut node_charge = vec![0.0f64; nm.fine.num_nodes()];
    deposit_charge_into(nm, buf, species, &mut node_charge);
    node_charge
}

/// As [`deposit_charge`] but accumulating into an existing array
/// (callers zero it when appropriate; ranks accumulate their local
/// particles and then sum boundary nodes across ranks).
///
/// Cache-blocked: particles are walked in runs of equal coarse cell
/// (the engine's counting sort makes these runs long) with the child
/// list hoisted once per run. Accumulation stays in particle order,
/// so the result is bitwise identical to the naive loop — unsorted
/// buffers just degrade to runs of length 1.
pub fn deposit_charge_into(
    nm: &NestedMesh,
    buf: &ParticleBuffer,
    species: &SpeciesTable,
    node_charge: &mut [f64],
) {
    assert_eq!(node_charge.len(), nm.fine.num_nodes());
    let (charged, qw) = charge_tables(species);
    deposit_run(nm, buf, &charged, &qw, 0..buf.len(), &mut |node, dq| {
        node_charge[node as usize] += dq;
    });
}

/// Walk the particles of `range` cell-major and feed every
/// `(node, Δq)` contribution to `emit` in particle order. Shared core
/// of the serial deposit (which accumulates directly) and the pooled
/// one (which logs for ordered replay).
fn deposit_run(
    nm: &NestedMesh,
    buf: &ParticleBuffer,
    charged: &[bool],
    qw: &[f64],
    range: std::ops::Range<usize>,
    emit: &mut impl FnMut(u32, f64),
) {
    let mut i = range.start;
    while i < range.end {
        let coarse = buf.cell[i] as usize;
        // extend the run of particles sharing this coarse cell
        let mut j = i + 1;
        while j < range.end && buf.cell[j] as usize == coarse {
            j += 1;
        }
        let children = &nm.children[coarse];
        for k in i..j {
            let s = buf.species[k] as usize;
            if !charged[s] {
                continue;
            }
            let q = qw[s];
            let (fc, w) = fine_cell_with_bary_in(&nm.fine, children, buf.pos(k));
            let tet = nm.fine.tets[fc];
            for m in 0..4 {
                emit(tet[m], q * w[m]);
            }
        }
        i = j;
    }
}

/// Pooled deposition with *contribution-log replay*: worker chunks
/// compute `(node, Δq)` logs in parallel (the expensive part — fine
/// cell search and barycentric weights), then the caller thread
/// replays the logs in particle order. The accumulation order is
/// therefore exactly the serial loop's order, making the result
/// **bitwise identical to [`deposit_charge_into`] for every worker
/// count** — no f64 atomics, no per-worker grid copies to reduce.
pub fn deposit_charge_pooled(
    nm: &NestedMesh,
    buf: &ParticleBuffer,
    species: &SpeciesTable,
    node_charge: &mut [f64],
    pool: &Pool,
) {
    assert_eq!(node_charge.len(), nm.fine.num_nodes());
    if pool.is_serial() || buf.len() < 2 {
        return deposit_charge_into(nm, buf, species, node_charge);
    }
    let (charged, qw) = charge_tables(species);
    let (charged, qw) = (&charged, &qw);
    let ranges = kernels::chunk_ranges(buf.len(), pool.workers());
    let logs: Vec<Vec<(u32, f64)>> = pool.run_parts(ranges, |_, rg| {
        let mut log: Vec<(u32, f64)> = Vec::with_capacity(rg.len() * 4);
        deposit_run(nm, buf, charged, qw, rg, &mut |node, dq| {
            log.push((node, dq));
        });
        log
    });
    // replay in particle order (chunks are contiguous and in order)
    for log in logs {
        for (node, dq) in log {
            node_charge[node as usize] += dq;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::{NozzleSpec, Vec3};
    use particles::{Particle, QE};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nested() -> NestedMesh {
        let spec = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        };
        let coarse = spec.generate();
        NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n))
    }

    #[test]
    fn fine_cell_contains_point() {
        let nm = nested();
        let mut rng = StdRng::seed_from_u64(1);
        for c in (0..nm.num_coarse()).step_by(5) {
            let p = nm.coarse.tet_pos(c);
            for _ in 0..5 {
                let x = particles::sample::point_in_tet(&mut rng, p[0], p[1], p[2], p[3]);
                let f = fine_cell_of(&nm, c, x);
                assert_eq!(nm.fine_parent[f] as usize, c);
                assert!(nm.fine.contains(f, x, 1e-8));
            }
        }
    }

    #[test]
    fn total_charge_conserved() {
        let nm = nested();
        let (table, _h, hp) = SpeciesTable::hydrogen_plasma(1.0, 100.0);
        let mut buf = ParticleBuffer::new();
        let mut rng = StdRng::seed_from_u64(2);
        for k in 0..50u64 {
            let c = (k as usize * 7) % nm.num_coarse();
            let p = nm.coarse.tet_pos(c);
            buf.push(Particle {
                pos: particles::sample::point_in_tet(&mut rng, p[0], p[1], p[2], p[3]),
                vel: Vec3::ZERO,
                cell: c as u32,
                species: hp,
                id: k,
            });
        }
        let node_charge = deposit_charge(&nm, &buf, &table);
        let total: f64 = node_charge.iter().sum();
        let expect = 50.0 * QE * 100.0;
        assert!(
            (total - expect).abs() < 1e-9 * expect,
            "{total} vs {expect}"
        );
    }

    #[test]
    fn pooled_deposit_is_bitwise_identical_to_serial() {
        let nm = nested();
        let (table, h, hp) = SpeciesTable::hydrogen_plasma(1.0, 100.0);
        let mut buf = ParticleBuffer::new();
        let mut rng = StdRng::seed_from_u64(3);
        for k in 0..500u64 {
            let c = (k as usize * 11) % nm.num_coarse();
            let p = nm.coarse.tet_pos(c);
            buf.push(Particle {
                pos: particles::sample::point_in_tet(&mut rng, p[0], p[1], p[2], p[3]),
                vel: Vec3::ZERO,
                cell: c as u32,
                species: if k % 3 == 0 { h } else { hp },
                id: k,
            });
        }
        let serial = deposit_charge(&nm, &buf, &table);
        for workers in [1usize, 2, 4, 8] {
            let mut pooled = vec![0.0; nm.fine.num_nodes()];
            deposit_charge_pooled(&nm, &buf, &table, &mut pooled, &kernels::Pool::new(workers));
            for (s, p) in serial.iter().zip(&pooled) {
                assert_eq!(s.to_bits(), p.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn neutrals_deposit_nothing() {
        let nm = nested();
        let (table, h, _hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let mut buf = ParticleBuffer::new();
        buf.push(Particle {
            pos: nm.coarse.centroids[0],
            vel: Vec3::ZERO,
            cell: 0,
            species: h,
            id: 0,
        });
        let node_charge = deposit_charge(&nm, &buf, &table);
        assert!(node_charge.iter().all(|&q| q == 0.0));
    }

    #[test]
    fn charge_lands_on_owning_cell_nodes() {
        let nm = nested();
        let (table, _h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let c = nm.num_coarse() / 2;
        let mut buf = ParticleBuffer::new();
        buf.push(Particle {
            pos: nm.coarse.centroids[c],
            vel: Vec3::ZERO,
            cell: c as u32,
            species: hp,
            id: 0,
        });
        let node_charge = deposit_charge(&nm, &buf, &table);
        let f = fine_cell_of(&nm, c, nm.coarse.centroids[c]);
        let tet = nm.fine.tets[f];
        let on_cell: f64 = tet.iter().map(|&n| node_charge[n as usize]).sum();
        let total: f64 = node_charge.iter().sum();
        assert!((on_cell - total).abs() < 1e-12 * total.abs().max(1e-300));
    }
}
