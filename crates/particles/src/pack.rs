//! Fixed-size wire format for migrating particles between ranks.
//!
//! Both exchange strategies (vmpi §IV-B) move opaque byte buffers;
//! this module defines what a particle looks like on the wire:
//! position (24) + velocity (24) + cell (4) + species (1) + id (8)
//! = 61 bytes, little-endian.

use crate::buffer::{Particle, ParticleBuffer};
use mesh::Vec3;

/// Bytes per particle on the wire.
pub const PACKED_SIZE: usize = 24 + 24 + 4 + 1 + 8;

/// Append the wire representation of `p` to `buf`.
pub fn pack_particle(p: &Particle, buf: &mut Vec<u8>) {
    buf.reserve(PACKED_SIZE);
    for v in [p.pos.x, p.pos.y, p.pos.z, p.vel.x, p.vel.y, p.vel.z] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&p.cell.to_le_bytes());
    buf.push(p.species);
    buf.extend_from_slice(&p.id.to_le_bytes());
}

/// Decode one particle from `buf` starting at `off`. Panics on short
/// input (wire buffers are always whole multiples of [`PACKED_SIZE`]).
pub fn unpack_particle(buf: &[u8], off: usize) -> Particle {
    let f = |i: usize| f64::from_le_bytes(buf[off + i..off + i + 8].try_into().unwrap());
    let pos = Vec3::new(f(0), f(8), f(16));
    let vel = Vec3::new(f(24), f(32), f(40));
    let cell = u32::from_le_bytes(buf[off + 48..off + 52].try_into().unwrap());
    let species = buf[off + 52];
    let id = u64::from_le_bytes(buf[off + 53..off + 61].try_into().unwrap());
    Particle {
        pos,
        vel,
        cell,
        species,
        id,
    }
}

/// Append every particle in `buf` (a concatenation of wire records)
/// into `out`.
pub fn unpack_all(buf: &[u8], out: &mut ParticleBuffer) {
    assert_eq!(buf.len() % PACKED_SIZE, 0, "corrupt particle buffer");
    let n = buf.len() / PACKED_SIZE;
    for k in 0..n {
        out.push(unpack_particle(buf, k * PACKED_SIZE));
    }
}

/// Pack the particles at `indices` of `src` into one buffer.
pub fn pack_selected(src: &ParticleBuffer, indices: &[usize]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(indices.len() * PACKED_SIZE);
    pack_selected_into(src, indices, &mut buf);
    buf
}

/// As [`pack_selected`], but appending into a caller-supplied buffer
/// (typically a recycled one — the exchange scratch reuses received
/// buffers to avoid per-step allocations).
pub fn pack_selected_into(src: &ParticleBuffer, indices: &[usize], buf: &mut Vec<u8>) {
    buf.reserve(indices.len() * PACKED_SIZE);
    for &i in indices {
        pack_index(src, i, buf);
    }
}

/// Append the wire record of particle `i` straight from the SoA
/// columns — the hot path of emigrant packing (no intermediate
/// [`Particle`] materialisation, one append per field).
#[inline]
pub fn pack_index(src: &ParticleBuffer, i: usize, buf: &mut Vec<u8>) {
    buf.reserve(PACKED_SIZE);
    for c in [
        src.px[i], src.py[i], src.pz[i], src.vx[i], src.vy[i], src.vz[i],
    ] {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    buf.extend_from_slice(&src.cell[i].to_le_bytes());
    buf.push(src.species[i]);
    buf.extend_from_slice(&src.id[i].to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn particle() -> Particle {
        Particle {
            pos: Vec3::new(1.5, -2.5, 3.25),
            vel: Vec3::new(-1e4, 2e3, 0.125),
            cell: 4242,
            species: 1,
            id: 0xDEADBEEFCAFE,
        }
    }

    #[test]
    fn roundtrip_single() {
        let p = particle();
        let mut buf = Vec::new();
        pack_particle(&p, &mut buf);
        assert_eq!(buf.len(), PACKED_SIZE);
        assert_eq!(unpack_particle(&buf, 0), p);
    }

    #[test]
    fn roundtrip_buffer() {
        let mut src = ParticleBuffer::new();
        for i in 0..10u64 {
            let mut p = particle();
            p.id = i;
            p.cell = i as u32 * 3;
            src.push(p);
        }
        let packed = pack_selected(&src, &[0, 3, 7]);
        let mut dst = ParticleBuffer::new();
        unpack_all(&packed, &mut dst);
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.get(0).id, 0);
        assert_eq!(dst.get(1).id, 3);
        assert_eq!(dst.get(2).id, 7);
        assert_eq!(dst.get(2).cell, 21);
    }

    #[test]
    #[should_panic(expected = "corrupt")]
    fn rejects_misaligned_buffers() {
        let mut dst = ParticleBuffer::new();
        unpack_all(&[0u8; PACKED_SIZE + 1], &mut dst);
    }
}
