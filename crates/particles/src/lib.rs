//! Particle substrate: SoA storage, species registry, Maxwellian
//! sampling, and the migration wire format shared by the exchange
//! strategies.

#![deny(unsafe_code)]

pub mod buffer;
pub mod pack;
pub mod sample;
pub mod species;

pub use buffer::{Particle, ParticleBuffer, SortScratch};
pub use pack::{
    pack_index, pack_particle, pack_selected, pack_selected_into, unpack_all, unpack_particle,
    PACKED_SIZE,
};
pub use species::{Species, SpeciesTable, KB, MASS_H, QE};
