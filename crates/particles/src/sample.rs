//! Random sampling utilities: Maxwellian velocities and uniform
//! points in triangles/tets.
//!
//! Injection (paper §III-B) requires velocities "perpendicular to the
//! inlet and complying with the Maxwell distribution"; we provide
//! drifting-Maxwellian sampling plus the flux-biased normal component
//! used for surface injection.

use mesh::Vec3;
use rand::Rng;

use crate::species::KB;

/// Standard normal variate via Box–Muller (keeps us off external
/// distribution crates).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Sample a velocity from a drifting Maxwellian with temperature `t`
/// (K), particle mass `m` (kg) and drift velocity `drift`.
pub fn maxwellian<R: Rng>(rng: &mut R, t: f64, m: f64, drift: Vec3) -> Vec3 {
    let sigma = (KB * t / m).sqrt();
    Vec3::new(
        drift.x + sigma * standard_normal(rng),
        drift.y + sigma * standard_normal(rng),
        drift.z + sigma * standard_normal(rng),
    )
}

/// Sample the *inward* normal speed of a particle crossing a surface
/// from a Maxwellian flux (Rayleigh-distributed in the half-space):
/// `v_n = σ √(−2 ln U)`. Always positive.
pub fn flux_normal_speed<R: Rng>(rng: &mut R, t: f64, m: f64) -> f64 {
    let sigma = (KB * t / m).sqrt();
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    sigma * (-2.0 * u.ln()).sqrt()
}

/// Uniform point in the triangle `(a, b, c)`.
pub fn point_in_triangle<R: Rng>(rng: &mut R, a: Vec3, b: Vec3, c: Vec3) -> Vec3 {
    let mut u: f64 = rng.gen();
    let mut v: f64 = rng.gen();
    if u + v > 1.0 {
        u = 1.0 - u;
        v = 1.0 - v;
    }
    a + (b - a) * u + (c - a) * v
}

/// Uniform point in the tetrahedron `(a, b, c, d)` (fold-back method).
pub fn point_in_tet<R: Rng>(rng: &mut R, a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Vec3 {
    let mut s: f64 = rng.gen();
    let mut t: f64 = rng.gen();
    let mut u: f64 = rng.gen();
    if s + t > 1.0 {
        s = 1.0 - s;
        t = 1.0 - t;
    }
    if t + u > 1.0 {
        let tmp = u;
        u = 1.0 - s - t;
        t = 1.0 - tmp;
    } else if s + t + u > 1.0 {
        let tmp = u;
        u = s + t + u - 1.0;
        s = 1.0 - t - tmp;
    }
    let w = 1.0 - s - t - u;
    a * w + b * s + c * t + d * u
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::geom::tet_contains;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_variates_have_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn maxwellian_matches_temperature() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = 300.0;
        let m = crate::species::MASS_H;
        let drift = Vec3::new(0.0, 0.0, 10000.0);
        let n = 20000;
        let mut mean = Vec3::ZERO;
        let mut var_x = 0.0;
        for _ in 0..n {
            let v = maxwellian(&mut rng, t, m, drift);
            mean += v / n as f64;
            var_x += v.x * v.x / n as f64;
        }
        // drift recovered
        assert!((mean.z - 10000.0).abs() < 50.0, "{}", mean.z);
        assert!(mean.x.abs() < 50.0);
        // variance per component = kT/m
        let expect = KB * t / m;
        assert!((var_x - expect).abs() / expect < 0.05);
    }

    #[test]
    fn flux_speed_positive_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = 300.0;
        let m = crate::species::MASS_H;
        let sigma = (KB * t / m).sqrt();
        let n = 20000;
        let mut mean = 0.0;
        for _ in 0..n {
            let v = flux_normal_speed(&mut rng, t, m);
            assert!(v > 0.0);
            mean += v / n as f64;
        }
        // Rayleigh mean = σ √(π/2)
        let expect = sigma * (std::f64::consts::PI / 2.0).sqrt();
        assert!((mean - expect).abs() / expect < 0.03, "{mean} vs {expect}");
    }

    #[test]
    fn triangle_points_inside() {
        let mut rng = StdRng::seed_from_u64(4);
        let (a, b, c) = (
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.0, 3.0, 0.0),
        );
        for _ in 0..500 {
            let p = point_in_triangle(&mut rng, a, b, c);
            // inside iff barycentric non-negative
            assert!(p.x >= -1e-12 && p.y >= -1e-12);
            assert!(p.x / 2.0 + p.y / 3.0 <= 1.0 + 1e-12);
            assert!(p.z.abs() < 1e-15);
        }
    }

    #[test]
    fn tet_points_inside_and_fill_volume() {
        let mut rng = StdRng::seed_from_u64(5);
        let (a, b, c, d) = (
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        );
        let mut near_origin = 0usize;
        let n = 4000;
        for _ in 0..n {
            let p = point_in_tet(&mut rng, a, b, c, d);
            assert!(tet_contains(p, a, b, c, d, 1e-9), "{p:?}");
            if p.x + p.y + p.z < 0.5 {
                near_origin += 1;
            }
        }
        // sub-tet x+y+z<0.5 has volume fraction 1/8
        let frac = near_origin as f64 / n as f64;
        assert!((frac - 0.125).abs() < 0.03, "{frac}");
    }
}
