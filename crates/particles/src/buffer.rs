//! Structure-of-arrays particle storage.
//!
//! Hot loops (move, collide, deposit) stream over one field at a
//! time, so SoA layout is the right call for cache behaviour (and it
//! keeps the per-particle wire format explicit — see [`crate::pack`]).

use mesh::Vec3;

/// One particle, as a value type (used at API boundaries; storage is
/// SoA).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    pub pos: Vec3,
    pub vel: Vec3,
    /// Global coarse-grid cell id containing the particle.
    pub cell: u32,
    /// Species id into the [`crate::species::SpeciesTable`].
    pub species: u8,
    /// Globally unique particle number (maintained by Reindex).
    pub id: u64,
}

/// SoA particle container.
#[derive(Debug, Clone, Default)]
pub struct ParticleBuffer {
    pub pos: Vec<Vec3>,
    pub vel: Vec<Vec3>,
    pub cell: Vec<u32>,
    pub species: Vec<u8>,
    pub id: Vec<u64>,
}

/// Reusable scratch for [`ParticleBuffer::sort_by_cell`]. Keeping one
/// per rank amortises the allocations: after the first sort every
/// subsequent call is allocation-free (the sorted arrays are swapped
/// with the scratch arrays, which stay at capacity).
#[derive(Debug, Clone, Default)]
pub struct SortScratch {
    offsets: Vec<usize>,
    pos: Vec<Vec3>,
    vel: Vec<Vec3>,
    cell: Vec<u32>,
    species: Vec<u8>,
    id: Vec<u64>,
}

impl ParticleBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        ParticleBuffer {
            pos: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            cell: Vec::with_capacity(n),
            species: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
        }
    }

    /// Number of particles stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Append one particle.
    pub fn push(&mut self, p: Particle) {
        self.pos.push(p.pos);
        self.vel.push(p.vel);
        self.cell.push(p.cell);
        self.species.push(p.species);
        self.id.push(p.id);
    }

    /// Read particle `i` as a value.
    #[inline]
    pub fn get(&self, i: usize) -> Particle {
        Particle {
            pos: self.pos[i],
            vel: self.vel[i],
            cell: self.cell[i],
            species: self.species[i],
            id: self.id[i],
        }
    }

    /// Overwrite particle `i`.
    pub fn set(&mut self, i: usize, p: Particle) {
        self.pos[i] = p.pos;
        self.vel[i] = p.vel;
        self.cell[i] = p.cell;
        self.species[i] = p.species;
        self.id[i] = p.id;
    }

    /// O(1) removal by swapping with the last particle.
    pub fn swap_remove(&mut self, i: usize) -> Particle {
        Particle {
            pos: self.pos.swap_remove(i),
            vel: self.vel.swap_remove(i),
            cell: self.cell.swap_remove(i),
            species: self.species.swap_remove(i),
            id: self.id.swap_remove(i),
        }
    }

    /// Keep only particles where `keep[i]`, preserving relative
    /// order. `keep.len()` must equal `self.len()`.
    pub fn compact(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.len());
        let mut w = 0usize;
        for (r, &kept) in keep.iter().enumerate() {
            if kept {
                if w != r {
                    self.pos[w] = self.pos[r];
                    self.vel[w] = self.vel[r];
                    self.cell[w] = self.cell[r];
                    self.species[w] = self.species[r];
                    self.id[w] = self.id[r];
                }
                w += 1;
            }
        }
        self.truncate(w);
    }

    /// Drop all particles after index `n`.
    pub fn truncate(&mut self, n: usize) {
        self.pos.truncate(n);
        self.vel.truncate(n);
        self.cell.truncate(n);
        self.species.truncate(n);
        self.id.truncate(n);
    }

    /// Remove all particles.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Move every particle of `other` into `self` (draining `other`).
    pub fn append(&mut self, other: &mut ParticleBuffer) {
        self.pos.append(&mut other.pos);
        self.vel.append(&mut other.vel);
        self.cell.append(&mut other.cell);
        self.species.append(&mut other.species);
        self.id.append(&mut other.id);
    }

    /// Iterate particles as values.
    pub fn iter(&self) -> impl Iterator<Item = Particle> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Count particles per coarse cell into `counts` (indexed by
    /// global cell id); `counts` is not cleared first.
    pub fn count_per_cell(&self, counts: &mut [u64]) {
        for &c in &self.cell {
            counts[c as usize] += 1;
        }
    }

    /// Stable counting sort by cell id, O(n + num_cells). Restores
    /// cell-coherent memory order after many move/exchange steps have
    /// scrambled it, so the per-cell loops of collide and deposit
    /// stream contiguous memory again. `num_cells` must exceed every
    /// stored cell id.
    pub fn sort_by_cell(&mut self, num_cells: usize, scratch: &mut SortScratch) {
        let n = self.len();
        scratch.offsets.clear();
        scratch.offsets.resize(num_cells + 1, 0);
        for &c in &self.cell {
            debug_assert!((c as usize) < num_cells);
            scratch.offsets[c as usize + 1] += 1;
        }
        for i in 0..num_cells {
            scratch.offsets[i + 1] += scratch.offsets[i];
        }
        scratch.pos.resize(n, Vec3::ZERO);
        scratch.vel.resize(n, Vec3::ZERO);
        scratch.cell.resize(n, 0);
        scratch.species.resize(n, 0);
        scratch.id.resize(n, 0);
        for i in 0..n {
            let c = self.cell[i] as usize;
            let dst = scratch.offsets[c];
            scratch.offsets[c] += 1;
            scratch.pos[dst] = self.pos[i];
            scratch.vel[dst] = self.vel[i];
            scratch.cell[dst] = self.cell[i];
            scratch.species[dst] = self.species[i];
            scratch.id[dst] = self.id[i];
        }
        std::mem::swap(&mut self.pos, &mut scratch.pos);
        std::mem::swap(&mut self.vel, &mut scratch.vel);
        std::mem::swap(&mut self.cell, &mut scratch.cell);
        std::mem::swap(&mut self.species, &mut scratch.species);
        std::mem::swap(&mut self.id, &mut scratch.id);
    }

    /// Renumber particle ids sequentially starting at `start`;
    /// returns the next free id. This is the per-rank half of the
    /// paper's *Reindex* component (ranks obtain disjoint `start`
    /// offsets from an exclusive scan of particle counts).
    pub fn renumber(&mut self, start: u64) -> u64 {
        for (k, id) in self.id.iter_mut().enumerate() {
            *id = start + k as u64;
        }
        start + self.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> Particle {
        Particle {
            pos: Vec3::new(i as f64, 0.0, 0.0),
            vel: Vec3::new(0.0, i as f64, 0.0),
            cell: i as u32,
            species: (i % 2) as u8,
            id: i,
        }
    }

    #[test]
    fn push_get_roundtrip() {
        let mut b = ParticleBuffer::new();
        for i in 0..5 {
            b.push(p(i));
        }
        assert_eq!(b.len(), 5);
        for i in 0..5 {
            assert_eq!(b.get(i as usize), p(i));
        }
    }

    #[test]
    fn swap_remove_keeps_others() {
        let mut b = ParticleBuffer::new();
        for i in 0..4 {
            b.push(p(i));
        }
        let removed = b.swap_remove(1);
        assert_eq!(removed, p(1));
        assert_eq!(b.len(), 3);
        let ids: Vec<u64> = b.iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![0, 3, 2]);
    }

    #[test]
    fn compact_preserves_order() {
        let mut b = ParticleBuffer::new();
        for i in 0..6 {
            b.push(p(i));
        }
        b.compact(&[true, false, true, false, false, true]);
        let ids: Vec<u64> = b.iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![0, 2, 5]);
    }

    #[test]
    fn append_drains_source() {
        let mut a = ParticleBuffer::new();
        let mut b = ParticleBuffer::new();
        a.push(p(1));
        b.push(p(2));
        b.push(p(3));
        a.append(&mut b);
        assert_eq!(a.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn per_cell_counts() {
        let mut b = ParticleBuffer::new();
        for i in [0u64, 0, 1, 2, 2, 2] {
            b.push(p(i));
        }
        let mut counts = vec![0u64; 4];
        b.count_per_cell(&mut counts);
        assert_eq!(counts, vec![2, 1, 3, 0]);
    }

    #[test]
    fn sort_by_cell_is_stable_and_reuses_scratch() {
        let mut b = ParticleBuffer::new();
        for (k, c) in [3u64, 1, 3, 0, 2, 1, 3, 0].into_iter().enumerate() {
            let mut q = p(k as u64);
            q.cell = c as u32;
            b.push(q);
        }
        let mut scratch = SortScratch::default();
        b.sort_by_cell(4, &mut scratch);
        let cells: Vec<u32> = b.cell.clone();
        assert_eq!(cells, vec![0, 0, 1, 1, 2, 3, 3, 3]);
        // stable: within a cell, original order (by id) preserved
        let ids: Vec<u64> = b.id.clone();
        assert_eq!(ids, vec![3, 7, 1, 5, 4, 0, 2, 6]);
        // second sort on already-sorted data is a no-op
        let before: Vec<u64> = b.id.clone();
        b.sort_by_cell(4, &mut scratch);
        assert_eq!(b.id, before);
        // shrinking works with the same scratch
        b.truncate(3);
        b.sort_by_cell(4, &mut scratch);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn renumber_is_sequential() {
        let mut b = ParticleBuffer::new();
        for i in [9u64, 7, 5] {
            b.push(p(i));
        }
        let next = b.renumber(100);
        assert_eq!(next, 103);
        let ids: Vec<u64> = b.iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![100, 101, 102]);
    }
}
