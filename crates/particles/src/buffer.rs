//! Structure-of-arrays particle storage.
//!
//! Hot loops (move, collide, deposit, push) stream over one *scalar*
//! field at a time: positions and velocities are stored as six
//! independent `Vec<f64>` lanes (`px/py/pz`, `vx/vy/vz`), not as
//! `Vec<Vec3>`. Interleaving x/y/z at stride 3 defeats
//! autovectorization; with scalar lanes a sweep like
//! `px[i] += vx[i] * dt` compiles to packed SIMD adds. The [`Particle`]
//! value type remains the API boundary (and it keeps the per-particle
//! wire format explicit — see [`crate::pack`]).

use mesh::Vec3;

/// One particle, as a value type (used at API boundaries; storage is
/// SoA).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    pub pos: Vec3,
    pub vel: Vec3,
    /// Global coarse-grid cell id containing the particle.
    pub cell: u32,
    /// Species id into the [`crate::species::SpeciesTable`].
    pub species: u8,
    /// Globally unique particle number (maintained by Reindex).
    pub id: u64,
}

/// SoA particle container with scalar position/velocity lanes.
#[derive(Debug, Clone, Default)]
pub struct ParticleBuffer {
    pub px: Vec<f64>,
    pub py: Vec<f64>,
    pub pz: Vec<f64>,
    pub vx: Vec<f64>,
    pub vy: Vec<f64>,
    pub vz: Vec<f64>,
    pub cell: Vec<u32>,
    pub species: Vec<u8>,
    pub id: Vec<u64>,
}

/// Reusable scratch for [`ParticleBuffer::sort_by_cell`]. Keeping one
/// per rank amortises the allocations: after the first sort every
/// subsequent call is allocation-free (the sorted arrays are swapped
/// with the scratch arrays, which stay at capacity).
#[derive(Debug, Clone, Default)]
pub struct SortScratch {
    offsets: Vec<usize>,
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    vz: Vec<f64>,
    cell: Vec<u32>,
    species: Vec<u8>,
    id: Vec<u64>,
}

impl ParticleBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        ParticleBuffer {
            px: Vec::with_capacity(n),
            py: Vec::with_capacity(n),
            pz: Vec::with_capacity(n),
            vx: Vec::with_capacity(n),
            vy: Vec::with_capacity(n),
            vz: Vec::with_capacity(n),
            cell: Vec::with_capacity(n),
            species: Vec::with_capacity(n),
            id: Vec::with_capacity(n),
        }
    }

    /// Number of particles stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.px.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.px.is_empty()
    }

    /// Position of particle `i` as a vector.
    #[inline]
    pub fn pos(&self, i: usize) -> Vec3 {
        Vec3::new(self.px[i], self.py[i], self.pz[i])
    }

    /// Velocity of particle `i` as a vector.
    #[inline]
    pub fn vel(&self, i: usize) -> Vec3 {
        Vec3::new(self.vx[i], self.vy[i], self.vz[i])
    }

    /// Overwrite the position of particle `i`.
    #[inline]
    pub fn set_pos(&mut self, i: usize, p: Vec3) {
        self.px[i] = p.x;
        self.py[i] = p.y;
        self.pz[i] = p.z;
    }

    /// Overwrite the velocity of particle `i`.
    #[inline]
    pub fn set_vel(&mut self, i: usize, v: Vec3) {
        self.vx[i] = v.x;
        self.vy[i] = v.y;
        self.vz[i] = v.z;
    }

    /// Append one particle.
    pub fn push(&mut self, p: Particle) {
        self.px.push(p.pos.x);
        self.py.push(p.pos.y);
        self.pz.push(p.pos.z);
        self.vx.push(p.vel.x);
        self.vy.push(p.vel.y);
        self.vz.push(p.vel.z);
        self.cell.push(p.cell);
        self.species.push(p.species);
        self.id.push(p.id);
    }

    /// Read particle `i` as a value.
    #[inline]
    pub fn get(&self, i: usize) -> Particle {
        Particle {
            pos: self.pos(i),
            vel: self.vel(i),
            cell: self.cell[i],
            species: self.species[i],
            id: self.id[i],
        }
    }

    /// Overwrite particle `i`.
    pub fn set(&mut self, i: usize, p: Particle) {
        self.set_pos(i, p.pos);
        self.set_vel(i, p.vel);
        self.cell[i] = p.cell;
        self.species[i] = p.species;
        self.id[i] = p.id;
    }

    /// O(1) removal by swapping with the last particle.
    pub fn swap_remove(&mut self, i: usize) -> Particle {
        Particle {
            pos: Vec3::new(
                self.px.swap_remove(i),
                self.py.swap_remove(i),
                self.pz.swap_remove(i),
            ),
            vel: Vec3::new(
                self.vx.swap_remove(i),
                self.vy.swap_remove(i),
                self.vz.swap_remove(i),
            ),
            cell: self.cell.swap_remove(i),
            species: self.species.swap_remove(i),
            id: self.id.swap_remove(i),
        }
    }

    /// Keep only particles where `keep[i]`, preserving relative
    /// order. `keep.len()` must equal `self.len()`.
    pub fn compact(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.len());
        let mut w = 0usize;
        for (r, &kept) in keep.iter().enumerate() {
            if kept {
                if w != r {
                    self.px[w] = self.px[r];
                    self.py[w] = self.py[r];
                    self.pz[w] = self.pz[r];
                    self.vx[w] = self.vx[r];
                    self.vy[w] = self.vy[r];
                    self.vz[w] = self.vz[r];
                    self.cell[w] = self.cell[r];
                    self.species[w] = self.species[r];
                    self.id[w] = self.id[r];
                }
                w += 1;
            }
        }
        self.truncate(w);
    }

    /// Drop all particles after index `n`.
    pub fn truncate(&mut self, n: usize) {
        self.px.truncate(n);
        self.py.truncate(n);
        self.pz.truncate(n);
        self.vx.truncate(n);
        self.vy.truncate(n);
        self.vz.truncate(n);
        self.cell.truncate(n);
        self.species.truncate(n);
        self.id.truncate(n);
    }

    /// Remove all particles.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Move every particle of `other` into `self` (draining `other`).
    pub fn append(&mut self, other: &mut ParticleBuffer) {
        self.px.append(&mut other.px);
        self.py.append(&mut other.py);
        self.pz.append(&mut other.pz);
        self.vx.append(&mut other.vx);
        self.vy.append(&mut other.vy);
        self.vz.append(&mut other.vz);
        self.cell.append(&mut other.cell);
        self.species.append(&mut other.species);
        self.id.append(&mut other.id);
    }

    /// Iterate particles as values.
    pub fn iter(&self) -> impl Iterator<Item = Particle> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Whether all nine lanes hold the same number of entries. Every
    /// public mutation preserves this; the property tests assert it
    /// after sorting, packing and compaction.
    pub fn lanes_consistent(&self) -> bool {
        let n = self.px.len();
        self.py.len() == n
            && self.pz.len() == n
            && self.vx.len() == n
            && self.vy.len() == n
            && self.vz.len() == n
            && self.cell.len() == n
            && self.species.len() == n
            && self.id.len() == n
    }

    /// Count particles per coarse cell into `counts` (indexed by
    /// global cell id); `counts` is not cleared first.
    pub fn count_per_cell(&self, counts: &mut [u64]) {
        for &c in &self.cell {
            counts[c as usize] += 1;
        }
    }

    /// Stable counting sort by cell id, O(n + num_cells). Restores
    /// cell-coherent memory order after many move/exchange steps have
    /// scrambled it, so the per-cell loops of collide and deposit
    /// stream contiguous memory again. `num_cells` must exceed every
    /// stored cell id.
    pub fn sort_by_cell(&mut self, num_cells: usize, scratch: &mut SortScratch) {
        let n = self.len();
        scratch.offsets.clear();
        scratch.offsets.resize(num_cells + 1, 0);
        for &c in &self.cell {
            debug_assert!((c as usize) < num_cells);
            scratch.offsets[c as usize + 1] += 1;
        }
        for i in 0..num_cells {
            scratch.offsets[i + 1] += scratch.offsets[i];
        }
        scratch.px.resize(n, 0.0);
        scratch.py.resize(n, 0.0);
        scratch.pz.resize(n, 0.0);
        scratch.vx.resize(n, 0.0);
        scratch.vy.resize(n, 0.0);
        scratch.vz.resize(n, 0.0);
        scratch.cell.resize(n, 0);
        scratch.species.resize(n, 0);
        scratch.id.resize(n, 0);
        for i in 0..n {
            let c = self.cell[i] as usize;
            let dst = scratch.offsets[c];
            scratch.offsets[c] += 1;
            scratch.px[dst] = self.px[i];
            scratch.py[dst] = self.py[i];
            scratch.pz[dst] = self.pz[i];
            scratch.vx[dst] = self.vx[i];
            scratch.vy[dst] = self.vy[i];
            scratch.vz[dst] = self.vz[i];
            scratch.cell[dst] = self.cell[i];
            scratch.species[dst] = self.species[i];
            scratch.id[dst] = self.id[i];
        }
        std::mem::swap(&mut self.px, &mut scratch.px);
        std::mem::swap(&mut self.py, &mut scratch.py);
        std::mem::swap(&mut self.pz, &mut scratch.pz);
        std::mem::swap(&mut self.vx, &mut scratch.vx);
        std::mem::swap(&mut self.vy, &mut scratch.vy);
        std::mem::swap(&mut self.vz, &mut scratch.vz);
        std::mem::swap(&mut self.cell, &mut scratch.cell);
        std::mem::swap(&mut self.species, &mut scratch.species);
        std::mem::swap(&mut self.id, &mut scratch.id);
    }

    /// Renumber particle ids sequentially starting at `start`;
    /// returns the next free id. This is the per-rank half of the
    /// paper's *Reindex* component (ranks obtain disjoint `start`
    /// offsets from an exclusive scan of particle counts).
    pub fn renumber(&mut self, start: u64) -> u64 {
        for (k, id) in self.id.iter_mut().enumerate() {
            *id = start + k as u64;
        }
        start + self.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u64) -> Particle {
        Particle {
            pos: Vec3::new(i as f64, 0.0, 0.0),
            vel: Vec3::new(0.0, i as f64, 0.0),
            cell: i as u32,
            species: (i % 2) as u8,
            id: i,
        }
    }

    #[test]
    fn push_get_roundtrip() {
        let mut b = ParticleBuffer::new();
        for i in 0..5 {
            b.push(p(i));
        }
        assert_eq!(b.len(), 5);
        for i in 0..5 {
            assert_eq!(b.get(i as usize), p(i));
        }
        assert!(b.lanes_consistent());
    }

    #[test]
    fn pos_vel_accessors_match_get() {
        let mut b = ParticleBuffer::new();
        let q = Particle {
            pos: Vec3::new(1.5, -2.25, 3.0),
            vel: Vec3::new(-4.0, 5.5, -6.75),
            cell: 9,
            species: 1,
            id: 42,
        };
        b.push(q);
        assert_eq!(b.pos(0), q.pos);
        assert_eq!(b.vel(0), q.vel);
        b.set_pos(0, Vec3::new(7.0, 8.0, 9.0));
        b.set_vel(0, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(b.get(0).pos, Vec3::new(7.0, 8.0, 9.0));
        assert_eq!(b.get(0).vel, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn swap_remove_keeps_others() {
        let mut b = ParticleBuffer::new();
        for i in 0..4 {
            b.push(p(i));
        }
        let removed = b.swap_remove(1);
        assert_eq!(removed, p(1));
        assert_eq!(b.len(), 3);
        let ids: Vec<u64> = b.iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![0, 3, 2]);
        assert!(b.lanes_consistent());
    }

    #[test]
    fn compact_preserves_order() {
        let mut b = ParticleBuffer::new();
        for i in 0..6 {
            b.push(p(i));
        }
        b.compact(&[true, false, true, false, false, true]);
        let ids: Vec<u64> = b.iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![0, 2, 5]);
        assert!(b.lanes_consistent());
    }

    #[test]
    fn append_drains_source() {
        let mut a = ParticleBuffer::new();
        let mut b = ParticleBuffer::new();
        a.push(p(1));
        b.push(p(2));
        b.push(p(3));
        a.append(&mut b);
        assert_eq!(a.len(), 3);
        assert!(b.is_empty());
        assert!(a.lanes_consistent() && b.lanes_consistent());
    }

    #[test]
    fn per_cell_counts() {
        let mut b = ParticleBuffer::new();
        for i in [0u64, 0, 1, 2, 2, 2] {
            b.push(p(i));
        }
        let mut counts = vec![0u64; 4];
        b.count_per_cell(&mut counts);
        assert_eq!(counts, vec![2, 1, 3, 0]);
    }

    #[test]
    fn sort_by_cell_is_stable_and_reuses_scratch() {
        let mut b = ParticleBuffer::new();
        for (k, c) in [3u64, 1, 3, 0, 2, 1, 3, 0].into_iter().enumerate() {
            let mut q = p(k as u64);
            q.cell = c as u32;
            b.push(q);
        }
        let mut scratch = SortScratch::default();
        b.sort_by_cell(4, &mut scratch);
        let cells: Vec<u32> = b.cell.clone();
        assert_eq!(cells, vec![0, 0, 1, 1, 2, 3, 3, 3]);
        // stable: within a cell, original order (by id) preserved
        let ids: Vec<u64> = b.id.clone();
        assert_eq!(ids, vec![3, 7, 1, 5, 4, 0, 2, 6]);
        // position/velocity lanes travelled with their particles
        for i in 0..b.len() {
            let q = b.get(i);
            assert_eq!(q.pos.x, q.id as f64);
            assert_eq!(q.vel.y, q.id as f64);
        }
        assert!(b.lanes_consistent());
        // second sort on already-sorted data is a no-op
        let before: Vec<u64> = b.id.clone();
        b.sort_by_cell(4, &mut scratch);
        assert_eq!(b.id, before);
        // shrinking works with the same scratch
        b.truncate(3);
        b.sort_by_cell(4, &mut scratch);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn renumber_is_sequential() {
        let mut b = ParticleBuffer::new();
        for i in [9u64, 7, 5] {
            b.push(p(i));
        }
        let next = b.renumber(100);
        assert_eq!(next, 103);
        let ids: Vec<u64> = b.iter().map(|q| q.id).collect();
        assert_eq!(ids, vec![100, 101, 102]);
    }
}
