//! Particle species registry.
//!
//! The paper simulates hydrogen atoms (H, neutral, handled by DSMC)
//! and hydrogen ions (H⁺, charged, handled by PIC), with per-dataset
//! *scaling factors*: the number of real particles represented by one
//! simulation particle (Table I).

use serde::{Deserialize, Serialize};

/// Boltzmann constant (J/K).
pub const KB: f64 = 1.380_649e-23;
/// Elementary charge (C).
pub const QE: f64 = 1.602_176_634e-19;
/// Mass of a hydrogen atom (kg).
pub const MASS_H: f64 = 1.6735575e-27;
/// Electron mass (kg).
pub const MASS_E: f64 = 9.109_383_701_5e-31;

/// Physical properties of one species.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Species {
    /// Display name ("H", "H+").
    pub name: String,
    /// Particle mass (kg).
    pub mass: f64,
    /// Charge (C); 0 for neutrals.
    pub charge: f64,
    /// VHS reference diameter (m).
    pub diameter: f64,
    /// VHS viscosity-temperature exponent ω.
    pub omega: f64,
    /// VHS reference temperature (K).
    pub t_ref: f64,
    /// Scaling factor: real particles represented by one simulation
    /// particle (paper Table I).
    pub weight: f64,
}

impl Species {
    /// Whether PIC must push this species in the electric field.
    #[inline]
    pub fn is_charged(&self) -> bool {
        self.charge != 0.0
    }

    /// Hydrogen atom with the given scaling factor.
    pub fn hydrogen(weight: f64) -> Self {
        Species {
            name: "H".into(),
            mass: MASS_H,
            charge: 0.0,
            diameter: 2.33e-10,
            omega: 0.75,
            t_ref: 273.0,
            weight,
        }
    }

    /// Hydrogen ion with the given scaling factor.
    pub fn hydrogen_ion(weight: f64) -> Self {
        Species {
            name: "H+".into(),
            mass: MASS_H - MASS_E,
            charge: QE,
            diameter: 2.33e-10,
            omega: 0.75,
            t_ref: 273.0,
            weight,
        }
    }

    /// Most probable thermal speed at temperature `t` (m/s).
    pub fn thermal_speed(&self, t: f64) -> f64 {
        (2.0 * KB * t / self.mass).sqrt()
    }

    /// VHS total collision cross-section at relative speed `g` (m²)
    /// against a partner of the same species (Bird 1994, eq. 4.63).
    pub fn vhs_cross_section(&self, g: f64) -> f64 {
        let d = self.diameter;
        let sigma_ref = std::f64::consts::PI * d * d;
        if g <= 0.0 {
            return sigma_ref;
        }
        // σ(g) = σ_ref * (g_ref / g)^(2ω - 1); using the thermal speed
        // at T_ref as the reference relative speed.
        let g_ref = (2.0 * KB * self.t_ref / self.mass).sqrt();
        sigma_ref * (g_ref / g).powf(2.0 * self.omega - 1.0)
    }
}

/// Indexed registry of all species in a simulation. Species ids are
/// `u8` (stored per particle).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpeciesTable {
    list: Vec<Species>,
}

impl SpeciesTable {
    pub fn new() -> Self {
        SpeciesTable { list: Vec::new() }
    }

    /// The paper's two-species hydrogen plasma, with the given scaling
    /// factors for H and H⁺. Returns `(table, h_id, hplus_id)`.
    pub fn hydrogen_plasma(weight_h: f64, weight_hplus: f64) -> (Self, u8, u8) {
        let mut t = SpeciesTable::new();
        let h = t.add(Species::hydrogen(weight_h));
        let hp = t.add(Species::hydrogen_ion(weight_hplus));
        (t, h, hp)
    }

    /// Register a species; returns its id.
    pub fn add(&mut self, s: Species) -> u8 {
        assert!(self.list.len() < u8::MAX as usize);
        self.list.push(s);
        (self.list.len() - 1) as u8
    }

    /// Species by id.
    #[inline]
    pub fn get(&self, id: u8) -> &Species {
        &self.list[id as usize]
    }

    /// Number of registered species.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Iterate `(id, species)`.
    pub fn iter(&self) -> impl Iterator<Item = (u8, &Species)> {
        self.list.iter().enumerate().map(|(i, s)| (i as u8, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydrogen_plasma_registry() {
        let (t, h, hp) = SpeciesTable::hydrogen_plasma(1e12, 6000.0);
        assert_eq!(t.len(), 2);
        assert!(!t.get(h).is_charged());
        assert!(t.get(hp).is_charged());
        assert_eq!(t.get(h).weight, 1e12);
        assert_eq!(t.get(hp).weight, 6000.0);
        assert!(t.get(hp).mass < t.get(h).mass);
    }

    #[test]
    fn thermal_speed_scales_with_sqrt_t() {
        let h = Species::hydrogen(1.0);
        let v300 = h.thermal_speed(300.0);
        let v1200 = h.thermal_speed(1200.0);
        assert!((v1200 / v300 - 2.0).abs() < 1e-12);
        // hydrogen at 300 K: ~2.2 km/s most probable speed
        assert!(v300 > 2000.0 && v300 < 2500.0, "{v300}");
    }

    #[test]
    fn vhs_cross_section_decreases_with_speed() {
        let h = Species::hydrogen(1.0);
        let slow = h.vhs_cross_section(100.0);
        let fast = h.vhs_cross_section(10000.0);
        assert!(slow > fast);
        assert!(fast > 0.0);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let (t, _, _) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let ids: Vec<u8> = t.iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
