//! Typed communication failures.
//!
//! Every [`crate::Comm`] operation, collective and exchange returns
//! `Result<_, CommError>` instead of panicking: a lost peer, a stuck
//! receive or a poisoned shared structure surfaces as a value the
//! caller can react to (retry, tear the world down, restart from a
//! checkpoint) rather than as an aborted rank thread.

/// Result alias used across the crate's communication surface.
pub type CommResult<T> = Result<T, CommError>;

/// Why a communication operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// The peer rank is dead: it was killed by a fault plan, its
    /// thread exited, or its channel endpoints were dropped.
    PeerDead {
        /// The rank that is gone.
        peer: usize,
    },
    /// This rank itself has been killed (by a fault-plan kill event);
    /// every subsequent operation on its endpoint fails with this.
    Killed {
        /// The killed rank (the caller).
        rank: usize,
    },
    /// A receive exhausted its timeout/retry budget with no message.
    Timeout {
        /// The source rank the receive was matched against.
        from: usize,
        /// Sequence number (per-pair delivery ordinal) of the message
        /// the receive was waiting for: for the raw transport, the
        /// count of messages already delivered from `from`; for the
        /// reliable layer, the expected retransmission sequence. Lets
        /// operators see *which* message in the stream stalled.
        seq: u64,
    },
    /// A shared communication structure (channel or world state) was
    /// poisoned by a panic on another rank thread.
    Poisoned,
    /// A wire frame could not be decoded (truncated header or body).
    Malformed {
        /// What failed to parse.
        what: &'static str,
    },
    /// [`crate::Strategy::Auto`] reached the wire without being
    /// resolved to a concrete strategy first.
    AutoUnresolved,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerDead { peer } => write!(f, "peer rank {peer} is dead"),
            CommError::Killed { rank } => write!(f, "rank {rank} was killed"),
            CommError::Timeout { from, seq } => {
                write!(f, "receive from rank {from} timed out (pending seq {seq})")
            }
            CommError::Poisoned => write!(f, "communication state poisoned by a panic"),
            CommError::Malformed { what } => write!(f, "malformed wire frame: {what}"),
            CommError::AutoUnresolved => write!(
                f,
                "Strategy::Auto must be resolved to a concrete strategy before \
                 the exchange runs (see coupled::machine::CostModel::pick_strategy)"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Read a little-endian `u32` from the front of `buf`, advancing it.
pub(crate) fn take_u32(buf: &mut &[u8], what: &'static str) -> CommResult<u32> {
    if buf.len() < 4 {
        return Err(CommError::Malformed { what });
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_le_bytes([head[0], head[1], head[2], head[3]]))
}

/// Read a little-endian `u64` from the front of `buf`, advancing it.
pub(crate) fn take_u64(buf: &mut &[u8], what: &'static str) -> CommResult<u64> {
    if buf.len() < 8 {
        return Err(CommError::Malformed { what });
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    let mut b = [0u8; 8];
    b.copy_from_slice(head);
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_variant() {
        assert!(CommError::PeerDead { peer: 3 }.to_string().contains("3"));
        assert!(CommError::Killed { rank: 1 }.to_string().contains("killed"));
        let timeout = CommError::Timeout { from: 2, seq: 17 }.to_string();
        assert!(timeout.contains("timed out"));
        assert!(timeout.contains("seq 17"), "pending seq must surface");
        assert!(CommError::Poisoned.to_string().contains("poisoned"));
        assert!(CommError::Malformed { what: "seq header" }
            .to_string()
            .contains("seq header"));
        assert!(CommError::AutoUnresolved.to_string().contains("Auto"));
    }

    #[test]
    fn take_helpers_reject_short_buffers() {
        let mut short: &[u8] = &[1, 2, 3];
        assert_eq!(
            take_u32(&mut short, "hdr"),
            Err(CommError::Malformed { what: "hdr" })
        );
        let mut short8: &[u8] = &[0; 7];
        assert_eq!(
            take_u64(&mut short8, "len"),
            Err(CommError::Malformed { what: "len" })
        );
        let mut ok: &[u8] = &[5, 0, 0, 0, 7, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(take_u32(&mut ok, "hdr"), Ok(5));
        assert_eq!(take_u64(&mut ok, "len"), Ok(7));
        assert!(ok.is_empty());
    }
}
