//! Deterministic fault injection under the [`Comm`] trait.
//!
//! A [`FaultPlan`] describes, reproducibly from a seed, which messages
//! of a run are dropped, duplicated or delay-reordered — per ordered
//! `(src, dst, message-index)` — plus rank-stall and rank-kill events
//! scheduled at chosen engine steps. [`ChaosComm`] wraps any transport
//! and applies the plan at send time, so the layers above (the
//! reliability sublayer, the exchange strategies, the coupled engine)
//! can be proven to survive a lossy, reordering, partially-failing
//! network bit-for-bit.
//!
//! Determinism: the per-message decision is a pure hash of
//! `(seed, src, dst, index)` (splitmix64), and the per-pair message
//! index is counted at the chaos layer itself — so the same plan over
//! the same traffic always misbehaves identically, including when a
//! recovery replay re-sends the same messages.
//!
//! Delay model: a delayed message is *held* until `span` further sends
//! occur on the same ordered pair (later sends overtake it — a true
//! reorder, not just latency), and any still-held messages are flushed
//! at the next barrier so collective rounds stay fenced.

use crate::comm::{Comm, CommStats};
use crate::error::{CommError, CommResult};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What happens to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Silently discard (the reliability layer must recover it).
    Drop,
    /// Deliver twice (the reliability layer must dedup).
    Duplicate,
    /// Hold until this many further sends occur on the same ordered
    /// pair (they overtake it), or until the next barrier.
    Delay(u32),
}

/// A scheduled in-place sleep of one rank at one engine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallEvent {
    /// Which rank stalls.
    pub rank: usize,
    /// At the start of which engine step.
    pub step: usize,
    /// For how long.
    pub millis: u64,
}

/// A scheduled death of one rank at one engine step. Fires once per
/// run (surviving recovery attempts): the replayed run passes the same
/// step again, and re-killing would loop forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillEvent {
    /// Which rank dies.
    pub rank: usize,
    /// At the start of which engine step.
    pub step: usize,
}

/// A seeded, reproducible description of every fault of a run.
///
/// Message faults come from two sources, checked in order: explicit
/// per-`(src, dst, index)` entries, then seeded per-mille rates hashed
/// from `(seed, src, dst, index)`. Rank events (stall/kill) are always
/// explicit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the per-message hash decisions.
    pub seed: u64,
    /// Per-mille (‰) of messages to drop.
    pub drop_per_mille: u32,
    /// Per-mille (‰) of messages to duplicate.
    pub dup_per_mille: u32,
    /// Per-mille (‰) of messages to delay-reorder.
    pub delay_per_mille: u32,
    /// Maximum delay span (in later sends on the pair) for seeded
    /// delays; actual span is `1 + hash % max_delay_span`.
    pub max_delay_span: u32,
    /// Explicit per-message overrides.
    pub explicit: Vec<(usize, usize, u64, FaultAction)>,
    /// Scheduled rank stalls.
    pub stalls: Vec<StallEvent>,
    /// Scheduled rank kills.
    pub kills: Vec<KillEvent>,
}

/// splitmix64 — the standard 64-bit finalizer-style mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan with the given seed and no faults (builder entry point).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            max_delay_span: 1,
            ..FaultPlan::default()
        }
    }

    /// Drop `per_mille` ‰ of messages (seeded).
    pub fn drops(mut self, per_mille: u32) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Duplicate `per_mille` ‰ of messages (seeded).
    pub fn dups(mut self, per_mille: u32) -> Self {
        self.dup_per_mille = per_mille;
        self
    }

    /// Delay-reorder `per_mille` ‰ of messages by up to `max_span`
    /// later sends (seeded).
    pub fn delays(mut self, per_mille: u32, max_span: u32) -> Self {
        self.delay_per_mille = per_mille;
        self.max_delay_span = max_span.max(1);
        self
    }

    /// Force `action` on message `idx` of the ordered pair `src → dst`.
    pub fn action(mut self, src: usize, dst: usize, idx: u64, action: FaultAction) -> Self {
        self.explicit.push((src, dst, idx, action));
        self
    }

    /// Stall `rank` for `millis` ms at the start of engine step `step`.
    pub fn stall(mut self, rank: usize, step: usize, millis: u64) -> Self {
        self.stalls.push(StallEvent { rank, step, millis });
        self
    }

    /// Kill `rank` at the start of engine step `step`.
    pub fn kill(mut self, rank: usize, step: usize) -> Self {
        self.kills.push(KillEvent { rank, step });
        self
    }

    /// Does this plan schedule any rank kill?
    pub fn has_kills(&self) -> bool {
        !self.kills.is_empty()
    }

    /// The deterministic fate of message number `idx` on `src → dst`.
    pub fn decide(&self, src: usize, dst: usize, idx: u64) -> FaultAction {
        for &(s, d, i, a) in &self.explicit {
            if s == src && d == dst && i == idx {
                return a;
            }
        }
        let key = (src as u64)
            .wrapping_mul(0x517C_C1B7_2722_0A95)
            .wrapping_add((dst as u64).wrapping_mul(0x2545_F491_4F6C_DD1D))
            .wrapping_add(idx);
        let h = splitmix64(self.seed ^ key);
        let roll = (h % 1000) as u32;
        if roll < self.drop_per_mille {
            FaultAction::Drop
        } else if roll < self.drop_per_mille + self.dup_per_mille {
            FaultAction::Duplicate
        } else if roll < self.drop_per_mille + self.dup_per_mille + self.delay_per_mille {
            FaultAction::Delay(1 + ((h >> 32) as u32) % self.max_delay_span)
        } else {
            FaultAction::Deliver
        }
    }

    /// Parse the compact CLI form used by the bench binaries:
    /// `seed=7,drop=30,dup=20,delay=20/4,kill=1@5,stall=2@3/50`
    /// (rates in ‰; `delay=p/span`; `kill=rank@step`;
    /// `stall=rank@step/millis`). Unknown or malformed fields are an
    /// error.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::seeded(0);
        for field in spec.split(',').filter(|f| !f.is_empty()) {
            let (key, val) = field
                .split_once('=')
                .ok_or_else(|| format!("fault-plan field without '=': {field:?}"))?;
            let num = |s: &str| -> Result<u64, String> {
                s.parse::<u64>()
                    .map_err(|_| format!("fault-plan: bad number {s:?} in {field:?}"))
            };
            match key {
                "seed" => plan.seed = num(val)?,
                "drop" => plan.drop_per_mille = num(val)? as u32,
                "dup" => plan.dup_per_mille = num(val)? as u32,
                "delay" => {
                    let (p, span) = val.split_once('/').unwrap_or((val, "1"));
                    plan.delay_per_mille = num(p)? as u32;
                    plan.max_delay_span = (num(span)? as u32).max(1);
                }
                "kill" => {
                    let (rank, step) = val
                        .split_once('@')
                        .ok_or_else(|| format!("fault-plan: kill needs rank@step: {field:?}"))?;
                    plan = plan.kill(num(rank)? as usize, num(step)? as usize);
                }
                "stall" => {
                    let (rank, rest) = val.split_once('@').ok_or_else(|| {
                        format!("fault-plan: stall needs rank@step/ms: {field:?}")
                    })?;
                    let (step, ms) = rest.split_once('/').unwrap_or((rest, "10"));
                    plan = plan.stall(num(rank)? as usize, num(step)? as usize, num(ms)?);
                }
                other => return Err(format!("fault-plan: unknown field {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Per-ordered-pair chaos state.
#[derive(Debug, Default)]
struct PairChaos {
    /// Messages sent on this pair so far (the next message's index).
    sent: u64,
    /// Held (delayed) messages: `(release_at_send_count, payload)`.
    held: Vec<(u64, Vec<u8>)>,
}

/// World-shared chaos state: the plan, per-pair counters, one-shot
/// kill flags and fault-injection counters. Shared by every rank's
/// [`ChaosComm`] and across recovery attempts (the kill flags must
/// survive a world teardown so the replay does not re-kill).
#[derive(Debug)]
pub struct ChaosWorld {
    plan: FaultPlan,
    n: usize,
    pairs: Vec<Mutex<PairChaos>>,
    kill_fired: Vec<AtomicBool>,
    drops: AtomicU64,
    dups: AtomicU64,
    delays: AtomicU64,
    stalls: AtomicU64,
    kills: AtomicU64,
}

impl ChaosWorld {
    /// Chaos state for an `n`-rank world under `plan`.
    pub fn new(plan: FaultPlan, n: usize) -> Arc<Self> {
        Arc::new(ChaosWorld {
            plan,
            n,
            pairs: (0..n * n)
                .map(|_| Mutex::new(PairChaos::default()))
                .collect(),
            kill_fired: (0..n).map(|_| AtomicBool::new(false)).collect(),
            drops: AtomicU64::new(0),
            dups: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            kills: AtomicU64::new(0),
        })
    }

    /// Reset per-pair message counters and held messages for a fresh
    /// world (recovery replay). Kill flags and fault counters persist:
    /// flags so the replay is not re-killed, counters because they are
    /// cumulative run totals.
    pub fn reset_pairs(&self) {
        for p in &self.pairs {
            if let Ok(mut p) = p.lock() {
                p.sent = 0;
                p.held.clear();
            }
        }
    }

    fn pair(&self, src: usize, dst: usize) -> &Mutex<PairChaos> {
        &self.pairs[src * self.n + dst]
    }

    /// Messages dropped so far.
    pub fn injected_drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }
    /// Messages duplicated so far.
    pub fn injected_dups(&self) -> u64 {
        self.dups.load(Ordering::Relaxed)
    }
    /// Messages delay-reordered so far.
    pub fn injected_delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }
    /// Stall events fired so far.
    pub fn stalls_fired(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }
    /// Kill events fired so far.
    pub fn kills_fired(&self) -> u64 {
        self.kills.load(Ordering::Relaxed)
    }
    /// Total message faults injected (drops + dups + delays).
    pub fn injected_total(&self) -> u64 {
        self.injected_drops() + self.injected_dups() + self.injected_delays()
    }
}

/// A [`Comm`] that applies a [`FaultPlan`] to everything it sends.
///
/// Wrap the real transport in this, then wrap this in
/// [`ReliableComm`](crate::ReliableComm) — the reliability layer must
/// sit *above* the chaos so it can undo it.
pub struct ChaosComm<C: Comm> {
    inner: C,
    world: Arc<ChaosWorld>,
}

impl<C: Comm> ChaosComm<C> {
    /// Wrap `inner`, injecting faults from `world`'s plan.
    pub fn new(inner: C, world: Arc<ChaosWorld>) -> Self {
        assert_eq!(world.n, inner.size(), "chaos world sized for another world");
        ChaosComm { inner, world }
    }

    /// The shared chaos state (for counters).
    pub fn world(&self) -> &Arc<ChaosWorld> {
        &self.world
    }

    /// Flush every held (delayed) message this rank still owes, in
    /// scheduled-release order.
    fn flush_held(&self) -> CommResult<()> {
        let me = self.inner.rank();
        for dst in 0..self.inner.size() {
            let held: Vec<(u64, Vec<u8>)> = {
                let mut p = self
                    .world
                    .pair(me, dst)
                    .lock()
                    .map_err(|_| CommError::Poisoned)?;
                let mut h = std::mem::take(&mut p.held);
                h.sort_by_key(|&(at, _)| at);
                h
            };
            for (_, msg) in held {
                self.inner.send(dst, msg)?;
            }
        }
        Ok(())
    }
}

impl<C: Comm> Comm for ChaosComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: usize, msg: Vec<u8>) -> CommResult<()> {
        let me = self.inner.rank();
        let (idx, ready): (u64, Vec<(u64, Vec<u8>)>) = {
            let mut p = self
                .world
                .pair(me, to)
                .lock()
                .map_err(|_| CommError::Poisoned)?;
            let idx = p.sent;
            p.sent += 1;
            let now = p.sent;
            // release holds that this send overtakes
            let mut ready: Vec<(u64, Vec<u8>)> = Vec::new();
            p.held.retain_mut(|(at, m)| {
                if *at <= now {
                    ready.push((*at, std::mem::take(m)));
                    false
                } else {
                    true
                }
            });
            ready.sort_by_key(|&(at, _)| at);
            (idx, ready)
        };
        match self.world.plan.decide(me, to, idx) {
            FaultAction::Deliver => self.inner.send(to, msg)?,
            FaultAction::Drop => {
                self.world.drops.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Duplicate => {
                self.world.dups.fetch_add(1, Ordering::Relaxed);
                self.inner.send(to, msg.clone())?;
                self.inner.send(to, msg)?;
            }
            FaultAction::Delay(span) => {
                self.world.delays.fetch_add(1, Ordering::Relaxed);
                let mut p = self
                    .world
                    .pair(me, to)
                    .lock()
                    .map_err(|_| CommError::Poisoned)?;
                let release_at = p.sent + u64::from(span);
                p.held.push((release_at, msg));
            }
        }
        for (_, m) in ready {
            self.inner.send(to, m)?;
        }
        Ok(())
    }

    fn recv(&self, from: usize) -> CommResult<Vec<u8>> {
        self.inner.recv(from)
    }

    fn try_recv(&self, from: usize) -> CommResult<Option<Vec<u8>>> {
        self.inner.try_recv(from)
    }

    fn barrier(&self) -> CommResult<()> {
        // a barrier fences the round: nothing may stay held across it
        self.flush_held()?;
        self.inner.barrier()
    }

    fn on_step(&self, step: usize) -> CommResult<()> {
        let me = self.inner.rank();
        for s in &self.world.plan.stalls {
            if s.rank == me && s.step == step {
                self.world.stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(s.millis));
            }
        }
        for k in &self.world.plan.kills {
            if k.rank == me
                && k.step == step
                && !self.world.kill_fired[me].swap(true, Ordering::SeqCst)
            {
                self.world.kills.fetch_add(1, Ordering::Relaxed);
                self.inner.abort();
                return Err(CommError::Killed { rank: me });
            }
        }
        self.inner.on_step(step)
    }

    fn abort(&self) {
        self.inner.abort()
    }

    fn stats(&self) -> &CommStats {
        self.inner.stats()
    }

    fn pushback(&self, from: usize, msg: Vec<u8>) {
        // a pushback un-receives a frame already past the fault layer:
        // it is a local queue operation, never a new wire send, so no
        // fault decision applies
        self.inner.pushback(from, msg)
    }

    fn next_epoch(&self) -> u64 {
        self.inner.next_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::run_world;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::seeded(7).drops(100).dups(100).delays(100, 4);
        let again = FaultPlan::seeded(7).drops(100).dups(100).delays(100, 4);
        let other = FaultPlan::seeded(8).drops(100).dups(100).delays(100, 4);
        let mut same = 0usize;
        let mut diff_seed_diff = 0usize;
        let mut non_deliver = 0usize;
        for src in 0..4 {
            for dst in 0..4 {
                for idx in 0..200u64 {
                    let a = plan.decide(src, dst, idx);
                    assert_eq!(a, again.decide(src, dst, idx));
                    same += 1;
                    if a != other.decide(src, dst, idx) {
                        diff_seed_diff += 1;
                    }
                    if a != FaultAction::Deliver {
                        non_deliver += 1;
                    }
                }
            }
        }
        assert_eq!(same, 4 * 4 * 200);
        assert!(
            diff_seed_diff > 100,
            "seeds barely differ: {diff_seed_diff}"
        );
        // ~30% fault rate over 3200 messages
        assert!(
            (500..1500).contains(&non_deliver),
            "fault rate off: {non_deliver}/3200"
        );
    }

    #[test]
    fn explicit_actions_override_seeded_rates() {
        let plan = FaultPlan::seeded(1).action(0, 1, 3, FaultAction::Drop);
        assert_eq!(plan.decide(0, 1, 3), FaultAction::Drop);
        assert_eq!(plan.decide(0, 1, 2), FaultAction::Deliver);
        assert_eq!(plan.decide(1, 0, 3), FaultAction::Deliver);
    }

    #[test]
    fn parse_round_trips_the_cli_form() {
        let plan =
            FaultPlan::parse("seed=7,drop=30,dup=20,delay=25/4,kill=1@5,stall=2@3/50").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop_per_mille, 30);
        assert_eq!(plan.dup_per_mille, 20);
        assert_eq!(plan.delay_per_mille, 25);
        assert_eq!(plan.max_delay_span, 4);
        assert_eq!(plan.kills, vec![KillEvent { rank: 1, step: 5 }]);
        assert_eq!(
            plan.stalls,
            vec![StallEvent {
                rank: 2,
                step: 3,
                millis: 50
            }]
        );
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("drop=x").is_err());
        assert!(FaultPlan::parse("kill=3").is_err());
    }

    #[test]
    fn dropped_message_never_arrives_and_is_counted() {
        let world = ChaosWorld::new(FaultPlan::seeded(0).action(0, 1, 0, FaultAction::Drop), 2);
        let w = world.clone();
        let out = run_world(2, move |c| {
            let c = ChaosComm::new(c, w.clone());
            if c.rank() == 0 {
                c.send(1, vec![1]).unwrap(); // dropped
                c.send(1, vec![2]).unwrap(); // delivered
                Vec::new()
            } else {
                c.recv(0).unwrap()
            }
        });
        assert_eq!(out[1], vec![2], "first message silently gone");
        assert_eq!(world.injected_drops(), 1);
    }

    #[test]
    fn duplicated_message_arrives_twice() {
        let world = ChaosWorld::new(
            FaultPlan::seeded(0).action(0, 1, 0, FaultAction::Duplicate),
            2,
        );
        let w = world.clone();
        let out = run_world(2, move |c| {
            let c = ChaosComm::new(c, w.clone());
            if c.rank() == 0 {
                c.send(1, vec![9]).unwrap();
                Vec::new()
            } else {
                let a = c.recv(0).unwrap();
                let b = c.recv(0).unwrap();
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![9, 9]);
        assert_eq!(world.injected_dups(), 1);
    }

    #[test]
    fn delayed_message_is_overtaken_then_released() {
        let world = ChaosWorld::new(
            FaultPlan::seeded(0).action(0, 1, 0, FaultAction::Delay(2)),
            2,
        );
        let w = world.clone();
        let out = run_world(2, move |c| {
            let c = ChaosComm::new(c, w.clone());
            if c.rank() == 0 {
                c.send(1, vec![1]).unwrap(); // held (span 2)
                c.send(1, vec![2]).unwrap(); // overtakes
                c.send(1, vec![3]).unwrap(); // overtakes → releases [1]
                Vec::new()
            } else {
                (0..3).map(|_| c.recv(0).unwrap()[0]).collect()
            }
        });
        assert_eq!(out[1], vec![2, 3, 1], "reorder: later sends overtake");
        assert_eq!(world.injected_delays(), 1);
    }

    #[test]
    fn barrier_flushes_held_messages() {
        let world = ChaosWorld::new(
            FaultPlan::seeded(0).action(0, 1, 0, FaultAction::Delay(100)),
            2,
        );
        let w = world.clone();
        let out = run_world(2, move |c| {
            let c = ChaosComm::new(c, w.clone());
            if c.rank() == 0 {
                c.send(1, vec![5]).unwrap(); // held far beyond traffic
                c.barrier().unwrap(); // fence forces the flush
                Vec::new()
            } else {
                c.barrier().unwrap();
                c.recv(0).unwrap()
            }
        });
        assert_eq!(out[1], vec![5]);
    }

    #[test]
    fn kill_fires_once_and_collapses_the_world() {
        let world = ChaosWorld::new(FaultPlan::seeded(0).kill(1, 3), 2);
        let w = world.clone();
        let out = run_world(2, move |c| {
            let c = ChaosComm::new(c, w.clone());
            for step in 0..5 {
                if let Err(e) = c.on_step(step) {
                    return Err((step, e));
                }
                if c.barrier().is_err() {
                    return Ok(step);
                }
            }
            Ok(5)
        });
        assert_eq!(out[1], Err((3, CommError::Killed { rank: 1 })));
        // rank 0 saw the broken barrier at step 3, not a hang
        assert_eq!(out[0], Ok(3));
        assert_eq!(world.kills_fired(), 1);
        // the flag persists: a second world on the same ChaosWorld
        // replays without re-killing
        world.reset_pairs();
        let w2 = world.clone();
        let replay = run_world(2, move |c| {
            let c = ChaosComm::new(c, w2.clone());
            for step in 0..5 {
                c.on_step(step)?;
                c.barrier()?;
            }
            Ok::<_, CommError>(())
        });
        assert!(replay.iter().all(|r| r.is_ok()));
        assert_eq!(world.kills_fired(), 1);
    }

    #[test]
    fn stall_delays_but_preserves_results() {
        let world = ChaosWorld::new(FaultPlan::seeded(0).stall(0, 1, 30), 2);
        let w = world.clone();
        let t0 = std::time::Instant::now();
        let out = run_world(2, move |c| {
            let c = ChaosComm::new(c, w.clone());
            let mut got = Vec::new();
            for step in 0..3 {
                c.on_step(step).unwrap();
                if c.rank() == 0 {
                    c.send(1, vec![step as u8]).unwrap();
                } else {
                    got.push(c.recv(0).unwrap()[0]);
                }
                c.barrier().unwrap();
            }
            got
        });
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        assert_eq!(out[1], vec![0, 1, 2]);
        assert_eq!(world.stalls_fired(), 1);
    }
}
