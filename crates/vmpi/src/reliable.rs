//! The reliability sublayer: exactly-once, in-order delivery over a
//! lossy, duplicating, reordering transport.
//!
//! [`ReliableComm`] frames every message with a per-ordered-pair
//! sequence number and, on the receive side, restores the sender's
//! order:
//!
//! * **dedup** — a frame with a sequence number below the expected one
//!   has already been consumed (a duplicate); it is counted and
//!   discarded.
//! * **reorder** — a frame from the future is stashed in a per-source
//!   buffer until its turn comes.
//! * **retransmission** — every sent payload is journaled in the
//!   world-shared [`ReliableWorld`] *before* it touches the wire. A
//!   receive that exhausts its patience polls the journal: if the
//!   expected sequence number is journaled, the message was posted and
//!   lost in flight — the journal copy is consumed (a *retry*). The
//!   journal plays the role of MPI's sender-side retransmit queue; in
//!   an in-process world the receiver can read it directly.
//!
//! Retries back off exponentially and are bounded; exhausting them is
//! [`CommError::Timeout`]. Because journaling happens before the send,
//! "expected seq present in the journal" is ground truth for "the
//! message was posted" — which also makes the barrier-fenced
//! [`try_recv`](Comm::try_recv) drain of the sparse counts round
//! fault-tolerant: after the fence, a missing wire message with a
//! journaled expected seq *is* the dropped message, and an absent
//! journal entry *is* the zero.
//!
//! Determinism: the layer delivers exactly the sequence of payloads
//! the sender posted, in posting order, each exactly once — the
//! protocols above observe bit-for-bit the traffic of a clean run, so
//! the physics cannot tell the transport was lossy.

use crate::comm::{Comm, CommStats};
use crate::error::{take_u64, CommError, CommResult};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Journal depth per ordered pair: how many recent sends stay
/// recoverable. Collective rounds are fenced, so in-flight depth per
/// pair is tiny; this bound only guards memory under pathological
/// traffic.
const JOURNAL_DEPTH: usize = 1024;

/// One pair's send journal: recent `(seq, payload)` entries, newest
/// last, available for retransmission until evicted by depth.
type Journal = Mutex<VecDeque<(u64, Arc<Vec<u8>>)>>;

/// World-shared reliability state: the per-pair send journals and the
/// fault counters. Shared by every rank's [`ReliableComm`] and kept
/// across recovery attempts (counters are cumulative run totals;
/// journals are [`reset`](ReliableWorld::reset) because a fresh world
/// restarts its sequence numbers).
#[derive(Debug)]
pub struct ReliableWorld {
    n: usize,
    /// `journals[src * n + dst]`: recent `(seq, payload)` sends.
    journals: Vec<Journal>,
    retries: AtomicU64,
    dedup_dropped: AtomicU64,
}

impl ReliableWorld {
    /// Reliability state for an `n`-rank world.
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(ReliableWorld {
            n,
            journals: (0..n * n).map(|_| Mutex::new(VecDeque::new())).collect(),
            retries: AtomicU64::new(0),
            dedup_dropped: AtomicU64::new(0),
        })
    }

    fn journal(&self, src: usize, dst: usize) -> &Journal {
        &self.journals[src * self.n + dst]
    }

    fn push(&self, src: usize, dst: usize, seq: u64, payload: Arc<Vec<u8>>) -> CommResult<()> {
        let mut j = self
            .journal(src, dst)
            .lock()
            .map_err(|_| CommError::Poisoned)?;
        j.push_back((seq, payload));
        while j.len() > JOURNAL_DEPTH {
            j.pop_front();
        }
        Ok(())
    }

    fn lookup(&self, src: usize, dst: usize, seq: u64) -> CommResult<Option<Arc<Vec<u8>>>> {
        let j = self
            .journal(src, dst)
            .lock()
            .map_err(|_| CommError::Poisoned)?;
        Ok(j.iter().find(|&&(s, _)| s == seq).map(|(_, p)| p.clone()))
    }

    /// Clear every journal for a fresh world (recovery replay restarts
    /// per-pair sequence numbers at zero). Counters persist: they are
    /// cumulative totals for the whole run including its recoveries.
    pub fn reset(&self) {
        for j in &self.journals {
            if let Ok(mut j) = j.lock() {
                j.clear();
            }
        }
    }

    /// Receives recovered from the journal after the wire lost them.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Duplicate frames discarded on the receive side.
    pub fn dedup_dropped(&self) -> u64 {
        self.dedup_dropped.load(Ordering::Relaxed)
    }
}

/// A [`Comm`] that adds sequence numbers, dedup, reordering and
/// journal-based retransmission on top of any transport (normally a
/// [`ChaosComm`](crate::ChaosComm)).
///
/// One endpoint serves one rank thread (interior state is `Cell`-
/// based, matching the one-thread-per-rank usage of every transport in
/// this crate).
pub struct ReliableComm<C: Comm> {
    inner: C,
    world: Arc<ReliableWorld>,
    /// Next sequence number to stamp, per destination.
    send_seq: Vec<Cell<u64>>,
    /// Next sequence number expected, per source.
    expect_seq: Vec<Cell<u64>>,
    /// Out-of-order frames parked until their turn, per source.
    reorder: Vec<RefCell<BTreeMap<u64, Vec<u8>>>>,
    /// Decoded payloads returned by [`Comm::pushback`], per source,
    /// redelivered ahead of the wire. These already passed the seq
    /// machinery once, so redelivery must not re-enter it.
    unreceived: Vec<RefCell<VecDeque<Vec<u8>>>>,
    /// How long to poll the wire before consulting the journal.
    patience: Duration,
    /// Bounded retry budget for one receive.
    max_retries: u32,
}

impl<C: Comm> ReliableComm<C> {
    /// Wrap `inner` with reliability state from `world`.
    pub fn new(inner: C, world: Arc<ReliableWorld>) -> Self {
        assert_eq!(
            world.n,
            inner.size(),
            "reliable world sized for another world"
        );
        let n = inner.size();
        ReliableComm {
            inner,
            world,
            send_seq: (0..n).map(|_| Cell::new(0)).collect(),
            expect_seq: (0..n).map(|_| Cell::new(0)).collect(),
            reorder: (0..n).map(|_| RefCell::new(BTreeMap::new())).collect(),
            unreceived: (0..n).map(|_| RefCell::new(VecDeque::new())).collect(),
            patience: Duration::from_millis(1),
            max_retries: 20,
        }
    }

    /// Override how long a receive polls the wire before each journal
    /// consultation (default 1 ms).
    pub fn with_patience(mut self, patience: Duration) -> Self {
        self.patience = patience;
        self
    }

    /// Override the bounded retry budget per receive (default 20).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// The shared reliability state (for counters).
    pub fn world(&self) -> &Arc<ReliableWorld> {
        &self.world
    }

    /// Classify one wire frame against `expect` for `from`: consume,
    /// dedup-discard, or park. Returns the payload if it was the
    /// expected frame.
    fn absorb(&self, from: usize, frame: Vec<u8>) -> CommResult<Option<Vec<u8>>> {
        let mut cur = frame.as_slice();
        let seq = take_u64(&mut cur, "reliable seq header")?;
        let expect = self.expect_seq[from].get();
        if seq == expect {
            self.expect_seq[from].set(expect + 1);
            Ok(Some(cur.to_vec()))
        } else if seq < expect {
            self.world.dedup_dropped.fetch_add(1, Ordering::Relaxed);
            Ok(None)
        } else {
            self.reorder[from].borrow_mut().insert(seq, cur.to_vec());
            Ok(None)
        }
    }

    /// The expected frame, if already parked in the reorder buffer.
    fn take_parked(&self, from: usize) -> Option<Vec<u8>> {
        let expect = self.expect_seq[from].get();
        let got = self.reorder[from].borrow_mut().remove(&expect);
        if got.is_some() {
            self.expect_seq[from].set(expect + 1);
        }
        got
    }

    /// The expected frame, if the journal proves it was posted.
    fn take_journaled(&self, from: usize) -> CommResult<Option<Vec<u8>>> {
        let expect = self.expect_seq[from].get();
        if let Some(payload) = self.world.lookup(from, self.inner.rank(), expect)? {
            self.world.retries.fetch_add(1, Ordering::Relaxed);
            self.expect_seq[from].set(expect + 1);
            Ok(Some(payload.as_ref().clone()))
        } else {
            Ok(None)
        }
    }
}

impl<C: Comm> Comm for ReliableComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: usize, msg: Vec<u8>) -> CommResult<()> {
        let seq = self.send_seq[to].get();
        self.send_seq[to].set(seq + 1);
        let mut frame = Vec::with_capacity(8 + msg.len());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&msg);
        // journal BEFORE the wire: once the journal holds seq, the
        // message is recoverable no matter what the transport does
        self.world.push(self.inner.rank(), to, seq, Arc::new(msg))?;
        self.inner.send(to, frame)
    }

    fn recv(&self, from: usize) -> CommResult<Vec<u8>> {
        if let Some(m) = self.unreceived[from].borrow_mut().pop_front() {
            return Ok(m);
        }
        if let Some(m) = self.take_parked(from) {
            return Ok(m);
        }
        let mut attempt = 0u32;
        let mut patience = self.patience;
        let mut deadline = Instant::now() + patience;
        loop {
            match self.inner.try_recv(from)? {
                Some(frame) => {
                    if let Some(m) = self.absorb(from, frame)? {
                        return Ok(m);
                    }
                    // progress was made (dedup or park) — keep polling
                    continue;
                }
                None => {
                    if Instant::now() >= deadline {
                        if let Some(m) = self.take_journaled(from)? {
                            return Ok(m);
                        }
                        attempt += 1;
                        if attempt > self.max_retries {
                            return Err(CommError::Timeout {
                                from,
                                seq: self.expect_seq[from].get(),
                            });
                        }
                        // exponential backoff, bounded per attempt
                        patience = (patience * 2).min(Duration::from_millis(100));
                        deadline = Instant::now() + patience;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    fn try_recv(&self, from: usize) -> CommResult<Option<Vec<u8>>> {
        if let Some(m) = self.unreceived[from].borrow_mut().pop_front() {
            return Ok(Some(m));
        }
        if let Some(m) = self.take_parked(from) {
            return Ok(Some(m));
        }
        // drain whatever the wire already holds
        while let Some(frame) = self.inner.try_recv(from)? {
            if let Some(m) = self.absorb(from, frame)? {
                return Ok(Some(m));
            }
            if let Some(m) = self.take_parked(from) {
                return Ok(Some(m));
            }
        }
        // wire empty: callers fence with barriers (sparse counts
        // round), so a journaled expected seq is a posted-and-lost
        // message, and no journal entry is a genuine "no message"
        self.take_journaled(from)
    }

    fn barrier(&self) -> CommResult<()> {
        self.inner.barrier()
    }

    fn on_step(&self, step: usize) -> CommResult<()> {
        self.inner.on_step(step)
    }

    fn abort(&self) {
        self.inner.abort()
    }

    fn stats(&self) -> &CommStats {
        self.inner.stats()
    }

    fn pushback(&self, from: usize, msg: Vec<u8>) {
        // `msg` is a decoded payload that already consumed its seq;
        // park it locally instead of delegating, or the inner layer
        // would try to re-parse a seq header that is no longer there
        self.unreceived[from].borrow_mut().push_front(msg);
    }

    fn next_epoch(&self) -> u64 {
        self.inner.next_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosComm, ChaosWorld, FaultAction, FaultPlan};
    use crate::exchange::{exchange, Strategy};
    use crate::threaded::run_world;

    fn lossy_pair_world(plan: FaultPlan) -> (Arc<ChaosWorld>, Arc<ReliableWorld>) {
        (ChaosWorld::new(plan, 2), ReliableWorld::new(2))
    }

    #[test]
    fn dropped_message_is_recovered_from_the_journal() {
        let (cw, rw) = lossy_pair_world(FaultPlan::seeded(0).action(0, 1, 0, FaultAction::Drop));
        let (cw2, rw2) = (cw.clone(), rw.clone());
        let out = run_world(2, move |c| {
            let c = ReliableComm::new(ChaosComm::new(c, cw2.clone()), rw2.clone())
                .with_patience(Duration::from_millis(1));
            if c.rank() == 0 {
                c.send(1, vec![10]).unwrap();
                c.send(1, vec![20]).unwrap();
                c.barrier().unwrap();
                Vec::new()
            } else {
                let a = c.recv(0).unwrap();
                let b = c.recv(0).unwrap();
                c.barrier().unwrap();
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![10, 20], "drop is invisible above the layer");
        assert_eq!(cw.injected_drops(), 1);
        assert!(rw.retries() >= 1, "recovery must go through the journal");
    }

    #[test]
    fn duplicate_is_deduped() {
        let (cw, rw) =
            lossy_pair_world(FaultPlan::seeded(0).action(0, 1, 0, FaultAction::Duplicate));
        let (cw2, rw2) = (cw.clone(), rw.clone());
        let out = run_world(2, move |c| {
            let c = ReliableComm::new(ChaosComm::new(c, cw2.clone()), rw2.clone());
            if c.rank() == 0 {
                c.send(1, vec![1]).unwrap();
                c.send(1, vec![2]).unwrap();
                c.barrier().unwrap();
                Vec::new()
            } else {
                let a = c.recv(0).unwrap();
                let b = c.recv(0).unwrap();
                // nothing further may be queued after the barrier
                c.barrier().unwrap();
                assert_eq!(c.try_recv(0).unwrap(), None);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1, 2]);
        assert_eq!(cw.injected_dups(), 1);
        assert_eq!(rw.dedup_dropped(), 1, "the extra copy is discarded");
    }

    #[test]
    fn reordered_messages_are_resequenced() {
        // delay msg 0 past msgs 1 and 2: the wire order is 1,2,0 but
        // the layer must deliver 0,1,2
        let (cw, rw) =
            lossy_pair_world(FaultPlan::seeded(0).action(0, 1, 0, FaultAction::Delay(2)));
        let (cw2, rw2) = (cw.clone(), rw.clone());
        let out = run_world(2, move |c| {
            let c = ReliableComm::new(ChaosComm::new(c, cw2.clone()), rw2.clone());
            if c.rank() == 0 {
                for v in [5u8, 6, 7] {
                    c.send(1, vec![v]).unwrap();
                }
                c.barrier().unwrap();
                Vec::new()
            } else {
                let got: Vec<u8> = (0..3).map(|_| c.recv(0).unwrap()[0]).collect();
                c.barrier().unwrap();
                got
            }
        });
        assert_eq!(out[1], vec![5, 6, 7], "sender order restored");
        assert_eq!(cw.injected_delays(), 1);
    }

    #[test]
    fn fenced_try_recv_sees_journal_truth() {
        // the single counts-style message is dropped; after the fence,
        // try_recv must recover it from the journal — and a pair that
        // posted nothing must stay None
        let (cw, rw) = lossy_pair_world(FaultPlan::seeded(0).action(0, 1, 0, FaultAction::Drop));
        let (cw2, rw2) = (cw.clone(), rw.clone());
        let out = run_world(2, move |c| {
            let c = ReliableComm::new(ChaosComm::new(c, cw2.clone()), rw2.clone());
            if c.rank() == 0 {
                c.send(1, vec![42]).unwrap();
            }
            c.barrier().unwrap();
            let got = if c.rank() == 1 {
                let m = c.try_recv(0).unwrap();
                assert_eq!(c.try_recv(0).unwrap(), None, "only one message posted");
                m
            } else {
                // rank 1 posted nothing: genuine zero
                assert_eq!(c.try_recv(1).unwrap(), None);
                None
            };
            c.barrier().unwrap();
            got
        });
        assert_eq!(out[1].as_deref(), Some(&[42u8][..]));
        assert!(rw.retries() >= 1);
    }

    #[test]
    fn missing_message_times_out_with_bounded_retries() {
        let rw = ReliableWorld::new(2);
        let rw2 = rw.clone();
        let out = run_world(2, move |c| {
            let c = ReliableComm::new(c, rw2.clone())
                .with_patience(Duration::from_micros(200))
                .with_max_retries(3);
            if c.rank() == 1 {
                let r = c.recv(0); // never sent, never journaled
                c.barrier().unwrap();
                r
            } else {
                c.barrier().unwrap();
                Ok(Vec::new())
            }
        });
        assert_eq!(out[1], Err(CommError::Timeout { from: 0, seq: 0 }));
    }

    #[test]
    fn short_frame_is_malformed() {
        let rw = ReliableWorld::new(2);
        let rw2 = rw.clone();
        let out = run_world(2, move |c| {
            if c.rank() == 0 {
                // bypass the reliable layer: a 3-byte frame cannot
                // carry the 8-byte seq header
                c.send(1, vec![1, 2, 3]).unwrap();
                Ok(Vec::new())
            } else {
                ReliableComm::new(c, rw2.clone()).recv(0)
            }
        });
        assert_eq!(
            out[1],
            Err(CommError::Malformed {
                what: "reliable seq header"
            })
        );
    }

    #[test]
    fn poisoned_journal_reports_poisoned() {
        let rw = ReliableWorld::new(2);
        // poison the 0→1 journal lock by panicking while holding it
        {
            let rw = rw.clone();
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _guard = rw.journal(0, 1).lock().unwrap();
                panic!("poison the lock");
            }));
        }
        assert_eq!(rw.lookup(0, 1, 0), Err(CommError::Poisoned));
        assert_eq!(
            rw.push(0, 1, 0, Arc::new(Vec::new())),
            Err(CommError::Poisoned)
        );
        // other pairs are unaffected
        assert_eq!(rw.lookup(1, 0, 0), Ok(None));
    }

    #[test]
    fn every_strategy_survives_a_seeded_lossy_transport() {
        // heavy seeded chaos under full all-to-all payload traffic:
        // the delivered buffers must equal the clean run's exactly
        fn payload(src: usize, dst: usize) -> Vec<u8> {
            vec![(src * 16 + dst) as u8; (src + 1) * (dst + 2)]
        }
        for strategy in Strategy::CONCRETE {
            for n in [2usize, 3, 5] {
                // seeded rates plus one pinned duplicate so even the
                // low-traffic cases (CC at n=2) provably inject
                let plan = FaultPlan::seeded(0xC0FFEE)
                    .drops(60)
                    .dups(60)
                    .delays(60, 3)
                    .action(1, 0, 0, FaultAction::Duplicate);
                let cw = ChaosWorld::new(plan, n);
                let rw = ReliableWorld::new(n);
                let (cw2, rw2) = (cw.clone(), rw.clone());
                let results = run_world(n, move |c| {
                    let c = ReliableComm::new(ChaosComm::new(c, cw2.clone()), rw2.clone());
                    let outgoing: Vec<Vec<u8>> =
                        (0..c.size()).map(|dst| payload(c.rank(), dst)).collect();
                    let inc = exchange(&c, strategy, outgoing).unwrap();
                    c.barrier().unwrap();
                    inc
                });
                for (dst, incoming) in results.iter().enumerate() {
                    for (src, buf) in incoming.iter().enumerate() {
                        assert_eq!(buf, &payload(src, dst), "{strategy:?} n={n} {src}->{dst}");
                    }
                }
                assert!(
                    cw.injected_total() > 0,
                    "{strategy:?} n={n}: plan injected nothing — test is vacuous"
                );
            }
        }
    }
}
