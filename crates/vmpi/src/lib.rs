//! Virtual MPI: in-process message passing with the paper's two
//! particle-exchange strategies (§IV-B).
//!
//! Real MPI on a real cluster is replaced by (a) a threaded backend
//! where every rank is an OS thread ([`threaded`]) used for functional
//! parallel runs, and (b) traffic prediction ([`exchange::traffic`])
//! that feeds the analytic cluster model in the `coupled` crate for
//! experiments at paper scale (hundreds to thousands of ranks).

#![deny(unsafe_code)]

pub mod collectives;
pub mod comm;
pub mod exchange;
pub mod threaded;

pub use comm::{Comm, CommStats};
pub use exchange::{exchange, exchange_into, traffic, Strategy, TrafficSummary};
pub use threaded::{run_world, ThreadComm};
