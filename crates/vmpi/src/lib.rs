//! Virtual MPI: in-process message passing with the paper's two
//! particle-exchange strategies (§IV-B).
//!
//! Real MPI on a real cluster is replaced by (a) a threaded backend
//! where every rank is an OS thread ([`threaded`]) used for functional
//! parallel runs, and (b) traffic prediction ([`exchange::traffic`])
//! that feeds the analytic cluster model in the `coupled` crate for
//! experiments at paper scale (hundreds to thousands of ranks).
//!
//! The whole surface is fallible ([`CommError`]) and chaos-testable:
//! [`chaos`] injects deterministic faults (drop / duplicate /
//! delay-reorder / stall / kill) under any transport, and [`reliable`]
//! is the sequencing/dedup/retransmission sublayer that makes the
//! protocols above run bit-for-bit identically over the lossy wire.

#![deny(unsafe_code)]

pub mod chaos;
pub mod collectives;
pub mod comm;
pub mod error;
pub mod exchange;
pub mod reliable;
pub mod threaded;

pub use chaos::{ChaosComm, ChaosWorld, FaultAction, FaultPlan, KillEvent, StallEvent};
pub use comm::{Comm, CommStats, RecvHandle, SendHandle};
pub use error::{CommError, CommResult};
pub use exchange::{
    exchange, exchange_hier_into, exchange_hier_overlapped, exchange_into, traffic, traffic_hier,
    NodeMap, Strategy, TrafficSummary,
};
pub use reliable::{ReliableComm, ReliableWorld};
pub use threaded::{run_world, ThreadComm};
