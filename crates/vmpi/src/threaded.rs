//! Threaded world: each rank is an OS thread, transport is a full
//! mesh of crossbeam channels.
//!
//! This is the *functional* backend used for real parallel runs
//! (examples, validation, threaded benches). Large-scale experiments
//! (hundreds–thousands of ranks) use the sequential cluster driver in
//! the `coupled` crate instead, with identical exchange semantics.

use crate::comm::{Comm, CommStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// Per-rank endpoint of a threaded world.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    /// `to[j]` sends to rank `j` (our dedicated (i→j) channel).
    to: Vec<Sender<Vec<u8>>>,
    /// `from[j]` receives messages rank `j` sent us.
    from: Vec<Receiver<Vec<u8>>>,
    barrier: Arc<Barrier>,
    stats: Arc<CommStats>,
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, msg: Vec<u8>) {
        self.stats.record(msg.len());
        self.to[to].send(msg).expect("receiver hung up");
    }

    fn recv(&self, from: usize) -> Vec<u8> {
        self.from[from].recv().expect("sender hung up")
    }

    fn try_recv(&self, from: usize) -> Option<Vec<u8>> {
        self.from[from].try_recv()
    }

    fn barrier(&self) {
        self.barrier.wait();
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }
}

/// Run `f(comm)` on `n` rank threads and collect the per-rank return
/// values in rank order. Panics in any rank propagate.
pub fn run_world<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ThreadComm) -> R + Sync,
{
    assert!(n >= 1);
    let stats = CommStats::new();
    let barrier = Arc::new(Barrier::new(n));

    // channels[i][j] = channel from rank i to rank j
    let mut senders: Vec<Vec<Sender<Vec<u8>>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Vec<Option<Receiver<Vec<u8>>>>> = vec![Vec::new(); n];
    for recv_row in receivers.iter_mut() {
        recv_row.resize_with(n, || None);
    }
    for i in 0..n {
        let mut row = Vec::with_capacity(n);
        for recv_row in receivers.iter_mut() {
            let (s, r) = unbounded();
            row.push(s);
            recv_row[i] = Some(r); // rank j receives from i
        }
        senders.push(row);
    }

    let mut comms: Vec<ThreadComm> = Vec::with_capacity(n);
    for (rank, (to, from_opts)) in senders.into_iter().zip(receivers).enumerate() {
        let from = from_opts.into_iter().map(|r| r.unwrap()).collect();
        comms.push(ThreadComm {
            rank,
            size: n,
            to,
            from,
            barrier: barrier.clone(),
            stats: stats.clone(),
        });
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for comm in comms {
            let f = &f;
            handles.push(scope.spawn(move || f(comm)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let ids = run_world(4, |c| (c.rank(), c.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_ring() {
        // each rank sends its id to the next rank and reports what it got
        let got = run_world(5, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, vec![c.rank() as u8]);
            let m = c.recv(prev);
            m[0] as usize
        });
        assert_eq!(got, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn source_matched_receive_ordering() {
        // rank 0 receives from 2 then 1; messages must be matched by
        // source regardless of arrival order
        let got = run_world(3, |c| match c.rank() {
            0 => {
                let a = c.recv(2);
                let b = c.recv(1);
                (a[0], b[0])
            }
            r => {
                c.send(0, vec![r as u8]);
                (0, 0)
            }
        });
        assert_eq!(got[0], (2, 1));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, vec![0u8; 10]);
            } else {
                let _ = c.recv(0);
            }
            c.barrier();
            (c.stats().transactions(), c.stats().bytes())
        });
        assert_eq!(out[0], (1, 10));
        assert_eq!(out[1], (1, 10));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_world(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // after the barrier, every rank must see all increments
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }
}
