//! Threaded world: each rank is an OS thread, transport is a full
//! mesh of crossbeam channels.
//!
//! This is the *functional* backend used for real parallel runs
//! (examples, validation, threaded benches). Large-scale experiments
//! (hundreds–thousands of ranks) use the sequential cluster driver in
//! the `coupled` crate instead, with identical exchange semantics.
//!
//! Fault tolerance: the world carries a control plane — a per-rank
//! dead flag plus a breakable fault barrier — so a rank that
//! latches an unrecoverable fault can [`Comm::abort`] and the rest of
//! the world fails *promptly* with [`CommError::PeerDead`] instead of
//! hanging in a receive or a barrier a dead rank can never reach.
//! Receives are bounded by a configurable timeout
//! ([`ThreadComm::set_recv_timeout`]) as the backstop for genuinely
//! stuck peers.

use crate::comm::{Comm, CommStats};
use crate::error::{CommError, CommResult};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default bound on a blocking receive. Generous: the clean path never
/// waits anywhere near this long, and fault tests shorten it.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Granularity of the receive poll loop: how often a blocked receive
/// re-checks the control plane (peer death) and its deadline.
const POLL_SLICE: Duration = Duration::from_millis(1);

/// Shared per-world control plane: which ranks are dead.
#[derive(Debug)]
pub(crate) struct WorldControl {
    dead: Vec<AtomicBool>,
}

impl WorldControl {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(WorldControl {
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    fn mark_dead(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::SeqCst);
    }

    fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }
}

/// A breakable barrier: like [`std::sync::Barrier`], but a rank that
/// dies can break it, waking every waiter with an error — a dead rank
/// never arrives, so waiting for it would hang the world forever.
#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
    /// `Some(rank)` once broken by `rank`'s death.
    broken_by: Option<usize>,
}

#[derive(Debug)]
pub(crate) struct FaultBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl FaultBarrier {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(FaultBarrier {
            n,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                broken_by: None,
            }),
            cv: Condvar::new(),
        })
    }

    fn wait(&self) -> CommResult<()> {
        let mut st = self.state.lock().map_err(|_| CommError::Poisoned)?;
        if let Some(peer) = st.broken_by {
            return Err(CommError::PeerDead { peer });
        }
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.n {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        while st.generation == gen && st.broken_by.is_none() {
            st = self.cv.wait(st).map_err(|_| CommError::Poisoned)?;
        }
        // judge by generation first: if our round completed, a break
        // that happened *afterwards* belongs to a later round
        if st.generation != gen {
            return Ok(());
        }
        match st.broken_by {
            Some(peer) => Err(CommError::PeerDead { peer }),
            None => Ok(()),
        }
    }

    fn break_all(&self, by: usize) {
        if let Ok(mut st) = self.state.lock() {
            if st.broken_by.is_none() {
                st.broken_by = Some(by);
            }
        }
        self.cv.notify_all();
    }
}

/// Per-rank endpoint of a threaded world.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    /// `to[j]` sends to rank `j` (our dedicated (i→j) channel).
    to: Vec<Sender<Vec<u8>>>,
    /// `from[j]` receives messages rank `j` sent us.
    from: Vec<Receiver<Vec<u8>>>,
    barrier: Arc<FaultBarrier>,
    control: Arc<WorldControl>,
    stats: Arc<CommStats>,
    recv_timeout: Duration,
    /// Per-source unexpected-message queue ([`Comm::pushback`]):
    /// consulted *before* the channel, so a parked frame is re-matched
    /// first (front = oldest). Endpoint-local, hence `RefCell`.
    parked: Vec<RefCell<VecDeque<Vec<u8>>>>,
    /// Messages delivered per source so far — the per-pair sequence
    /// ordinal a stalled receive reports in [`CommError::Timeout`].
    recvd: Vec<Cell<u64>>,
    /// Collective-epoch counter ([`Comm::next_epoch`]). Endpoint
    /// state, *not* [`CommStats`]: the stats block is shared by the
    /// whole world, while epochs advance per rank.
    epoch: Cell<u64>,
}

impl ThreadComm {
    /// Bound every blocking receive on this endpoint by `timeout`
    /// (default [`DEFAULT_RECV_TIMEOUT`]). Past the bound, `recv`
    /// returns [`CommError::Timeout`] instead of blocking forever.
    pub fn set_recv_timeout(&mut self, timeout: Duration) {
        self.recv_timeout = timeout;
    }

    fn check_alive(&self, peer: usize) -> CommResult<()> {
        if self.control.is_dead(self.rank) {
            return Err(CommError::Killed { rank: self.rank });
        }
        if self.control.is_dead(peer) {
            return Err(CommError::PeerDead { peer });
        }
        Ok(())
    }

    /// Pop the oldest parked (pushed-back) message from `from`, if any,
    /// bumping the delivery ordinal.
    fn take_parked(&self, from: usize) -> Option<Vec<u8>> {
        let msg = self.parked[from].borrow_mut().pop_front();
        if msg.is_some() {
            self.recvd[from].set(self.recvd[from].get() + 1);
        }
        msg
    }

    /// Record a channel delivery from `from`.
    fn note_delivery(&self, from: usize) {
        self.recvd[from].set(self.recvd[from].get() + 1);
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, to: usize, msg: Vec<u8>) -> CommResult<()> {
        self.check_alive(to)?;
        self.stats.record(msg.len());
        self.to[to]
            .send(msg)
            .map_err(|_| CommError::PeerDead { peer: to })
    }

    fn recv(&self, from: usize) -> CommResult<Vec<u8>> {
        if let Some(m) = self.take_parked(from) {
            return Ok(m);
        }
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            // a queued message wins even over a freshly-dead peer: it
            // was sent while the peer was alive
            match self.from[from].try_recv() {
                Ok(m) => {
                    self.note_delivery(from);
                    return Ok(m);
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => return Err(CommError::PeerDead { peer: from }),
            }
            self.check_alive(from)?;
            if Instant::now() >= deadline {
                return Err(CommError::Timeout {
                    from,
                    seq: self.recvd[from].get(),
                });
            }
            match self.from[from].recv_timeout(POLL_SLICE) {
                Ok(m) => {
                    self.note_delivery(from);
                    return Ok(m);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerDead { peer: from })
                }
            }
        }
    }

    fn try_recv(&self, from: usize) -> CommResult<Option<Vec<u8>>> {
        if let Some(m) = self.take_parked(from) {
            return Ok(Some(m));
        }
        match self.from[from].try_recv() {
            Ok(m) => {
                self.note_delivery(from);
                Ok(Some(m))
            }
            Err(TryRecvError::Empty) => {
                if self.control.is_dead(from) {
                    Err(CommError::PeerDead { peer: from })
                } else {
                    Ok(None)
                }
            }
            // normal exit of the peer thread with nothing queued: for
            // the fenced sparse-counts drain this *is* the zero
            Err(TryRecvError::Disconnected) => {
                if self.control.is_dead(from) {
                    Err(CommError::PeerDead { peer: from })
                } else {
                    Ok(None)
                }
            }
        }
    }

    fn pushback(&self, from: usize, msg: Vec<u8>) {
        // the message goes back to the *front* of the matched queue,
        // and its delivery is retracted from the ordinal
        self.parked[from].borrow_mut().push_front(msg);
        let n = self.recvd[from].get();
        self.recvd[from].set(n.saturating_sub(1));
    }

    fn next_epoch(&self) -> u64 {
        let e = self.epoch.get();
        self.epoch.set(e.wrapping_add(1));
        e
    }

    fn barrier(&self) -> CommResult<()> {
        if self.control.is_dead(self.rank) {
            return Err(CommError::Killed { rank: self.rank });
        }
        self.barrier.wait()
    }

    fn abort(&self) {
        self.control.mark_dead(self.rank);
        self.barrier.break_all(self.rank);
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }
}

/// Run `f(comm)` on `n` rank threads and collect the per-rank return
/// values in rank order. Panics in any rank propagate (communication
/// *faults* do not panic — they surface as [`CommError`] values from
/// the comm operations, which `f` is free to return).
pub fn run_world<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(ThreadComm) -> R + Sync,
{
    assert!(n >= 1);
    let stats = CommStats::new();
    let barrier = FaultBarrier::new(n);
    let control = WorldControl::new(n);

    // channels[i][j] = channel from rank i to rank j
    let mut senders: Vec<Vec<Sender<Vec<u8>>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Vec<Option<Receiver<Vec<u8>>>>> = vec![Vec::new(); n];
    for recv_row in receivers.iter_mut() {
        recv_row.resize_with(n, || None);
    }
    for i in 0..n {
        let mut row = Vec::with_capacity(n);
        for recv_row in receivers.iter_mut() {
            let (s, r) = unbounded();
            row.push(s);
            recv_row[i] = Some(r); // rank j receives from i
        }
        senders.push(row);
    }

    let mut comms: Vec<ThreadComm> = Vec::with_capacity(n);
    for (rank, (to, from_opts)) in senders.into_iter().zip(receivers).enumerate() {
        let from: Vec<_> = from_opts.into_iter().flatten().collect();
        debug_assert_eq!(from.len(), n);
        comms.push(ThreadComm {
            rank,
            size: n,
            to,
            from,
            barrier: barrier.clone(),
            control: control.clone(),
            stats: stats.clone(),
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            parked: (0..n).map(|_| RefCell::new(VecDeque::new())).collect(),
            recvd: (0..n).map(|_| Cell::new(0)).collect(),
            epoch: Cell::new(0),
        });
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for comm in comms {
            let f = &f;
            handles.push(scope.spawn(move || f(comm)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let ids = run_world(4, |c| (c.rank(), c.size()));
        assert_eq!(ids, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_ring() {
        // each rank sends its id to the next rank and reports what it got
        let got = run_world(5, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, vec![c.rank() as u8]).unwrap();
            let m = c.recv(prev).unwrap();
            m[0] as usize
        });
        assert_eq!(got, vec![4, 0, 1, 2, 3]);
    }

    #[test]
    fn source_matched_receive_ordering() {
        // rank 0 receives from 2 then 1; messages must be matched by
        // source regardless of arrival order
        let got = run_world(3, |c| match c.rank() {
            0 => {
                let a = c.recv(2).unwrap();
                let b = c.recv(1).unwrap();
                (a[0], b[0])
            }
            r => {
                c.send(0, vec![r as u8]).unwrap();
                (0, 0)
            }
        });
        assert_eq!(got[0], (2, 1));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, vec![0u8; 10]).unwrap();
            } else {
                let _ = c.recv(0).unwrap();
            }
            c.barrier().unwrap();
            (c.stats().transactions(), c.stats().bytes())
        });
        assert_eq!(out[0], (1, 10));
        assert_eq!(out[1], (1, 10));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_world(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier().unwrap();
            // after the barrier, every rank must see all increments
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn queued_messages_survive_peer_exit() {
        // rank 0 sends then exits immediately; rank 1 must still get
        // the message, and only *then* see the hangup
        let got = run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, vec![7]).unwrap();
                Ok(Vec::new())
            } else {
                std::thread::sleep(Duration::from_millis(20));
                c.recv(0)
            }
        });
        assert_eq!(got[1].as_deref().unwrap(), &[7]);
    }

    #[test]
    fn recv_from_exited_peer_is_peer_dead() {
        let got = run_world(2, |c| {
            if c.rank() == 0 {
                Ok(Vec::new()) // exit without sending
            } else {
                c.recv(0)
            }
        });
        assert_eq!(got[1], Err(CommError::PeerDead { peer: 0 }));
    }

    #[test]
    fn recv_times_out_without_sender() {
        let got = run_world(2, |mut c| {
            c.set_recv_timeout(Duration::from_millis(10));
            if c.rank() == 1 {
                let r = c.recv(0);
                c.barrier().unwrap(); // release rank 0
                r
            } else {
                c.barrier().unwrap(); // stay alive until rank 1 timed out
                Ok(Vec::new())
            }
        });
        assert_eq!(got[1], Err(CommError::Timeout { from: 0, seq: 0 }));
    }

    #[test]
    fn timeout_reports_the_pending_sequence() {
        // two messages delivered, then a stall: the timeout must name
        // the *third* (seq 2) as pending
        let got = run_world(2, |mut c| {
            c.set_recv_timeout(Duration::from_millis(10));
            if c.rank() == 1 {
                let a = c.recv(0);
                let b = c.recv(0);
                let stalled = c.recv(0);
                c.barrier().unwrap();
                (a.is_ok() && b.is_ok(), stalled)
            } else {
                c.send(1, vec![1]).unwrap();
                c.send(1, vec![2]).unwrap();
                c.barrier().unwrap();
                (true, Ok(Vec::new()))
            }
        });
        assert!(got[1].0);
        assert_eq!(got[1].1, Err(CommError::Timeout { from: 0, seq: 2 }));
    }

    #[test]
    fn isend_irecv_roundtrip_with_poll_and_wait() {
        let got = run_world(2, |c| {
            if c.rank() == 0 {
                let h1 = c.isend(1, vec![10]).unwrap();
                let h2 = c.isend(1, vec![20]).unwrap();
                c.wait_send(h1).unwrap();
                c.wait_send(h2).unwrap();
                (0, 0)
            } else {
                // poll the first, block on the second
                let mut h1 = c.irecv(0);
                while !c.test_recv(&mut h1).unwrap() {
                    std::thread::yield_now();
                }
                assert!(h1.ready());
                let a = c.wait_recv(h1).unwrap();
                let b = c.wait_recv(c.irecv(0)).unwrap();
                (a[0], b[0])
            }
        });
        assert_eq!(got[1], (10, 20));
    }

    #[test]
    fn pushback_requeues_at_the_front() {
        let got = run_world(2, |c| {
            if c.rank() == 0 {
                c.send(1, vec![1]).unwrap();
                c.send(1, vec![2]).unwrap();
                Vec::new()
            } else {
                let first = c.recv(0).unwrap();
                c.pushback(0, first); // unreceive
                                      // both recv and try_recv must see the parked frame first
                let again = c.try_recv(0).unwrap().unwrap();
                let second = c.recv(0).unwrap();
                vec![again[0], second[0]]
            }
        });
        assert_eq!(got[1], vec![1, 2]);
    }

    #[test]
    fn epochs_advance_per_endpoint() {
        let epochs = run_world(2, |c| (c.next_epoch(), c.next_epoch(), c.next_epoch()));
        for e in epochs {
            assert_eq!(e, (0, 1, 2));
        }
    }

    #[test]
    fn abort_breaks_the_barrier_for_everyone() {
        let got = run_world(3, |c| {
            if c.rank() == 2 {
                std::thread::sleep(Duration::from_millis(10));
                c.abort();
                Err(CommError::Killed { rank: 2 })
            } else {
                c.barrier()
            }
        });
        assert_eq!(got[0], Err(CommError::PeerDead { peer: 2 }));
        assert_eq!(got[1], Err(CommError::PeerDead { peer: 2 }));
    }

    #[test]
    fn dead_rank_operations_fail_fast() {
        let got = run_world(2, |c| {
            if c.rank() == 0 {
                c.abort();
                // a killed endpoint refuses further traffic
                let send_err = c.send(1, vec![1]).unwrap_err();
                let barrier_err = c.barrier().unwrap_err();
                (send_err, barrier_err)
            } else {
                // peer-facing operations fail promptly, not at timeout
                let t0 = Instant::now();
                let e = loop {
                    if let Err(e) = c.recv(0) {
                        break e;
                    }
                };
                assert!(t0.elapsed() < Duration::from_secs(5));
                (e, e)
            }
        });
        assert_eq!(got[0].0, CommError::Killed { rank: 0 });
        assert_eq!(got[0].1, CommError::Killed { rank: 0 });
        assert_eq!(got[1].0, CommError::PeerDead { peer: 0 });
    }
}
