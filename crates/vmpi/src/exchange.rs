//! The particle-migration strategies (§IV-B) plus the sparse adaptive
//! extension.
//!
//! Particles can cross from any rank's subdomain to any other's, so
//! the solver needs all-to-any exchange rather than neighbour halo
//! exchange. Every strategy takes, on each rank, one packed byte
//! buffer per destination rank, and fills the buffers this rank
//! received.
//!
//! * [`Strategy::Centralized`]: gather → classify → scatter through a
//!   root rank. ~2N transactions, but every byte crosses the network
//!   twice (≈2M data volume).
//! * [`Strategy::Distributed`]: all-pairs two-round ordered
//!   send/recv. ~N(N−1) transactions but each byte moves once (≈M).
//! * [`Strategy::Sparse`]: counts-first — a sparse
//!   [`alltoall_u64`] of
//!   per-destination byte counts, then point-to-point transfers **only
//!   between pairs with nonzero payload**, still walking the paper's
//!   rank-ordered two-round schedule for deadlock freedom. A quiet
//!   step (particles mostly staying put or crossing into neighbouring
//!   subdomains) costs `O(nonzero pairs)` messages instead of
//!   `N(N−1)`.
//! * [`Strategy::Hier`]: two-level, node-aware. Ranks are grouped
//!   into nodes by a [`NodeMap`]; intra-node migrants travel the
//!   cheap direct path while inter-node migrants are funneled to the
//!   node leader, aggregated into **one packed message per active
//!   node pair**, trunked leader-to-leader, and scattered to their
//!   destination ranks. Message count scales with node pairs instead
//!   of rank pairs, which is the two-level aggregation of Bogdanov et
//!   al. The phase-1 sends are nonblocking, so
//!   [`exchange_hier_overlapped`] can run caller-supplied interior
//!   work between posting the sends and draining the receives.
//! * [`Strategy::Auto`]: a marker resolved per step by the caller
//!   (`coupled::machine::CostModel::pick_strategy`) from the measured
//!   migration byte matrix — it never reaches the wire itself
//!   (reaching it unresolved is [`CommError::AutoUnresolved`]).
//!
//! The deadlock-avoidance ordering follows the paper: round 1 receives
//! from lower ranks then sends to higher ranks; round 2 receives from
//! higher ranks then sends to lower ranks.
//!
//! [`exchange_into`] is the allocation-free core: outgoing buffers are
//! sent from borrowed slices ([`Comm::send_from`]) and incoming
//! buffers are refilled in place ([`Comm::recv_into`]), so a steady
//! state reuses the same capacity step after step. [`exchange`] is the
//! owned-buffer convenience wrapper.
//!
//! Every strategy is fallible end to end: a dead peer, a timed-out
//! receive or a malformed gathered frame surfaces as a
//! [`CommError`] instead of a panic, so the coupled driver can tear
//! the world down and restart from a checkpoint.

use crate::collectives::{alltoall_u64, drain_tagged};
use crate::comm::Comm;
use crate::error::{take_u32, take_u64, CommError, CommResult};
use serde::{Deserialize, Serialize};

/// Which particle-migration strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Gather/classify/scatter through rank 0.
    Centralized,
    /// All-pairs two-round ordered exchange.
    Distributed,
    /// Counts-first, then point-to-point only between nonzero pairs.
    Sparse,
    /// Two-level node-aware: direct intra-node delivery, inter-node
    /// migrants aggregated into one message per active node pair and
    /// routed through the node leaders.
    Hier,
    /// Pick a concrete strategy per step from the migration matrix and
    /// the machine model. Must be resolved before the exchange itself
    /// runs.
    Auto,
}

impl Strategy {
    /// The strategies that actually move bytes (everything but
    /// [`Strategy::Auto`]), in the order the auto-selector scores them.
    pub const CONCRETE: [Strategy; 4] = [
        Strategy::Centralized,
        Strategy::Distributed,
        Strategy::Sparse,
        Strategy::Hier,
    ];
}

/// Grouping of the world's ranks into nodes for [`Strategy::Hier`].
///
/// The node of rank `r` is `node_of(r)`; the *leader* of a node is its
/// lowest-numbered member and carries that node's share of the
/// aggregated inter-node traffic. Mirrors the machine placement in
/// `coupled::machine`: ranks on one node talk over the cheap
/// inner-frame tier, node pairs over the expensive inter-rack tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMap {
    node_of: Vec<usize>,
    nodes: usize,
}

impl NodeMap {
    /// Build from an explicit rank → node assignment. Node ids must be
    /// dense (`0..nodes`, every node nonempty); panics otherwise —
    /// that is caller misconfiguration, not a communication fault.
    pub fn new(node_of: Vec<usize>) -> Self {
        assert!(!node_of.is_empty(), "a node map needs at least one rank");
        let nodes = node_of.iter().max().copied().unwrap_or(0) + 1;
        for node in 0..nodes {
            assert!(
                node_of.contains(&node),
                "node {node} has no ranks (node ids must be dense)"
            );
        }
        NodeMap { node_of, nodes }
    }

    /// Consecutive blocks of `ranks_per_node` ranks (the last node may
    /// be short), matching how schedulers hand out contiguous rank
    /// ranges per host.
    pub fn grouped(n_ranks: usize, ranks_per_node: usize) -> Self {
        assert!(ranks_per_node > 0, "ranks_per_node must be positive");
        Self::new((0..n_ranks).map(|r| r / ranks_per_node).collect())
    }

    /// Default grouping when the caller gave none: two equal halves —
    /// the smallest shape that exercises both tiers of the protocol.
    pub fn default_for(n_ranks: usize) -> Self {
        Self::grouped(n_ranks, n_ranks.div_ceil(2).max(1))
    }

    /// Number of ranks mapped.
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// Whether the map covers zero ranks (never true for a
    /// constructed map; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node rank `r` lives on.
    pub fn node_of(&self, r: usize) -> usize {
        self.node_of[r]
    }

    /// The leader (lowest member rank) of `node`.
    pub fn leader(&self, node: usize) -> usize {
        self.node_of
            .iter()
            .position(|&x| x == node)
            .expect("dense node ids: every node has a member")
    }

    /// Whether `r` is its node's leader.
    pub fn is_leader(&self, r: usize) -> bool {
        self.leader(self.node_of[r]) == r
    }

    /// The member ranks of `node`, ascending.
    pub fn members(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.node_of
            .iter()
            .enumerate()
            .filter(move |&(_, &x)| x == node)
            .map(|(r, _)| r)
    }
}

/// Exchange `outgoing[dest]` buffers between all ranks; returns
/// `incoming[src]` buffers. `outgoing[comm.rank()]` is delivered
/// straight to `incoming[comm.rank()]` without touching the network.
pub fn exchange<C: Comm>(
    comm: &C,
    strategy: Strategy,
    mut outgoing: Vec<Vec<u8>>,
) -> CommResult<Vec<Vec<u8>>> {
    let mut incoming = Vec::new();
    exchange_into(comm, strategy, &mut outgoing, &mut incoming)?;
    Ok(incoming)
}

/// Allocation-free exchange: fills `incoming[src]` (resized to world
/// size, buffers cleared and refilled in place) from `outgoing[dest]`,
/// which is only borrowed — its buffers keep their contents and
/// capacity, ready to be cleared and repacked next step.
pub fn exchange_into<C: Comm>(
    comm: &C,
    strategy: Strategy,
    outgoing: &mut [Vec<u8>],
    incoming: &mut Vec<Vec<u8>>,
) -> CommResult<()> {
    let n = comm.size();
    let me = comm.rank();
    assert_eq!(outgoing.len(), n);
    incoming.resize_with(n, Vec::new);
    for buf in incoming.iter_mut() {
        buf.clear();
    }
    // local delivery without touching the network
    incoming[me].extend_from_slice(&outgoing[me]);
    match strategy {
        Strategy::Centralized => exchange_centralized_into(comm, outgoing, incoming),
        Strategy::Distributed => exchange_distributed_into(comm, outgoing, incoming),
        Strategy::Sparse => exchange_sparse_into(comm, outgoing, incoming),
        Strategy::Hier => {
            exchange_hier_core(comm, &NodeMap::default_for(n), outgoing, incoming, || ())
        }
        Strategy::Auto => Err(CommError::AutoUnresolved),
    }
}

/// Hierarchical exchange with an explicit node map. Same contract as
/// [`exchange_into`] restricted to [`Strategy::Hier`]: fills
/// `incoming[src]` in place, borrows `outgoing`.
pub fn exchange_hier_into<C: Comm>(
    comm: &C,
    nodes: &NodeMap,
    outgoing: &mut [Vec<u8>],
    incoming: &mut Vec<Vec<u8>>,
) -> CommResult<()> {
    exchange_hier_overlapped(comm, nodes, outgoing, incoming, || ())
}

/// Hierarchical exchange overlapping `work` with the communication:
/// `work` runs after the phase-1 nonblocking sends are posted and
/// before the first fence-and-drain, i.e. inside the window where the
/// paper's overlapped variant advances interior cells. `work` must not
/// touch `outgoing`/`incoming` (the borrow checker enforces it) and
/// must not communicate on `comm`.
pub fn exchange_hier_overlapped<C: Comm>(
    comm: &C,
    nodes: &NodeMap,
    outgoing: &mut [Vec<u8>],
    incoming: &mut Vec<Vec<u8>>,
    work: impl FnOnce(),
) -> CommResult<()> {
    let n = comm.size();
    let me = comm.rank();
    assert_eq!(outgoing.len(), n);
    incoming.resize_with(n, Vec::new);
    for buf in incoming.iter_mut() {
        buf.clear();
    }
    incoming[me].extend_from_slice(&outgoing[me]);
    exchange_hier_core(comm, nodes, outgoing, incoming, work)
}

/// Wire magics for the three hierarchical phases. Distinct per phase
/// so a fence-and-drain that probes a frame posted early for a later
/// phase can push it back instead of misparsing it.
const HIER_INTRA: u8 = 0xE1;
const HIER_TRUNK: u8 = 0xE2;
const HIER_SCATTER: u8 = 0xE3;

/// Walk `(src u32, dst u32, len u64, payload)` groups packed
/// back-to-back in `cur`.
fn for_each_group<'a>(
    mut cur: &'a [u8],
    n: usize,
    mut f: impl FnMut(usize, usize, &'a [u8]) -> CommResult<()>,
) -> CommResult<()> {
    while !cur.is_empty() {
        let src = take_u32(&mut cur, "hier group src")? as usize;
        let dst = take_u32(&mut cur, "hier group dst")? as usize;
        let len = take_u64(&mut cur, "hier group length")? as usize;
        if src >= n || dst >= n || cur.len() < len {
            return Err(CommError::Malformed {
                what: "hier group body",
            });
        }
        let (payload, rest) = cur.split_at(len);
        cur = rest;
        f(src, dst, payload)?;
    }
    Ok(())
}

/// The three-phase hierarchical protocol (assumes the caller already
/// prepared `incoming` and delivered the self slot):
///
/// 1. **Intra + funnel** (`0xE1`): each rank sends every same-node
///    peer its direct payload, and appends to the *leader's* frame the
///    `(src, dst, len, payload)` groups of all its inter-node
///    emigrants. Empty frames are skipped.
/// 2. **Trunk** (`0xE2`): each leader packs everything its node sends
///    to node `b` into **one** frame for `b`'s leader — the
///    per-node-pair aggregation.
/// 3. **Scatter** (`0xE3`): the destination leader regroups arrived
///    groups by destination rank and forwards `(src, len, payload)`
///    bundles to its members; its own groups are delivered locally.
///
/// Every phase is sends → barrier → single-try tagged drain from
/// the known source set (same fence-and-drain as the sparse counts
/// round, so [`crate::ReliableComm`]'s journal truth applies and the
/// protocol survives chaos). A trailing barrier keeps a fast rank's
/// post-exchange traffic out of a slow peer's final drain.
fn exchange_hier_core<C: Comm>(
    comm: &C,
    nodes: &NodeMap,
    outgoing: &[Vec<u8>],
    incoming: &mut [Vec<u8>],
    work: impl FnOnce(),
) -> CommResult<()> {
    let n = comm.size();
    let me = comm.rank();
    assert_eq!(nodes.len(), n, "node map sized for another world");
    let my_node = nodes.node_of(me);
    let my_leader = nodes.leader(my_node);

    // --- phase 1: intra-node payloads, inter-node funnel ------------
    let mut funnel = Vec::new();
    for (dst, payload) in outgoing.iter().enumerate() {
        if dst != me && nodes.node_of(dst) != my_node && !payload.is_empty() {
            funnel.extend_from_slice(&(me as u32).to_le_bytes());
            funnel.extend_from_slice(&(dst as u32).to_le_bytes());
            funnel.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            funnel.extend_from_slice(payload);
        }
    }
    let mut pending = Vec::new();
    for q in nodes.members(my_node) {
        if q == me {
            continue;
        }
        let intra = &outgoing[q];
        let tail: &[u8] = if q == my_leader { &funnel } else { &[] };
        if intra.is_empty() && tail.is_empty() {
            continue;
        }
        let mut frame = Vec::with_capacity(9 + intra.len() + tail.len());
        frame.push(HIER_INTRA);
        frame.extend_from_slice(&(intra.len() as u64).to_le_bytes());
        frame.extend_from_slice(intra);
        frame.extend_from_slice(tail);
        pending.push(comm.isend(q, frame)?);
    }
    // the overlap window: sends are in flight, receives not yet fenced
    work();
    for h in pending {
        comm.wait_send(h)?;
    }
    comm.barrier()?;

    // drain phase 1: everyone collects intra payloads; leaders also
    // bucket the funneled groups by destination node
    let mut trunk: Vec<Vec<u8>> = vec![Vec::new(); nodes.nodes()];
    let bucket = |groups: &[u8], trunk: &mut Vec<Vec<u8>>| {
        for_each_group(groups, n, |src, dst, payload| {
            let to = nodes.node_of(dst);
            if to == my_node {
                return Err(CommError::Malformed {
                    what: "hier funnel group already intra-node",
                });
            }
            let t = &mut trunk[to];
            t.extend_from_slice(&(src as u32).to_le_bytes());
            t.extend_from_slice(&(dst as u32).to_le_bytes());
            t.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            t.extend_from_slice(payload);
            Ok(())
        })
    };
    if me == my_leader && !funnel.is_empty() {
        bucket(&funnel, &mut trunk)?;
    }
    for q in nodes.members(my_node) {
        if q == me {
            continue;
        }
        if let Some(frame) = drain_tagged(comm, q, |h| h.first() == Some(&HIER_INTRA))? {
            let mut cur = &frame[1..];
            let intra_len = take_u64(&mut cur, "hier intra length")? as usize;
            if cur.len() < intra_len {
                return Err(CommError::Malformed {
                    what: "hier intra payload",
                });
            }
            let (intra, groups) = cur.split_at(intra_len);
            incoming[q].extend_from_slice(intra);
            if me == my_leader && !groups.is_empty() {
                bucket(groups, &mut trunk)?;
            }
        }
    }

    // --- phase 2: one aggregated frame per active node pair ---------
    if me == my_leader {
        let mut pending = Vec::new();
        for (b, groups) in trunk.iter().enumerate() {
            if b == my_node || groups.is_empty() {
                continue;
            }
            let mut frame = Vec::with_capacity(1 + groups.len());
            frame.push(HIER_TRUNK);
            frame.extend_from_slice(groups);
            pending.push(comm.isend(nodes.leader(b), frame)?);
        }
        for h in pending {
            comm.wait_send(h)?;
        }
    }
    comm.barrier()?;

    // drain phase 2 and post phase 3 (leaders only): regroup arrived
    // groups by destination member; own groups deliver locally
    if me == my_leader {
        let mut scatter: Vec<Vec<u8>> = vec![Vec::new(); n];
        for b in 0..nodes.nodes() {
            if b == my_node {
                continue;
            }
            let lb = nodes.leader(b);
            if let Some(frame) = drain_tagged(comm, lb, |h| h.first() == Some(&HIER_TRUNK))? {
                for_each_group(&frame[1..], n, |src, dst, payload| {
                    if nodes.node_of(dst) != my_node {
                        return Err(CommError::Malformed {
                            what: "hier trunk group for another node",
                        });
                    }
                    if dst == me {
                        incoming[src].extend_from_slice(payload);
                    } else {
                        let s = &mut scatter[dst];
                        s.extend_from_slice(&(src as u32).to_le_bytes());
                        s.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                        s.extend_from_slice(payload);
                    }
                    Ok(())
                })?;
            }
        }
        let mut pending = Vec::new();
        for (q, bundles) in scatter.iter().enumerate() {
            if bundles.is_empty() {
                continue;
            }
            let mut frame = Vec::with_capacity(1 + bundles.len());
            frame.push(HIER_SCATTER);
            frame.extend_from_slice(bundles);
            pending.push(comm.isend(q, frame)?);
        }
        for h in pending {
            comm.wait_send(h)?;
        }
    }
    comm.barrier()?;

    // drain phase 3 (non-leader members)
    if me != my_leader {
        if let Some(frame) = drain_tagged(comm, my_leader, |h| h.first() == Some(&HIER_SCATTER))? {
            let mut cur = &frame[1..];
            while !cur.is_empty() {
                let src = take_u32(&mut cur, "hier scatter src")? as usize;
                let len = take_u64(&mut cur, "hier scatter length")? as usize;
                if src >= n || cur.len() < len {
                    return Err(CommError::Malformed {
                        what: "hier scatter body",
                    });
                }
                let (payload, rest) = cur.split_at(len);
                cur = rest;
                incoming[src].extend_from_slice(payload);
            }
        }
    }
    // trailing fence: a fast rank's post-exchange traffic must not
    // land in a slow peer's still-pending scatter drain
    comm.barrier()?;
    Ok(())
}

/// Distributed strategy: all-pairs, two rounds, paper ordering.
// index loops: the loop variable is the peer rank of an ordered
// schedule, and the iteration bounds (`0..me`, `me+1..n`, reversed)
// are the deadlock-freedom argument — keep them explicit
#[allow(clippy::needless_range_loop)]
fn exchange_distributed_into<C: Comm>(
    comm: &C,
    outgoing: &mut [Vec<u8>],
    incoming: &mut [Vec<u8>],
) -> CommResult<()> {
    let me = comm.rank();
    let n = comm.size();
    // Round 1: receive from every lower rank (ascending), then send to
    // every higher rank (ascending).
    for src in 0..me {
        comm.recv_into(src, &mut incoming[src])?;
    }
    for dst in me + 1..n {
        comm.send_from(dst, &outgoing[dst])?;
    }
    // Round 2: receive from every higher rank (descending), then send
    // to every lower rank (descending).
    for src in (me + 1..n).rev() {
        comm.recv_into(src, &mut incoming[src])?;
    }
    for dst in (0..me).rev() {
        comm.send_from(dst, &outgoing[dst])?;
    }
    Ok(())
}

/// Sparse strategy: a counts round tells every rank which peers hold
/// payload for it, then the distributed two-round ordered schedule
/// runs with every zero pair skipped on both sides (the counts are
/// symmetric knowledge, so the schedule stays deadlock-free).
// index loops: see exchange_distributed_into — same ordered schedule
#[allow(clippy::needless_range_loop)]
fn exchange_sparse_into<C: Comm>(
    comm: &C,
    outgoing: &mut [Vec<u8>],
    incoming: &mut [Vec<u8>],
) -> CommResult<()> {
    let me = comm.rank();
    let n = comm.size();
    let counts: Vec<u64> = outgoing
        .iter()
        .enumerate()
        .map(|(d, b)| if d == me { 0 } else { b.len() as u64 })
        .collect();
    let expect = alltoall_u64(comm, &counts)?;
    for src in 0..me {
        if expect[src] > 0 {
            comm.recv_into(src, &mut incoming[src])?;
        }
    }
    for dst in me + 1..n {
        if !outgoing[dst].is_empty() {
            comm.send_from(dst, &outgoing[dst])?;
        }
    }
    for src in (me + 1..n).rev() {
        if expect[src] > 0 {
            comm.recv_into(src, &mut incoming[src])?;
        }
    }
    for dst in (0..me).rev() {
        if !outgoing[dst].is_empty() {
            comm.send_from(dst, &outgoing[dst])?;
        }
    }
    Ok(())
}

/// Centralized strategy: gather at root, classify by destination,
/// scatter. Classification borrows byte ranges of the gathered
/// messages — each payload is copied exactly once into its scatter
/// buffer, not staged through intermediate per-payload `Vec`s.
fn exchange_centralized_into<C: Comm>(
    comm: &C,
    outgoing: &mut [Vec<u8>],
    incoming: &mut [Vec<u8>],
) -> CommResult<()> {
    const ROOT: usize = 0;
    let me = comm.rank();
    let n = comm.size();

    // pack (dst, payload) groups into one message, skipping self
    let pack = |outgoing: &[Vec<u8>], me: usize, buf: &mut Vec<u8>| {
        for (dst, payload) in outgoing.iter().enumerate() {
            if dst == me || payload.is_empty() {
                continue;
            }
            buf.extend_from_slice(&(dst as u32).to_le_bytes());
            buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            buf.extend_from_slice(payload);
        }
    };

    // split a (dst|src, len, payload) frame off the front of `cur`
    fn take_group<'a>(cur: &mut &'a [u8], n: usize) -> CommResult<(usize, &'a [u8])> {
        let who = take_u32(cur, "centralized group header")? as usize;
        let len = take_u64(cur, "centralized group length")? as usize;
        if who >= n || cur.len() < len {
            return Err(CommError::Malformed {
                what: "centralized group body",
            });
        }
        let (payload, rest) = cur.split_at(len);
        *cur = rest;
        Ok((who, payload))
    }

    if me == ROOT {
        // --- gather stage -------------------------------------------
        let mut gathered: Vec<Vec<u8>> = Vec::with_capacity(n);
        gathered.push(Vec::new()); // root's groups come straight from `outgoing`
        for src in 1..n {
            gathered.push(comm.recv(src)?);
        }
        // --- classify stage: borrowed (src, payload-slice) refs -----
        let mut classified: Vec<Vec<(u32, &[u8])>> = vec![Vec::new(); n];
        for (dst, payload) in outgoing.iter().enumerate() {
            if dst != ROOT && !payload.is_empty() {
                classified[dst].push((ROOT as u32, payload.as_slice()));
            }
        }
        for (src, buf) in gathered.iter().enumerate().skip(1) {
            let mut cur = buf.as_slice();
            while !cur.is_empty() {
                let (dst, payload) = take_group(&mut cur, n)?;
                classified[dst].push((src as u32, payload));
            }
        }
        // --- scatter stage: one copy per payload --------------------
        let mut scatter = Vec::new();
        for (dst, groups) in classified.iter().enumerate() {
            if dst == ROOT {
                for &(src, payload) in groups {
                    incoming[src as usize].extend_from_slice(payload);
                }
            } else {
                scatter.clear();
                for &(src, payload) in groups {
                    scatter.extend_from_slice(&src.to_le_bytes());
                    scatter.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                    scatter.extend_from_slice(payload);
                }
                comm.send_from(dst, &scatter)?;
            }
        }
    } else {
        let mut msg = Vec::new();
        pack(outgoing, me, &mut msg);
        comm.send(ROOT, msg)?;
        let buf = comm.recv(ROOT)?;
        let mut cur = buf.as_slice();
        while !cur.is_empty() {
            let (src, payload) = take_group(&mut cur, n)?;
            incoming[src].extend_from_slice(payload);
        }
    }
    Ok(())
}

/// Traffic summary for one exchange given the migration byte matrix
/// `matrix[src][dst]` (diagonal ignored). Used by the analytic cluster
/// performance model so the modelled experiments charge exactly the
/// traffic the real protocols generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSummary {
    /// Total point-to-point messages on the network.
    pub transactions: u64,
    /// Total bytes moved over the network.
    pub total_bytes: u64,
    /// Worst per-rank sum of (sent + received) bytes — the serial
    /// bottleneck rank (the root, under the centralized scheme).
    pub max_rank_bytes: u64,
    /// Nonzero off-diagonal entries of the migration matrix: the
    /// ordered src→dst pairs that actually carry bytes.
    pub nonzero_pairs: u64,
    /// Worst per-rank count of point-to-point operations (sends +
    /// receives) — the serialized-latency bound of the protocol.
    pub max_rank_msgs: u64,
    /// Ordered node pairs carrying an aggregated trunk frame — the
    /// hierarchical strategy's message-count currency (zero for the
    /// flat strategies).
    pub node_pairs: u64,
    /// Bytes of the aggregated leader-to-leader trunk frames, headers
    /// included (zero for the flat strategies).
    pub aggregated_bytes: u64,
}

/// Predict the traffic of one exchange under `strategy`.
///
/// Panics on [`Strategy::Auto`]: the auto marker has no traffic of its
/// own — resolving it first is a caller precondition, not a runtime
/// communication fault.
pub fn traffic(strategy: Strategy, matrix: &[Vec<u64>]) -> TrafficSummary {
    let n = matrix.len();
    let mut off_diag = 0u64; // M: bytes that actually change ranks
    let mut sent = vec![0u64; n];
    let mut recvd = vec![0u64; n];
    let mut nz_sent = vec![0u64; n]; // nonzero destinations per source
    let mut nz_recvd = vec![0u64; n]; // nonzero sources per destination
    let mut nonzero_pairs = 0u64;
    for (s, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), n);
        for (d, &b) in row.iter().enumerate() {
            if s != d && b > 0 {
                off_diag += b;
                sent[s] += b;
                recvd[d] += b;
                nz_sent[s] += 1;
                nz_recvd[d] += 1;
                nonzero_pairs += 1;
            }
        }
    }
    match strategy {
        Strategy::Distributed => {
            // every ordered pair exchanges exactly one message
            let transactions = (n as u64) * (n as u64 - 1);
            let max_rank = (0..n).map(|r| sent[r] + recvd[r]).max().unwrap_or(0);
            TrafficSummary {
                transactions,
                total_bytes: off_diag,
                max_rank_bytes: max_rank,
                nonzero_pairs,
                max_rank_msgs: 2 * (n as u64 - 1),
                node_pairs: 0,
                aggregated_bytes: 0,
            }
        }
        Strategy::Centralized => {
            // N-1 gathers + N-1 scatters; every migrated byte crosses
            // the wire twice unless its source or destination is the
            // root itself.
            let root = 0usize;
            let mut total = 0u64;
            let mut root_bytes = 0u64;
            for (s, row) in matrix.iter().enumerate() {
                for (d, &b) in row.iter().enumerate() {
                    if s == d {
                        continue;
                    }
                    let hops = u64::from(s != root) + u64::from(d != root);
                    total += b * hops;
                    root_bytes += b * hops;
                }
            }
            TrafficSummary {
                transactions: 2 * (n as u64 - 1),
                total_bytes: total,
                max_rank_bytes: root_bytes,
                nonzero_pairs,
                max_rank_msgs: 2 * (n as u64 - 1),
                node_pairs: 0,
                aggregated_bytes: 0,
            }
        }
        Strategy::Sparse => {
            // per nonzero pair: one 17-byte tagged count frame (the
            // sparse alltoall — zero entries cost no message) + one
            // payload message; barriers are synchronization, not
            // transactions.
            let max_rank = (0..n)
                .map(|r| sent[r] + recvd[r] + 17 * (nz_sent[r] + nz_recvd[r]))
                .max()
                .unwrap_or(0);
            let max_msgs = (0..n)
                .map(|r| 2 * (nz_sent[r] + nz_recvd[r]))
                .max()
                .unwrap_or(0);
            TrafficSummary {
                transactions: 2 * nonzero_pairs,
                total_bytes: off_diag + 17 * nonzero_pairs,
                max_rank_bytes: max_rank,
                nonzero_pairs,
                max_rank_msgs: max_msgs,
                node_pairs: 0,
                aggregated_bytes: 0,
            }
        }
        Strategy::Hier => traffic_hier(&NodeMap::default_for(n), matrix),
        Strategy::Auto => panic!(
            "Strategy::Auto has no traffic of its own — resolve it to a concrete \
             strategy first (CostModel::pick_strategy)"
        ),
    }
}

/// Predict the traffic of one hierarchical exchange under an explicit
/// node map, mirroring the wire protocol byte for byte: phase-1
/// frames are `1 + 8 + intra` plus, toward the leader, `16 + payload`
/// per funneled group; phase-2 trunk frames are `1` plus the
/// aggregated groups of the node pair; phase-3 scatter frames are `1`
/// plus `12 + payload` per bundle. Barriers are synchronization, not
/// transactions.
pub fn traffic_hier(nodes: &NodeMap, matrix: &[Vec<u64>]) -> TrafficSummary {
    let n = matrix.len();
    assert_eq!(nodes.len(), n, "node map sized for another matrix");
    let mut sent_b = vec![0u64; n];
    let mut recvd_b = vec![0u64; n];
    let mut sent_m = vec![0u64; n];
    let mut recvd_m = vec![0u64; n];
    let mut transactions = 0u64;
    let mut total_bytes = 0u64;
    let mut nonzero_pairs = 0u64;
    let mut frame = |from: usize, to: usize, bytes: u64| {
        transactions += 1;
        total_bytes += bytes;
        sent_b[from] += bytes;
        recvd_b[to] += bytes;
        sent_m[from] += 1;
        recvd_m[to] += 1;
    };
    // trunk[a][b]: aggregated group bytes node a sends node b
    let mut trunk = vec![vec![0u64; nodes.nodes()]; nodes.nodes()];
    // scatter[q]: bundle bytes q's leader forwards to member q
    let mut scatter = vec![0u64; n];
    for (s, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), n);
        let node = nodes.node_of(s);
        let leader = nodes.leader(node);
        let mut funnel = 0u64;
        for (d, &b) in row.iter().enumerate() {
            if s == d || b == 0 {
                continue;
            }
            nonzero_pairs += 1;
            let to = nodes.node_of(d);
            if to != node {
                funnel += 16 + b;
                trunk[node][to] += 16 + b;
                if d != nodes.leader(to) {
                    scatter[d] += 12 + b;
                }
            }
        }
        // phase 1: one frame per same-node peer with anything to carry
        for q in nodes.members(node) {
            if q == s {
                continue;
            }
            let intra = row[q];
            let tail = if q == leader { funnel } else { 0 };
            if intra == 0 && tail == 0 {
                continue;
            }
            frame(s, q, 9 + intra + tail);
        }
        // a leader's own funnel stays local: no phase-1 self-frame
    }
    // phase 2: one frame per active ordered node pair
    let mut node_pairs = 0u64;
    let mut aggregated_bytes = 0u64;
    for (a, row) in trunk.iter().enumerate() {
        for (b, &groups) in row.iter().enumerate() {
            if a == b || groups == 0 {
                continue;
            }
            node_pairs += 1;
            aggregated_bytes += 1 + groups;
            frame(nodes.leader(a), nodes.leader(b), 1 + groups);
        }
    }
    // phase 3: one frame per member with inbound inter-node bundles
    for (q, &bundles) in scatter.iter().enumerate() {
        if bundles > 0 {
            frame(nodes.leader(nodes.node_of(q)), q, 1 + bundles);
        }
    }
    let max_rank_bytes = (0..n).map(|r| sent_b[r] + recvd_b[r]).max().unwrap_or(0);
    let max_rank_msgs = (0..n).map(|r| sent_m[r] + recvd_m[r]).max().unwrap_or(0);
    TrafficSummary {
        transactions,
        total_bytes,
        max_rank_bytes,
        nonzero_pairs,
        max_rank_msgs,
        node_pairs,
        aggregated_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::run_world;

    /// Build a deterministic payload for (src → dst).
    fn payload(src: usize, dst: usize) -> Vec<u8> {
        vec![(src * 16 + dst) as u8; (src + 1) * (dst + 2)]
    }

    fn check_all_to_all(strategy: Strategy, n: usize) {
        let results = run_world(n, |c| {
            let outgoing: Vec<Vec<u8>> = (0..c.size()).map(|dst| payload(c.rank(), dst)).collect();
            exchange(&c, strategy, outgoing).unwrap()
        });
        for (dst, incoming) in results.iter().enumerate() {
            assert_eq!(incoming.len(), n);
            for (src, buf) in incoming.iter().enumerate() {
                assert_eq!(buf, &payload(src, dst), "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn distributed_delivers_everything() {
        for n in [1usize, 2, 3, 5, 8] {
            check_all_to_all(Strategy::Distributed, n);
        }
    }

    #[test]
    fn centralized_delivers_everything() {
        for n in [1usize, 2, 3, 5, 8] {
            check_all_to_all(Strategy::Centralized, n);
        }
    }

    #[test]
    fn sparse_delivers_everything() {
        for n in [1usize, 2, 3, 5, 8] {
            check_all_to_all(Strategy::Sparse, n);
        }
    }

    #[test]
    fn hier_delivers_everything() {
        for n in [1usize, 2, 3, 5, 8] {
            check_all_to_all(Strategy::Hier, n);
        }
    }

    #[test]
    fn hier_delivers_under_every_node_shape() {
        // same dense traffic, every grouping of 6 ranks: single node
        // (pure intra), one rank per node (pure trunk), and the mixed
        // shapes in between
        for rpn in [1usize, 2, 3, 4, 6] {
            let results = run_world(6, move |c| {
                let nodes = NodeMap::grouped(c.size(), rpn);
                let mut outgoing: Vec<Vec<u8>> =
                    (0..c.size()).map(|dst| payload(c.rank(), dst)).collect();
                let mut incoming = Vec::new();
                exchange_hier_into(&c, &nodes, &mut outgoing, &mut incoming).unwrap();
                incoming
            });
            for (dst, incoming) in results.iter().enumerate() {
                for (src, buf) in incoming.iter().enumerate() {
                    assert_eq!(buf, &payload(src, dst), "rpn={rpn} {src}->{dst}");
                }
            }
        }
    }

    /// ISSUE acceptance shape: on the 8-rank quiet matrix the
    /// hierarchical strategy must send strictly fewer messages than
    /// Sparse's 2·nnz — aggregation means the cross-node pair costs
    /// funnel + trunk, not counts + payload per rank pair.
    #[test]
    fn hier_quiet_step_beats_sparse_transactions() {
        let n = 8usize;
        let measure = |strategy: Strategy| {
            run_world(n, move |c| {
                c.stats().reset();
                c.barrier().unwrap();
                // nodes {0..3} and {4..7}: 1→3 is intra-node, 6→0
                // crosses nodes into the destination leader
                let mut outgoing = vec![Vec::new(); c.size()];
                match c.rank() {
                    1 => outgoing[3] = vec![7u8; 61],
                    6 => outgoing[0] = vec![9u8; 122],
                    _ => {}
                }
                let inc = exchange(&c, strategy, outgoing).unwrap();
                c.barrier().unwrap();
                (c.stats().transactions(), inc)
            })
        };
        let hier = measure(Strategy::Hier);
        let sparse = measure(Strategy::Sparse);
        let (tx_hier, _) = hier[0];
        let (tx_sparse, _) = sparse[0];
        assert_eq!(tx_hier, 3, "intra + funnel + trunk");
        assert_eq!(tx_sparse, 4, "counts + payload per nonzero pair");
        assert!(tx_hier < tx_sparse);
        // identical deliveries
        for (rank, ((_, a), (_, b))) in hier.iter().zip(&sparse).enumerate() {
            assert_eq!(a, b, "rank {rank} incoming differs");
        }
    }

    /// `traffic_hier` must agree with what CommStats measures on the
    /// threaded backend for the same migration matrix and node map.
    #[test]
    fn hier_traffic_model_matches_measurement() {
        let n = 6usize;
        let rpn = 2usize; // nodes {0,1} {2,3} {4,5}
        let mut m = vec![vec![0u64; n]; n];
        m[0][1] = 40; // intra
        m[0][3] = 100; // cross, from a leader, to a non-leader
        m[3][0] = 50; // cross, from a non-leader, to a leader
        m[2][5] = 7; // cross
        m[4][1] = 1; // cross, from a leader
        m[5][4] = 9; // intra toward the leader
        let nodes = NodeMap::grouped(n, rpn);
        let model = traffic_hier(&nodes, &m);
        let m2 = m.clone();
        let (tx, bytes) = {
            let out = run_world(n, move |c| {
                c.stats().reset();
                c.barrier().unwrap();
                let nodes = NodeMap::grouped(c.size(), rpn);
                let mut outgoing: Vec<Vec<u8>> = (0..c.size())
                    .map(|d| vec![0xBBu8; m2[c.rank()][d] as usize])
                    .collect();
                let mut incoming = Vec::new();
                exchange_hier_into(&c, &nodes, &mut outgoing, &mut incoming).unwrap();
                // deliveries must match the matrix
                for (src, buf) in incoming.iter().enumerate() {
                    assert_eq!(buf.len() as u64, m2[src][c.rank()], "{src}->{}", c.rank());
                }
                c.barrier().unwrap();
                (c.stats().transactions(), c.stats().bytes())
            });
            out[0]
        };
        assert_eq!(model.transactions, tx, "transactions");
        assert_eq!(model.total_bytes, bytes, "frame bytes");
        assert_eq!(model.nonzero_pairs, 6);
        assert!(model.node_pairs > 0 && model.aggregated_bytes > 0);
    }

    #[test]
    fn hier_overlap_work_runs_inside_the_exchange() {
        let results = run_world(4, |c| {
            let nodes = NodeMap::grouped(c.size(), 2);
            let mut outgoing: Vec<Vec<u8>> =
                (0..c.size()).map(|dst| payload(c.rank(), dst)).collect();
            let mut incoming = Vec::new();
            let mut ran = false;
            exchange_hier_overlapped(&c, &nodes, &mut outgoing, &mut incoming, || {
                ran = true;
            })
            .unwrap();
            assert!(ran, "overlap work must run exactly once");
            incoming
        });
        for (dst, incoming) in results.iter().enumerate() {
            for (src, buf) in incoming.iter().enumerate() {
                assert_eq!(buf, &payload(src, dst), "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn node_map_shapes() {
        let m = NodeMap::grouped(8, 3); // {0,1,2} {3,4,5} {6,7}
        assert_eq!(m.nodes(), 3);
        assert_eq!(m.len(), 8);
        assert_eq!(m.node_of(5), 1);
        assert_eq!(m.leader(2), 6);
        assert!(m.is_leader(3));
        assert!(!m.is_leader(4));
        assert_eq!(m.members(1).collect::<Vec<_>>(), vec![3, 4, 5]);
        let d = NodeMap::default_for(7); // {0..3} {4..6}
        assert_eq!(d.nodes(), 2);
        assert_eq!(d.node_of(3), 0);
        assert_eq!(d.node_of(4), 1);
        assert_eq!(NodeMap::default_for(1).nodes(), 1);
    }

    #[test]
    fn grouped_handles_ragged_last_node() {
        // 10 ranks in nodes of 4: the last node holds only 2 ranks
        let m = NodeMap::grouped(10, 4);
        assert_eq!(m.nodes(), 3);
        assert_eq!(m.members(2).collect::<Vec<_>>(), vec![8, 9]);
        assert_eq!(m.leader(2), 8);
        assert!(m.is_leader(8) && !m.is_leader(9));
        // every rank lands on exactly one node, in contiguous blocks
        for r in 0..10 {
            assert_eq!(m.node_of(r), r / 4);
        }
    }

    #[test]
    fn grouped_single_node_and_one_rank_per_node() {
        // node size >= world: everything on one node, rank 0 leads
        let one = NodeMap::grouped(6, 8);
        assert_eq!(one.nodes(), 1);
        assert!(one.is_leader(0));
        assert_eq!((0..6).filter(|&r| one.is_leader(r)).count(), 1);
        assert_eq!(one.members(0).count(), 6);

        // node size 1: every rank is its own node and its own leader
        let solo = NodeMap::grouped(5, 1);
        assert_eq!(solo.nodes(), 5);
        for r in 0..5 {
            assert_eq!(solo.node_of(r), r);
            assert_eq!(solo.leader(r), r);
            assert!(solo.is_leader(r));
        }
    }

    #[test]
    fn default_for_tiny_worlds() {
        // div_ceil keeps the first half no smaller than the second
        let two = NodeMap::default_for(2); // {0} {1}
        assert_eq!(two.nodes(), 2);
        assert_eq!(two.node_of(0), 0);
        assert_eq!(two.node_of(1), 1);
        let three = NodeMap::default_for(3); // {0,1} {2}
        assert_eq!(three.nodes(), 2);
        assert_eq!(three.members(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(three.members(1).collect::<Vec<_>>(), vec![2]);
        // a lone rank maps to a single one-rank node
        let lone = NodeMap::default_for(1);
        assert_eq!(lone.len(), 1);
        assert!(lone.is_leader(0));
    }

    #[test]
    fn unresolved_auto_is_an_error_not_a_panic() {
        let out = run_world(2, |c| {
            let outgoing = vec![Vec::new(); c.size()];
            exchange(&c, Strategy::Auto, outgoing)
        });
        assert_eq!(out[0], Err(CommError::AutoUnresolved));
        assert_eq!(out[1], Err(CommError::AutoUnresolved));
    }

    #[test]
    fn empty_buffers_allowed() {
        for strategy in Strategy::CONCRETE {
            let results = run_world(4, move |c| {
                // only rank 1 sends, and only to rank 3
                let mut outgoing = vec![Vec::new(); 4];
                if c.rank() == 1 {
                    outgoing[3] = vec![42u8; 7];
                }
                exchange(&c, strategy, outgoing).unwrap()
            });
            assert_eq!(results[3][1], vec![42u8; 7]);
            for (dst, inc) in results.iter().enumerate() {
                for (src, buf) in inc.iter().enumerate() {
                    if !(src == 1 && dst == 3) {
                        assert!(
                            buf.is_empty(),
                            "unexpected bytes {src}->{dst} ({strategy:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exchange_into_reuses_buffers_across_steps() {
        // two consecutive exchanges through the same scratch buffers:
        // outgoing keeps its contents (borrowed sends), incoming is
        // cleared and refilled in place.
        for strategy in Strategy::CONCRETE {
            let results = run_world(3, move |c| {
                let mut outgoing: Vec<Vec<u8>> =
                    (0..c.size()).map(|dst| payload(c.rank(), dst)).collect();
                let mut incoming = Vec::new();
                exchange_into(&c, strategy, &mut outgoing, &mut incoming).unwrap();
                let first: Vec<Vec<u8>> = incoming.clone();
                // outgoing untouched by the exchange
                for (dst, buf) in outgoing.iter().enumerate() {
                    assert_eq!(buf, &payload(c.rank(), dst));
                }
                // repack different content into the same buffers
                for (dst, buf) in outgoing.iter_mut().enumerate() {
                    buf.clear();
                    buf.extend_from_slice(&payload(c.rank(), dst));
                    buf.push(0xEE);
                }
                exchange_into(&c, strategy, &mut outgoing, &mut incoming).unwrap();
                (first, incoming)
            });
            for (dst, (first, second)) in results.iter().enumerate() {
                for (src, buf) in first.iter().enumerate() {
                    assert_eq!(buf, &payload(src, dst), "{strategy:?} step1 {src}->{dst}");
                }
                for (src, buf) in second.iter().enumerate() {
                    let mut want = payload(src, dst);
                    want.push(0xEE);
                    assert_eq!(buf, &want, "{strategy:?} step2 {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn transaction_counts_match_theory() {
        let n = 6;
        for (strategy, expect) in [
            (Strategy::Distributed, (n * (n - 1)) as u64),
            (Strategy::Centralized, 2 * (n as u64 - 1)),
            // dense matrix: every ordered pair is nonzero — counts
            // round + payload round each cost n(n-1) messages
            (Strategy::Sparse, 2 * (n * (n - 1)) as u64),
        ] {
            let tx = run_world(n, move |c| {
                c.stats().reset();
                c.barrier().unwrap();
                let outgoing = vec![vec![1u8; 4]; c.size()];
                let _ = exchange(&c, strategy, outgoing).unwrap();
                c.barrier().unwrap();
                c.stats().transactions()
            })[0];
            assert_eq!(tx, expect, "{strategy:?}");
        }
    }

    /// ISSUE acceptance: a quiet step (≤2 nonzero pairs) at 8 ranks
    /// must cost Sparse well under 25% of DC's N(N−1) transactions,
    /// and exactly `alltoall cost + 2·(nonzero off-diagonal pairs)`
    /// (the sparse alltoall costs one message per nonzero pair, so
    /// 2 messages per pair in total).
    #[test]
    fn sparse_quiet_step_transactions() {
        let n = 8usize;
        let measure = |strategy: Strategy| {
            run_world(n, move |c| {
                c.stats().reset();
                c.barrier().unwrap();
                // two nonzero pairs: 1→3 and 6→2
                let mut outgoing = vec![Vec::new(); c.size()];
                match c.rank() {
                    1 => outgoing[3] = vec![7u8; 61],
                    6 => outgoing[2] = vec![9u8; 122],
                    _ => {}
                }
                let inc = exchange(&c, strategy, outgoing).unwrap();
                c.barrier().unwrap();
                (c.stats().transactions(), inc)
            })
        };
        let sparse = measure(Strategy::Sparse);
        let dc = measure(Strategy::Distributed);
        let (tx_sparse, _) = &sparse[0];
        let (tx_dc, _) = &dc[0];
        assert_eq!(*tx_dc, (n * (n - 1)) as u64);
        assert_eq!(
            *tx_sparse,
            2 * 2,
            "counts msg + payload msg per nonzero pair"
        );
        assert!(
            (*tx_sparse as f64) < 0.25 * (*tx_dc as f64),
            "sparse {tx_sparse} !< 25% of dc {tx_dc}"
        );
        // identical deliveries
        for (rank, ((_, a), (_, b))) in sparse.iter().zip(&dc).enumerate() {
            assert_eq!(a, b, "rank {rank} incoming differs");
        }
    }

    /// The symmetric-pair form of the counts test: both directions of
    /// two unordered pairs are nonzero, so transactions =
    /// 2·(nonzero ordered pairs) = 4·(unordered pairs).
    #[test]
    fn sparse_transactions_two_per_nonzero_pair() {
        let n = 5usize;
        let tx = run_world(n, move |c| {
            c.stats().reset();
            c.barrier().unwrap();
            let mut outgoing = vec![Vec::new(); c.size()];
            // symmetric pairs {0,4} and {1,2}
            match c.rank() {
                0 => outgoing[4] = vec![1u8; 10],
                4 => outgoing[0] = vec![2u8; 20],
                1 => outgoing[2] = vec![3u8; 30],
                2 => outgoing[1] = vec![4u8; 40],
                _ => {}
            }
            let _ = exchange(&c, Strategy::Sparse, outgoing).unwrap();
            c.barrier().unwrap();
            c.stats().transactions()
        })[0];
        assert_eq!(tx, 2 * 4, "4 nonzero ordered pairs, 2 messages each");
    }

    /// `traffic(Sparse, m)` must agree with what CommStats measures on
    /// the threaded backend for the same migration matrix.
    #[test]
    fn sparse_traffic_model_matches_measurement() {
        let n = 6usize;
        // a lumpy, asymmetric matrix with plenty of zeros
        let mut m = vec![vec![0u64; n]; n];
        m[0][3] = 100;
        m[3][0] = 50;
        m[2][5] = 7;
        m[4][1] = 1;
        m[1][4] = 900;
        let model = traffic(Strategy::Sparse, &m);
        let m2 = m.clone();
        let (tx, bytes) = {
            let out = run_world(n, move |c| {
                c.stats().reset();
                c.barrier().unwrap();
                let outgoing: Vec<Vec<u8>> = (0..c.size())
                    .map(|d| vec![0xAAu8; m2[c.rank()][d] as usize])
                    .collect();
                let _ = exchange(&c, Strategy::Sparse, outgoing).unwrap();
                c.barrier().unwrap();
                (c.stats().transactions(), c.stats().bytes())
            });
            out[0]
        };
        assert_eq!(model.transactions, tx, "transactions");
        assert_eq!(model.total_bytes, bytes, "bytes (payload + tagged counts)");
        assert_eq!(model.nonzero_pairs, 5);
    }

    #[test]
    fn traffic_model_distributed() {
        // 3 ranks, only 0->2 sends 100 bytes
        let mut m = vec![vec![0u64; 3]; 3];
        m[0][2] = 100;
        let t = traffic(Strategy::Distributed, &m);
        assert_eq!(t.transactions, 6);
        assert_eq!(t.total_bytes, 100);
        assert_eq!(t.max_rank_bytes, 100);
        assert_eq!(t.nonzero_pairs, 1);
        assert_eq!(t.max_rank_msgs, 4);
    }

    #[test]
    fn traffic_model_centralized_double_hops() {
        let mut m = vec![vec![0u64; 3]; 3];
        m[1][2] = 100; // neither endpoint is root: 2 hops
        m[0][1] = 50; // source is root: 1 hop
        let t = traffic(Strategy::Centralized, &m);
        assert_eq!(t.transactions, 4);
        assert_eq!(t.total_bytes, 250);
        assert_eq!(t.max_rank_bytes, 250);
    }

    #[test]
    fn traffic_model_sparse_quiet_vs_dense() {
        let n = 8usize;
        // quiet: one pair
        let mut quiet = vec![vec![0u64; n]; n];
        quiet[1][3] = 1000;
        let tq = traffic(Strategy::Sparse, &quiet);
        assert_eq!(tq.transactions, 2);
        assert_eq!(tq.total_bytes, 1000 + 17);
        assert_eq!(tq.max_rank_msgs, 2);
        // dense: every pair — sparse pays the counts overhead on top
        let dense: Vec<Vec<u64>> = (0..n)
            .map(|s| (0..n).map(|d| if s == d { 0 } else { 10 }).collect())
            .collect();
        let td = traffic(Strategy::Sparse, &dense);
        let dc = traffic(Strategy::Distributed, &dense);
        assert_eq!(td.transactions, 2 * dc.transactions);
        assert!(td.total_bytes > dc.total_bytes);
    }

    #[test]
    fn centralized_moves_more_bytes_distributed_more_messages() {
        // uniform all-to-all migration matrix
        let n = 8usize;
        let m: Vec<Vec<u64>> = (0..n)
            .map(|s| (0..n).map(|d| if s == d { 0 } else { 10 }).collect())
            .collect();
        let cc = traffic(Strategy::Centralized, &m);
        let dc = traffic(Strategy::Distributed, &m);
        assert!(cc.transactions < dc.transactions);
        assert!(cc.total_bytes > dc.total_bytes);
    }
}
