//! The paper's two particle-migration strategies (§IV-B).
//!
//! Particles can cross from any rank's subdomain to any other's, so
//! the solver needs all-to-any exchange rather than neighbour halo
//! exchange. Both strategies take, on every rank, one packed byte
//! buffer per destination rank, and return the buffers this rank
//! received.
//!
//! * [`Strategy::Centralized`]: gather → classify → scatter through a
//!   root rank. ~2N transactions, but every byte crosses the network
//!   twice (≈2M data volume).
//! * [`Strategy::Distributed`]: all-pairs two-round ordered
//!   send/recv. ~N(N−1) transactions but each byte moves once (≈M).
//!
//! The deadlock-avoidance ordering follows the paper: round 1 receives
//! from lower ranks then sends to higher ranks; round 2 receives from
//! higher ranks then sends to lower ranks.

use crate::comm::Comm;
use serde::{Deserialize, Serialize};

/// Which particle-migration strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Gather/classify/scatter through rank 0.
    Centralized,
    /// All-pairs two-round ordered exchange.
    Distributed,
}

/// Exchange `outgoing[dest]` buffers between all ranks; returns
/// `incoming[src]` buffers. `outgoing[comm.rank()]` is moved straight
/// to `incoming[comm.rank()]` without touching the network.
pub fn exchange<C: Comm>(comm: &C, strategy: Strategy, outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    assert_eq!(outgoing.len(), comm.size());
    match strategy {
        Strategy::Centralized => exchange_centralized(comm, outgoing),
        Strategy::Distributed => exchange_distributed(comm, outgoing),
    }
}

/// Distributed strategy: all-pairs, two rounds, paper ordering.
pub fn exchange_distributed<C: Comm>(comm: &C, mut outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    let me = comm.rank();
    let n = comm.size();
    let mut incoming: Vec<Vec<u8>> = vec![Vec::new(); n];
    incoming[me] = std::mem::take(&mut outgoing[me]);

    // Round 1: receive from every lower rank (ascending), then send to
    // every higher rank (ascending).
    for src in 0..me {
        incoming[src] = comm.recv(src);
    }
    for dst in me + 1..n {
        comm.send(dst, std::mem::take(&mut outgoing[dst]));
    }
    // Round 2: receive from every higher rank (descending), then send
    // to every lower rank (descending).
    for src in (me + 1..n).rev() {
        incoming[src] = comm.recv(src);
    }
    for dst in (0..me).rev() {
        comm.send(dst, std::mem::take(&mut outgoing[dst]));
    }
    incoming
}

/// Centralized strategy: gather at root, classify by destination,
/// scatter.
pub fn exchange_centralized<C: Comm>(comm: &C, mut outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    const ROOT: usize = 0;
    let me = comm.rank();
    let n = comm.size();
    let mut incoming: Vec<Vec<u8>> = vec![Vec::new(); n];
    incoming[me] = std::mem::take(&mut outgoing[me]);

    // --- gather stage: pack (dest, payload) groups into one message.
    let pack = |outgoing: &[Vec<u8>]| -> Vec<u8> {
        let mut buf = Vec::new();
        for (dst, payload) in outgoing.iter().enumerate() {
            if payload.is_empty() {
                continue;
            }
            buf.extend_from_slice(&(dst as u32).to_le_bytes());
            buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            buf.extend_from_slice(payload);
        }
        buf
    };
    // unpack groups of (dst, payload) out of a gathered message,
    // appending into per-(dst) classified buffers tagged with source.
    fn unpack(buf: &[u8], src: usize, sink: &mut [Vec<(usize, Vec<u8>)>]) {
        let mut off = 0usize;
        while off < buf.len() {
            let dst = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            let len = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()) as usize;
            off += 8;
            sink[dst].push((src, buf[off..off + len].to_vec()));
            off += len;
        }
    }

    if me == ROOT {
        // classified[dst] = list of (src, payload)
        let mut classified: Vec<Vec<(usize, Vec<u8>)>> = vec![Vec::new(); n];
        unpack(&pack(&outgoing), ROOT, &mut classified);
        for src in 0..n {
            if src == ROOT {
                continue;
            }
            let msg = comm.recv(src);
            unpack(&msg, src, &mut classified);
        }
        // --- scatter stage: repack per destination with source tags.
        for (dst, groups) in classified.into_iter().enumerate() {
            let mut buf = Vec::new();
            for (src, payload) in groups {
                buf.extend_from_slice(&(src as u32).to_le_bytes());
                buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                buf.extend_from_slice(&payload);
            }
            if dst == ROOT {
                // deliver locally
                let mut off = 0usize;
                while off < buf.len() {
                    let src =
                        u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
                    off += 4;
                    let len =
                        u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()) as usize;
                    off += 8;
                    incoming[src].extend_from_slice(&buf[off..off + len]);
                    off += len;
                }
            } else {
                comm.send(dst, buf);
            }
        }
    } else {
        comm.send(ROOT, pack(&outgoing));
        let buf = comm.recv(ROOT);
        let mut off = 0usize;
        while off < buf.len() {
            let src = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            let len = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()) as usize;
            off += 8;
            incoming[src].extend_from_slice(&buf[off..off + len]);
            off += len;
        }
    }
    incoming
}

/// Traffic summary for one exchange given the migration byte matrix
/// `matrix[src][dst]` (diagonal ignored). Used by the analytic cluster
/// performance model so the modelled experiments charge exactly the
/// traffic the real protocols generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSummary {
    /// Total point-to-point messages on the network.
    pub transactions: u64,
    /// Total bytes moved over the network.
    pub total_bytes: u64,
    /// Worst per-rank sum of (sent + received) bytes — the serial
    /// bottleneck rank (the root, under the centralized scheme).
    pub max_rank_bytes: u64,
}

/// Predict the traffic of one exchange under `strategy`.
pub fn traffic(strategy: Strategy, matrix: &[Vec<u64>]) -> TrafficSummary {
    let n = matrix.len();
    let mut off_diag = 0u64; // M: bytes that actually change ranks
    let mut sent = vec![0u64; n];
    let mut recvd = vec![0u64; n];
    for (s, row) in matrix.iter().enumerate() {
        assert_eq!(row.len(), n);
        for (d, &b) in row.iter().enumerate() {
            if s != d {
                off_diag += b;
                sent[s] += b;
                recvd[d] += b;
            }
        }
    }
    match strategy {
        Strategy::Distributed => {
            // every ordered pair exchanges exactly one message
            let transactions = (n as u64) * (n as u64 - 1);
            let max_rank = (0..n).map(|r| sent[r] + recvd[r]).max().unwrap_or(0);
            TrafficSummary {
                transactions,
                total_bytes: off_diag,
                max_rank_bytes: max_rank,
            }
        }
        Strategy::Centralized => {
            // N-1 gathers + N-1 scatters; every migrated byte crosses
            // the wire twice unless its source or destination is the
            // root itself.
            let root = 0usize;
            let mut total = 0u64;
            let mut root_bytes = 0u64;
            for (s, row) in matrix.iter().enumerate() {
                for (d, &b) in row.iter().enumerate() {
                    if s == d {
                        continue;
                    }
                    let hops = u64::from(s != root) + u64::from(d != root);
                    total += b * hops;
                    root_bytes += b * hops;
                }
            }
            TrafficSummary {
                transactions: 2 * (n as u64 - 1),
                total_bytes: total,
                max_rank_bytes: root_bytes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::run_world;

    /// Build a deterministic payload for (src → dst).
    fn payload(src: usize, dst: usize) -> Vec<u8> {
        vec![(src * 16 + dst) as u8; (src + 1) * (dst + 2)]
    }

    fn check_all_to_all(strategy: Strategy, n: usize) {
        let results = run_world(n, |c| {
            let outgoing: Vec<Vec<u8>> =
                (0..c.size()).map(|dst| payload(c.rank(), dst)).collect();
            exchange(&c, strategy, outgoing)
        });
        for (dst, incoming) in results.iter().enumerate() {
            assert_eq!(incoming.len(), n);
            for (src, buf) in incoming.iter().enumerate() {
                assert_eq!(buf, &payload(src, dst), "{src} -> {dst}");
            }
        }
    }

    #[test]
    fn distributed_delivers_everything() {
        for n in [1usize, 2, 3, 5, 8] {
            check_all_to_all(Strategy::Distributed, n);
        }
    }

    #[test]
    fn centralized_delivers_everything() {
        for n in [1usize, 2, 3, 5, 8] {
            check_all_to_all(Strategy::Centralized, n);
        }
    }

    #[test]
    fn empty_buffers_allowed() {
        for strategy in [Strategy::Centralized, Strategy::Distributed] {
            let results = run_world(4, move |c| {
                // only rank 1 sends, and only to rank 3
                let mut outgoing = vec![Vec::new(); 4];
                if c.rank() == 1 {
                    outgoing[3] = vec![42u8; 7];
                }
                exchange(&c, strategy, outgoing)
            });
            assert_eq!(results[3][1], vec![42u8; 7]);
            for (dst, inc) in results.iter().enumerate() {
                for (src, buf) in inc.iter().enumerate() {
                    if !(src == 1 && dst == 3) {
                        assert!(buf.is_empty(), "unexpected bytes {src}->{dst}");
                    }
                }
            }
        }
    }

    #[test]
    fn transaction_counts_match_theory() {
        let n = 6;
        for (strategy, expect) in [
            (Strategy::Distributed, (n * (n - 1)) as u64),
            (Strategy::Centralized, 2 * (n as u64 - 1)),
        ] {
            let tx = run_world(n, move |c| {
                c.stats().reset();
                c.barrier();
                let outgoing = vec![vec![1u8; 4]; c.size()];
                let _ = exchange(&c, strategy, outgoing);
                c.barrier();
                c.stats().transactions()
            })[0];
            assert_eq!(tx, expect, "{strategy:?}");
        }
    }

    #[test]
    fn traffic_model_distributed() {
        // 3 ranks, only 0->2 sends 100 bytes
        let mut m = vec![vec![0u64; 3]; 3];
        m[0][2] = 100;
        let t = traffic(Strategy::Distributed, &m);
        assert_eq!(t.transactions, 6);
        assert_eq!(t.total_bytes, 100);
        assert_eq!(t.max_rank_bytes, 100);
    }

    #[test]
    fn traffic_model_centralized_double_hops() {
        let mut m = vec![vec![0u64; 3]; 3];
        m[1][2] = 100; // neither endpoint is root: 2 hops
        m[0][1] = 50; // source is root: 1 hop
        let t = traffic(Strategy::Centralized, &m);
        assert_eq!(t.transactions, 4);
        assert_eq!(t.total_bytes, 250);
        assert_eq!(t.max_rank_bytes, 250);
    }

    #[test]
    fn centralized_moves_more_bytes_distributed_more_messages() {
        // uniform all-to-all migration matrix
        let n = 8usize;
        let m: Vec<Vec<u64>> = (0..n)
            .map(|s| (0..n).map(|d| if s == d { 0 } else { 10 }).collect())
            .collect();
        let cc = traffic(Strategy::Centralized, &m);
        let dc = traffic(Strategy::Distributed, &m);
        assert!(cc.transactions < dc.transactions);
        assert!(cc.total_bytes > dc.total_bytes);
    }
}
