//! The communicator abstraction and traffic accounting.
//!
//! The paper's solver uses MPI point-to-point messaging; here a
//! [`Comm`] is the per-rank endpoint of an in-process message-passing
//! world. Algorithms (collectives, the two particle-exchange
//! strategies) are written against the trait so they run unchanged on
//! the threaded backend, under the chaos wrappers and in tests.
//!
//! Every operation is fallible: a dead peer, a stuck receive or a
//! poisoned shared structure surfaces as a [`CommError`] value instead
//! of a panic, so drivers can tear the world down and restart from a
//! checkpoint (see `coupled`'s recovery path).
//!
//! Every send is accounted in a shared [`CommStats`] so experiments
//! can report *transactions* (message count) and *bytes* — the two
//! quantities the paper's efficiency analysis (§IV-B.3) contrasts
//! between the centralized and distributed strategies.

#[allow(unused_imports)] // doc links
use crate::error::CommError;
use crate::error::CommResult;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Handle for an in-flight nonblocking send started by
/// [`Comm::isend`], completed by [`Comm::wait_send`]. The in-process
/// transports buffer eagerly, so a send completes locally the moment
/// it is posted; the handle exists so protocols written against the
/// MPI-style `Isend`/`Wait` shape also run unchanged over a future
/// rendezvous transport.
#[derive(Debug)]
#[must_use = "complete the send with Comm::wait_send"]
pub struct SendHandle {
    /// Destination rank of the posted send.
    pub to: usize,
}

/// Handle for a pending nonblocking receive started by
/// [`Comm::irecv`]: polled with [`Comm::test_recv`], completed with
/// [`Comm::wait_recv`]. A completed payload is parked inside the
/// handle until the caller collects it.
#[derive(Debug)]
#[must_use = "poll with Comm::test_recv or complete with Comm::wait_recv"]
pub struct RecvHandle {
    /// Source rank the receive is matched against.
    pub from: usize,
    pub(crate) buf: Option<Vec<u8>>,
}

impl RecvHandle {
    /// Whether a payload has already been captured by a successful
    /// [`Comm::test_recv`] poll.
    pub fn ready(&self) -> bool {
        self.buf.is_some()
    }
}

/// Point-to-point message transport for one rank.
///
/// `recv(from)` is *matched by source*, mirroring
/// `MPI_Recv(source=from)`. Sends are buffered (eager) like small-
/// message MPI; the protocols implemented on top still follow the
/// paper's deadlock-avoidance ordering so they would also be correct
/// over a rendezvous transport.
///
/// # Nonblocking operations
///
/// [`Comm::isend`]/[`Comm::irecv`] mirror `MPI_Isend`/`MPI_Irecv`:
/// they return handles that are polled ([`Comm::test_recv`]) or waited
/// on ([`Comm::wait_recv`], [`Comm::wait_send`]). The default
/// implementations are written in terms of `send`/`try_recv`/`recv`,
/// so wrapper transports ([`crate::ChaosComm`], [`crate::ReliableComm`])
/// inherit nonblocking semantics — fault injection, sequencing and
/// retransmission included — without any wrapper-side code.
pub trait Comm {
    /// This rank's id, `0..size`.
    fn rank(&self) -> usize;
    /// Number of ranks in the world.
    fn size(&self) -> usize;
    /// Send `msg` to rank `to`.
    fn send(&self, to: usize, msg: Vec<u8>) -> CommResult<()>;
    /// Receive the next message sent by rank `from`.
    fn recv(&self, from: usize) -> CommResult<Vec<u8>>;
    /// Non-blocking receive: the next message rank `from` sent us, if
    /// one is already queued (`Ok(None)` = nothing queued). Callers
    /// must fence with [`Comm::barrier`] to know the set of queued
    /// messages is complete (used by the sparse counts round, where
    /// "no message" means "zero bytes").
    fn try_recv(&self, from: usize) -> CommResult<Option<Vec<u8>>>;
    /// Send from a borrowed slice. Transports that must own their
    /// payload copy here; the caller's buffer stays available for
    /// reuse, which is what keeps the exchange path allocation-free in
    /// steady state.
    fn send_from(&self, to: usize, msg: &[u8]) -> CommResult<()> {
        self.send(to, msg.to_vec())
    }
    /// Receive into a caller-supplied buffer (cleared first, capacity
    /// retained). The reusable-buffer counterpart of [`Comm::recv`].
    fn recv_into(&self, from: usize, buf: &mut Vec<u8>) -> CommResult<()> {
        let msg = self.recv(from)?;
        buf.clear();
        buf.extend_from_slice(&msg);
        Ok(())
    }
    /// Block until every rank has entered the barrier (or the world
    /// has failed: a dead rank can never arrive, so a broken barrier
    /// reports the failure instead of hanging).
    fn barrier(&self) -> CommResult<()>;
    /// Fault-tolerance hook: a new engine step begins. Transports with
    /// a fault plan fire their scheduled per-step events here (rank
    /// stall sleeps in place and returns `Ok`; rank kill declares this
    /// endpoint dead and returns [`CommError::Killed`]). The default
    /// transport has no scheduled faults and does nothing.
    fn on_step(&self, step: usize) -> CommResult<()> {
        let _ = step;
        Ok(())
    }
    /// Fault-tolerance hook: declare this rank dead to the rest of the
    /// world (peers' pending and future operations involving it fail
    /// promptly with [`CommError::PeerDead`] instead of hanging).
    /// Called when a rank latches an unrecoverable fault so the world
    /// collapses deterministically. Default: no-op.
    fn abort(&self) {}
    /// Shared traffic statistics for the whole world.
    fn stats(&self) -> &CommStats;

    // --- nonblocking surface ----------------------------------------

    /// Post a nonblocking send of `msg` to rank `to` (MPI `Isend`).
    /// The in-process transports buffer eagerly, so the default posts
    /// via [`Comm::send`] and the returned handle is already complete.
    fn isend(&self, to: usize, msg: Vec<u8>) -> CommResult<SendHandle> {
        self.send(to, msg)?;
        Ok(SendHandle { to })
    }

    /// Complete a posted send (MPI `Wait` on a send request). Eager
    /// transports have nothing left to do.
    fn wait_send(&self, handle: SendHandle) -> CommResult<()> {
        let _ = handle;
        Ok(())
    }

    /// Post a nonblocking receive matched against rank `from` (MPI
    /// `Irecv`). Never fails by itself: matching happens at poll/wait
    /// time.
    fn irecv(&self, from: usize) -> RecvHandle {
        RecvHandle { from, buf: None }
    }

    /// Poll a pending receive (MPI `Test`): captures the next queued
    /// message from the handle's source, if any. Returns whether the
    /// handle now holds a payload.
    fn test_recv(&self, handle: &mut RecvHandle) -> CommResult<bool> {
        if handle.buf.is_none() {
            handle.buf = self.try_recv(handle.from)?;
        }
        Ok(handle.buf.is_some())
    }

    /// Complete a pending receive (MPI `Wait`): the captured payload
    /// if a poll already matched one, otherwise a blocking
    /// [`Comm::recv`] — so a stalled receive surfaces the transport's
    /// enriched [`CommError::Timeout`] (pending source and sequence).
    fn wait_recv(&self, mut handle: RecvHandle) -> CommResult<Vec<u8>> {
        match handle.buf.take() {
            Some(msg) => Ok(msg),
            None => self.recv(handle.from),
        }
    }

    /// Return an already-received message to the *front* of the
    /// receive queue for `from` (MPI's unexpected-message queue): the
    /// next `recv`/`try_recv` matched against `from` yields it first.
    /// Used by fence-and-drain protocols that probe a source and find
    /// a frame belonging to a later round.
    fn pushback(&self, from: usize, msg: Vec<u8>);

    /// Per-endpoint collective-epoch counter: returns the current
    /// epoch and advances it. Matched collectives call this exactly
    /// once per rank per round, so all endpoints stay in lockstep and
    /// an early frame from round `E+1` can be told apart from round
    /// `E`'s. Stateless transports may return a constant, which only
    /// forfeits the cross-round discrimination.
    fn next_epoch(&self) -> u64 {
        0
    }
}

/// World-wide traffic counters (lock-free).
#[derive(Debug, Default)]
pub struct CommStats {
    transactions: AtomicU64,
    bytes: AtomicU64,
}

impl CommStats {
    pub fn new() -> Arc<Self> {
        Arc::new(CommStats::default())
    }

    /// Record one message of `len` bytes.
    #[inline]
    pub fn record(&self, len: usize) {
        self.transactions.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Total messages sent in this world so far.
    pub fn transactions(&self) -> u64 {
        self.transactions.load(Ordering::Relaxed)
    }

    /// Total bytes sent in this world so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Reset both counters (between experiment phases).
    pub fn reset(&self) {
        self.transactions.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_reset() {
        let s = CommStats::new();
        s.record(100);
        s.record(28);
        assert_eq!(s.transactions(), 2);
        assert_eq!(s.bytes(), 128);
        s.reset();
        assert_eq!(s.transactions(), 0);
        assert_eq!(s.bytes(), 0);
    }
}
