//! The communicator abstraction and traffic accounting.
//!
//! The paper's solver uses MPI point-to-point messaging; here a
//! [`Comm`] is the per-rank endpoint of an in-process message-passing
//! world. Algorithms (collectives, the two particle-exchange
//! strategies) are written against the trait so they run unchanged on
//! the threaded backend, under the chaos wrappers and in tests.
//!
//! Every operation is fallible: a dead peer, a stuck receive or a
//! poisoned shared structure surfaces as a [`CommError`] value instead
//! of a panic, so drivers can tear the world down and restart from a
//! checkpoint (see `coupled`'s recovery path).
//!
//! Every send is accounted in a shared [`CommStats`] so experiments
//! can report *transactions* (message count) and *bytes* — the two
//! quantities the paper's efficiency analysis (§IV-B.3) contrasts
//! between the centralized and distributed strategies.

#[allow(unused_imports)] // doc links
use crate::error::CommError;
use crate::error::CommResult;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Point-to-point message transport for one rank.
///
/// `recv(from)` is *matched by source*, mirroring
/// `MPI_Recv(source=from)`. Sends are buffered (eager) like small-
/// message MPI; the protocols implemented on top still follow the
/// paper's deadlock-avoidance ordering so they would also be correct
/// over a rendezvous transport.
pub trait Comm {
    /// This rank's id, `0..size`.
    fn rank(&self) -> usize;
    /// Number of ranks in the world.
    fn size(&self) -> usize;
    /// Send `msg` to rank `to`.
    fn send(&self, to: usize, msg: Vec<u8>) -> CommResult<()>;
    /// Receive the next message sent by rank `from`.
    fn recv(&self, from: usize) -> CommResult<Vec<u8>>;
    /// Non-blocking receive: the next message rank `from` sent us, if
    /// one is already queued (`Ok(None)` = nothing queued). Callers
    /// must fence with [`Comm::barrier`] to know the set of queued
    /// messages is complete (used by the sparse counts round, where
    /// "no message" means "zero bytes").
    fn try_recv(&self, from: usize) -> CommResult<Option<Vec<u8>>>;
    /// Send from a borrowed slice. Transports that must own their
    /// payload copy here; the caller's buffer stays available for
    /// reuse, which is what keeps the exchange path allocation-free in
    /// steady state.
    fn send_from(&self, to: usize, msg: &[u8]) -> CommResult<()> {
        self.send(to, msg.to_vec())
    }
    /// Receive into a caller-supplied buffer (cleared first, capacity
    /// retained). The reusable-buffer counterpart of [`Comm::recv`].
    fn recv_into(&self, from: usize, buf: &mut Vec<u8>) -> CommResult<()> {
        let msg = self.recv(from)?;
        buf.clear();
        buf.extend_from_slice(&msg);
        Ok(())
    }
    /// Block until every rank has entered the barrier (or the world
    /// has failed: a dead rank can never arrive, so a broken barrier
    /// reports the failure instead of hanging).
    fn barrier(&self) -> CommResult<()>;
    /// Fault-tolerance hook: a new engine step begins. Transports with
    /// a fault plan fire their scheduled per-step events here (rank
    /// stall sleeps in place and returns `Ok`; rank kill declares this
    /// endpoint dead and returns [`CommError::Killed`]). The default
    /// transport has no scheduled faults and does nothing.
    fn on_step(&self, step: usize) -> CommResult<()> {
        let _ = step;
        Ok(())
    }
    /// Fault-tolerance hook: declare this rank dead to the rest of the
    /// world (peers' pending and future operations involving it fail
    /// promptly with [`CommError::PeerDead`] instead of hanging).
    /// Called when a rank latches an unrecoverable fault so the world
    /// collapses deterministically. Default: no-op.
    fn abort(&self) {}
    /// Shared traffic statistics for the whole world.
    fn stats(&self) -> &CommStats;
}

/// World-wide traffic counters (lock-free).
#[derive(Debug, Default)]
pub struct CommStats {
    transactions: AtomicU64,
    bytes: AtomicU64,
}

impl CommStats {
    pub fn new() -> Arc<Self> {
        Arc::new(CommStats::default())
    }

    /// Record one message of `len` bytes.
    #[inline]
    pub fn record(&self, len: usize) {
        self.transactions.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Total messages sent in this world so far.
    pub fn transactions(&self) -> u64 {
        self.transactions.load(Ordering::Relaxed)
    }

    /// Total bytes sent in this world so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Reset both counters (between experiment phases).
    pub fn reset(&self) {
        self.transactions.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_reset() {
        let s = CommStats::new();
        s.record(100);
        s.record(28);
        assert_eq!(s.transactions(), 2);
        assert_eq!(s.bytes(), 128);
        s.reset();
        assert_eq!(s.transactions(), 0);
        assert_eq!(s.bytes(), 0);
    }
}
