//! Collective operations built on point-to-point messaging.
//!
//! The coupled solver needs: barrier (inherited from [`Comm`]),
//! gather/scatter through a root (the backbone of the centralized
//! exchange), broadcast, and an all-reduce for charge-density boundary
//! sums and residual norms in the distributed Poisson solve.
//!
//! Every collective is fallible: a communication fault on any hop
//! propagates as a [`crate::CommError`] so the driver can
//! abort the world and recover, instead of a rank panicking mid-
//! collective and poisoning everything it shared.

use crate::comm::Comm;
use crate::error::{take_u64, CommError, CommResult};

/// Read one little-endian `f64` off the front of `buf`.
fn take_f64(buf: &mut &[u8], what: &'static str) -> CommResult<f64> {
    Ok(f64::from_bits(take_u64(buf, what)?))
}

/// Gather each rank's buffer at `root`. Returns `Some(buffers)` (in
/// rank order, including the root's own) on the root, `None`
/// elsewhere.
pub fn gather<C: Comm>(comm: &C, root: usize, mine: Vec<u8>) -> CommResult<Option<Vec<Vec<u8>>>> {
    if comm.rank() == root {
        let mut all = vec![Vec::new(); comm.size()];
        all[root] = mine;
        for (r, slot) in all.iter_mut().enumerate() {
            if r != root {
                *slot = comm.recv(r)?;
            }
        }
        Ok(Some(all))
    } else {
        comm.send(root, mine)?;
        Ok(None)
    }
}

/// Scatter one buffer per rank from `root`. Non-root ranks pass
/// `None` and receive their slice; root passes `Some(buffers)`.
///
/// Panics if the root passes `None` or the wrong number of buffers —
/// that is API misuse by the caller, not a communication fault.
pub fn scatter<C: Comm>(comm: &C, root: usize, bufs: Option<Vec<Vec<u8>>>) -> CommResult<Vec<u8>> {
    if comm.rank() == root {
        let mut bufs = bufs.expect("root must provide buffers");
        assert_eq!(bufs.len(), comm.size());
        let mine = std::mem::take(&mut bufs[root]);
        for (r, b) in bufs.into_iter().enumerate() {
            if r != root {
                comm.send(r, b)?;
            }
        }
        Ok(mine)
    } else {
        comm.recv(root)
    }
}

/// Broadcast `msg` from `root` to all ranks (returns the message on
/// every rank).
///
/// Panics if the root passes `None` — API misuse, not a comm fault.
pub fn broadcast<C: Comm>(comm: &C, root: usize, msg: Option<Vec<u8>>) -> CommResult<Vec<u8>> {
    if comm.rank() == root {
        let msg = msg.expect("root must provide the message");
        for r in 0..comm.size() {
            if r != root {
                comm.send(r, msg.clone())?;
            }
        }
        Ok(msg)
    } else {
        comm.recv(root)
    }
}

/// All-reduce a vector of f64 by element-wise summation. Every rank
/// receives the full sum. (Gather-reduce-broadcast through rank 0 —
/// the topology-oblivious scheme, adequate for the rank counts the
/// threaded backend runs at.)
pub fn allreduce_sum_f64<C: Comm>(comm: &C, mine: &[f64]) -> CommResult<Vec<f64>> {
    let len = mine.len();
    let bytes: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
    let gathered = gather(comm, 0, bytes)?;
    let reduced = if let Some(bufs) = gathered {
        let mut acc = vec![0.0f64; len];
        for buf in bufs {
            if buf.len() != len * 8 {
                return Err(CommError::Malformed {
                    what: "allreduce_sum_f64 contribution",
                });
            }
            let mut cur = buf.as_slice();
            for a in acc.iter_mut() {
                *a += take_f64(&mut cur, "allreduce_sum_f64 element")?;
            }
        }
        Some(acc.iter().flat_map(|v| v.to_le_bytes()).collect())
    } else {
        None
    };
    let out = broadcast(comm, 0, reduced)?;
    let mut cur = out.as_slice();
    let mut result = Vec::with_capacity(len);
    for _ in 0..len {
        result.push(take_f64(&mut cur, "allreduce_sum_f64 result")?);
    }
    Ok(result)
}

/// All-reduce a single scalar by max.
pub fn allreduce_max_f64<C: Comm>(comm: &C, mine: f64) -> CommResult<f64> {
    let gathered = gather(comm, 0, mine.to_le_bytes().to_vec())?;
    let reduced = if let Some(bufs) = gathered {
        let mut m = f64::NEG_INFINITY;
        for b in &bufs {
            let mut cur = b.as_slice();
            m = m.max(take_f64(&mut cur, "allreduce_max_f64 contribution")?);
        }
        Some(m.to_le_bytes().to_vec())
    } else {
        None
    };
    let out = broadcast(comm, 0, reduced)?;
    take_f64(&mut out.as_slice(), "allreduce_max_f64 result")
}

/// Wire magic stamped on every [`alltoall_u64`] value frame, so a
/// fence-and-drain receiver can tell the round's frames from anything
/// a faster peer posted for a *later* protocol phase.
const ALLTOALL_MAGIC: u8 = 0xA2;

/// Probe one queued frame from `src` and keep it only if `accept`
/// likes its header bytes. A frame that fails the predicate is
/// returned to the front of `src`'s queue with [`Comm::pushback`] —
/// it belongs to a later round or phase and must be seen again by
/// that round's drain. `Ok(None)` means "nothing acceptable queued",
/// which fence-and-drain protocols read as "this source posted
/// nothing this round".
///
/// Shared by the sparse counts round ([`alltoall_u64`]) and the
/// hierarchical exchange's per-phase drains
/// ([`crate::Strategy::Hier`]): every fence-and-drain in the crate
/// funnels through this one helper.
pub(crate) fn drain_tagged<C: Comm>(
    comm: &C,
    src: usize,
    accept: impl Fn(&[u8]) -> bool,
) -> CommResult<Option<Vec<u8>>> {
    match comm.try_recv(src)? {
        Some(frame) if accept(&frame) => Ok(Some(frame)),
        Some(frame) => {
            comm.pushback(src, frame);
            Ok(None)
        }
        None => Ok(None),
    }
}

/// Sparse all-to-all of one `u64` per destination: rank `d` receives
/// `mine[d]` of every source, as `out[src]` (the column of the
/// world-wide matrix addressed to it). **Zero entries cost no
/// message**: senders post only the nonzero values as nonblocking
/// sends tagged `[magic][epoch][value]`, one barrier fences the
/// round, and receivers drain queued frames with the tagged drain —
/// absence of an acceptable frame *is* the zero. The per-endpoint
/// [`Comm::next_epoch`] stamp replaces the old trailing barrier: a
/// peer that races into the next round posts frames carrying the next
/// epoch, which the drain pushes back unread instead of mistaking for
/// this round's value. This is the counts-first round of the sparse
/// exchange (§IV-B): on a quiet step its transaction count is
/// proportional to the nonzero pairs, not to `N²`.
pub fn alltoall_u64<C: Comm>(comm: &C, mine: &[u64]) -> CommResult<Vec<u64>> {
    let me = comm.rank();
    let n = comm.size();
    assert_eq!(mine.len(), n);
    let epoch = comm.next_epoch();
    let mut pending = Vec::new();
    for (d, &v) in mine.iter().enumerate() {
        if d != me && v != 0 {
            let mut frame = Vec::with_capacity(17);
            frame.push(ALLTOALL_MAGIC);
            frame.extend_from_slice(&epoch.to_le_bytes());
            frame.extend_from_slice(&v.to_le_bytes());
            pending.push(comm.isend(d, frame)?);
        }
    }
    for h in pending {
        comm.wait_send(h)?;
    }
    // The only fence: after it, every frame of this round is queued.
    comm.barrier()?;
    let mut out = vec![0u64; n];
    out[me] = mine[me];
    for (s, slot) in out.iter_mut().enumerate() {
        if s == me {
            continue;
        }
        // at most one acceptable frame per source this round; per-pair
        // FIFO puts it ahead of anything the source posted afterwards
        let mine_this_round = |hdr: &[u8]| {
            hdr.len() == 17 && hdr[0] == ALLTOALL_MAGIC && hdr[1..9] == epoch.to_le_bytes()
        };
        if let Some(frame) = drain_tagged(comm, s, mine_this_round)? {
            *slot = take_u64(&mut &frame[9..], "alltoall_u64 value")?;
        }
    }
    Ok(out)
}

/// All-reduce a vector of u64 by element-wise summation — the
/// lossless counterpart of [`allreduce_sum_f64`] for particle counts
/// (a count round-tripped through f64 silently loses precision past
/// 2^53).
pub fn allreduce_sum_u64<C: Comm>(comm: &C, mine: &[u64]) -> CommResult<Vec<u64>> {
    let len = mine.len();
    let bytes: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
    let gathered = gather(comm, 0, bytes)?;
    let reduced = if let Some(bufs) = gathered {
        let mut acc = vec![0u64; len];
        for buf in bufs {
            if buf.len() != len * 8 {
                return Err(CommError::Malformed {
                    what: "allreduce_sum_u64 contribution",
                });
            }
            let mut cur = buf.as_slice();
            for a in acc.iter_mut() {
                *a += take_u64(&mut cur, "allreduce_sum_u64 element")?;
            }
        }
        Some(acc.iter().flat_map(|v| v.to_le_bytes()).collect())
    } else {
        None
    };
    let out = broadcast(comm, 0, reduced)?;
    let mut cur = out.as_slice();
    let mut result = Vec::with_capacity(len);
    for _ in 0..len {
        result.push(take_u64(&mut cur, "allreduce_sum_u64 result")?);
    }
    Ok(result)
}

/// All-gather a fixed-size slice of f64 from every rank. Returns the
/// concatenation in rank order (`size() * mine.len()` values) on all
/// ranks. Every rank must contribute the same number of values. Used
/// to share measured per-rank phase times for the load-imbalance
/// indicator.
pub fn allgather_f64<C: Comm>(comm: &C, mine: &[f64]) -> CommResult<Vec<f64>> {
    let len = mine.len();
    let bytes: Vec<u8> = mine.iter().flat_map(|v| v.to_le_bytes()).collect();
    let gathered = gather(comm, 0, bytes)?;
    let packed = if let Some(bufs) = gathered {
        let mut out = Vec::with_capacity(comm.size() * len * 8);
        for b in bufs {
            if b.len() != len * 8 {
                return Err(CommError::Malformed {
                    what: "ragged allgather_f64 contribution",
                });
            }
            out.extend_from_slice(&b);
        }
        Some(out)
    } else {
        None
    };
    let out = broadcast(comm, 0, packed)?;
    let mut cur = out.as_slice();
    let mut result = Vec::with_capacity(comm.size() * len);
    for _ in 0..comm.size() * len {
        result.push(take_f64(&mut cur, "allgather_f64 result")?);
    }
    Ok(result)
}

/// All-gather a u64 from every rank (returned in rank order on all
/// ranks). Used for global particle counts and the load-imbalance
/// indicator.
pub fn allgather_u64<C: Comm>(comm: &C, mine: u64) -> CommResult<Vec<u64>> {
    let gathered = gather(comm, 0, mine.to_le_bytes().to_vec())?;
    let packed = if let Some(bufs) = gathered {
        let mut out = Vec::with_capacity(comm.size() * 8);
        for b in bufs {
            if b.len() != 8 {
                return Err(CommError::Malformed {
                    what: "allgather_u64 contribution",
                });
            }
            out.extend_from_slice(&b);
        }
        Some(out)
    } else {
        None
    };
    let out = broadcast(comm, 0, packed)?;
    let mut cur = out.as_slice();
    let mut result = Vec::with_capacity(comm.size());
    for _ in 0..comm.size() {
        result.push(take_u64(&mut cur, "allgather_u64 result")?);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::run_world;

    #[test]
    fn gather_scatter_roundtrip() {
        let out = run_world(4, |c| {
            let mine = vec![c.rank() as u8; c.rank() + 1];
            let gathered = gather(&c, 0, mine).unwrap();
            if c.rank() == 0 {
                let g = gathered.unwrap();
                assert_eq!(g.len(), 4);
                for (r, b) in g.iter().enumerate() {
                    assert_eq!(b.len(), r + 1);
                    assert!(b.iter().all(|&x| x == r as u8));
                }
                // scatter back doubled buffers
                let bufs: Vec<Vec<u8>> = g.iter().map(|b| b.repeat(2)).collect();
                scatter(&c, 0, Some(bufs)).unwrap()
            } else {
                scatter(&c, 0, None).unwrap()
            }
        });
        for (r, b) in out.iter().enumerate() {
            assert_eq!(b.len(), 2 * (r + 1));
        }
    }

    #[test]
    fn broadcast_reaches_all() {
        let out = run_world(5, |c| {
            let msg = if c.rank() == 2 {
                Some(b"hello".to_vec())
            } else {
                None
            };
            broadcast(&c, 2, msg).unwrap()
        });
        assert!(out.iter().all(|m| m == b"hello"));
    }

    #[test]
    fn allreduce_sums_vectors() {
        let out = run_world(3, |c| {
            let mine = vec![c.rank() as f64, 1.0];
            allreduce_sum_f64(&c, &mine).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn allreduce_max() {
        let out = run_world(4, |c| allreduce_max_f64(&c, c.rank() as f64 * 1.5).unwrap());
        assert!(out.iter().all(|&v| v == 4.5));
    }

    #[test]
    fn alltoall_delivers_columns() {
        let n = 5usize;
        let out = run_world(n, |c| {
            // mine[d] = 100*me + d, except a band of zeros
            let mine: Vec<u64> = (0..c.size())
                .map(|d| {
                    if (c.rank() + d) % 3 == 0 {
                        0
                    } else {
                        (100 * c.rank() + d) as u64
                    }
                })
                .collect();
            alltoall_u64(&c, &mine).unwrap()
        });
        for (d, col) in out.iter().enumerate() {
            for (s, &v) in col.iter().enumerate() {
                let want = if (s + d) % 3 == 0 {
                    0
                } else {
                    (100 * s + d) as u64
                };
                assert_eq!(v, want, "{s} -> {d}");
            }
        }
    }

    #[test]
    fn alltoall_zero_entries_cost_no_messages() {
        let tx = run_world(6, |c| {
            c.stats().reset();
            c.barrier().unwrap();
            // only rank 2 posts anything: one value to rank 5
            let mut mine = vec![0u64; 6];
            if c.rank() == 2 {
                mine[5] = 77;
            }
            let out = alltoall_u64(&c, &mine).unwrap();
            if c.rank() == 5 {
                assert_eq!(out[2], 77);
            }
            assert!(out.iter().enumerate().all(|(s, &v)| v == 0 || s == 2));
            c.barrier().unwrap();
            c.stats().transactions()
        })[0];
        assert_eq!(tx, 1, "one nonzero entry = one message");
    }

    #[test]
    fn back_to_back_alltoalls_do_not_interleave() {
        let out = run_world(4, |c| {
            let a: Vec<u64> = (0..4).map(|d| (c.rank() * 10 + d) as u64).collect();
            let first = alltoall_u64(&c, &a).unwrap();
            let b: Vec<u64> = (0..4).map(|d| (c.rank() * 1000 + d) as u64).collect();
            let second = alltoall_u64(&c, &b).unwrap();
            (first, second)
        });
        for (d, (f, s)) in out.iter().enumerate() {
            for src in 0..4 {
                assert_eq!(f[src], (src * 10 + d) as u64);
                assert_eq!(s[src], (src * 1000 + d) as u64);
            }
        }
    }

    #[test]
    fn allreduce_u64_is_lossless() {
        // 2^53 + rank is not representable round-tripped through f64;
        // the u64 reduction must keep every bit
        let out = run_world(3, |c| {
            let mine = vec![(1u64 << 53) + c.rank() as u64, c.rank() as u64];
            allreduce_sum_u64(&c, &mine).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![3 * (1u64 << 53) + 3, 3]);
        }
    }

    #[test]
    fn allgather_f64_concatenates_in_rank_order() {
        let out = run_world(3, |c| {
            let r = c.rank() as f64;
            allgather_f64(&c, &[r, r + 0.5]).unwrap()
        });
        for v in out {
            assert_eq!(v, vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5]);
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        let out = run_world(4, |c| allgather_u64(&c, (c.rank() * 10) as u64).unwrap());
        for v in out {
            assert_eq!(v, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn ragged_contribution_is_malformed_not_a_panic() {
        // rank 1 contributes the wrong element count; the root must
        // report Malformed (and abort so nobody hangs), not panic
        let out = run_world(2, |c| {
            if c.rank() == 0 {
                let r = allreduce_sum_f64(&c, &[0.0, 0.0]);
                c.abort(); // release the peer waiting on the broadcast
                r
            } else {
                // deliberately ragged: 1 element instead of 2
                allreduce_sum_f64(&c, &[1.0])
            }
        });
        assert_eq!(
            out[0],
            Err(CommError::Malformed {
                what: "allreduce_sum_f64 contribution"
            })
        );
        assert!(out[1].is_err());
    }
}
