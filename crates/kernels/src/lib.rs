//! Intra-rank parallel kernel layer: a chunked scoped-thread worker
//! pool shared by the hot DSMC/PIC kernels (move, collide, deposit,
//! push, SpMV) plus deterministic reduction and RNG-forking helpers.
//!
//! Design constraints (see DESIGN.md "Single-node performance"):
//!
//! * **No external threading runtime.** rayon is not on the approved
//!   dependency list and crossbeam is vendored as a channel-only stub,
//!   so the pool is built directly on `std::thread::scope` (stable
//!   since 1.63) — the same structured-concurrency primitive
//!   `crossbeam::scope` provides. Threads are spawned per parallel
//!   region; at the 10⁴–10⁶-particle workloads of a paper-scale rank
//!   the ~10 µs spawn cost is noise against ms-scale kernels.
//! * **Serial fallback is bit-identical.** A [`Pool`] with one worker
//!   never spawns and callers route through the untouched serial
//!   kernels, so `threads_per_rank = 1` (the default) reproduces the
//!   pre-existing results exactly.
//! * **Deterministic reductions.** [`Pool::par_map_reduce`] maps over
//!   *fixed-size blocks* whose boundaries do not depend on the worker
//!   count and folds block results in block-index order, so its output
//!   is identical for any worker count (given a pure map function).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Contiguous near-equal split of `0..n` into at most `parts` ranges
/// (fewer when `n < parts`; never empty ranges).
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Carve `data` into disjoint consecutive mutable sub-slices with the
/// lengths of `ranges` (contiguous from 0, as produced by
/// [`chunk_ranges`]). Multi-lane SoA kernels call this once per scalar
/// lane to hand each worker chunk a set of parallel `&mut [f64]`
/// slices without unsafe code.
pub fn carve_mut<'a, T>(ranges: &[Range<usize>], data: &'a mut [T]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut rest = data;
    for r in ranges {
        let (head, tail) = rest.split_at_mut(r.len());
        out.push(head);
        rest = tail;
    }
    debug_assert!(rest.is_empty(), "ranges must cover the whole slice");
    out
}

/// Deterministically fork an independent RNG stream for a worker
/// chunk. Distinct `(base, lane)` pairs give well-separated streams;
/// the same pair always gives the same stream, so chunked kernels
/// stay reproducible for a fixed worker count.
pub fn fork_rng(base: u64, lane: u64) -> StdRng {
    // golden-ratio mixing keeps lanes far apart even for small bases
    let mixed = base
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(lane.wrapping_mul(0xD1B54A32D192ED03))
        .rotate_left(29)
        ^ lane;
    StdRng::seed_from_u64(mixed)
}

/// Scoped-thread worker pool of a fixed width. Clones share the
/// per-lane busy-time accounting.
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
    /// Cumulative busy nanoseconds per lane (lane = chunk/group
    /// index; serial fast paths charge lane 0).
    busy: Arc<Vec<AtomicU64>>,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::serial()
    }
}

impl Pool {
    /// Pool with `workers` lanes (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Pool {
            workers,
            busy: Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Single-lane pool: every `par_*` call runs inline on the caller
    /// thread with no spawns.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Cumulative busy time per lane, in seconds — kernel work only
    /// (spawn/join overhead and idle tail-wait excluded), so the
    /// spread across lanes shows intra-rank imbalance.
    pub fn busy_seconds(&self) -> Vec<f64> {
        self.busy
            .iter()
            .map(|b| b.load(Ordering::Relaxed) as f64 * 1e-9)
            .collect()
    }

    /// Reset the per-lane busy counters.
    pub fn reset_busy(&self) {
        for b in self.busy.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }

    #[inline]
    fn charge(&self, lane: usize, started: Instant) {
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.busy[lane.min(self.workers - 1)].fetch_add(ns, Ordering::Relaxed);
    }

    /// Split `data` into one contiguous chunk per worker and run
    /// `f(chunk_index, start_offset, chunk)` on each, returning the
    /// per-chunk results in chunk order.
    pub fn par_chunks_mut<T, R, F>(&self, data: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, usize, &mut [T]) -> R + Sync,
    {
        let ranges = chunk_ranges(data.len(), self.workers);
        if ranges.len() <= 1 {
            let started = Instant::now();
            let r = f(0, 0, data);
            self.charge(0, started);
            return vec![r];
        }
        // carve `data` into disjoint &mut chunks
        let mut parts: Vec<(usize, &mut [T])> = Vec::with_capacity(ranges.len());
        let mut rest = data;
        let mut offset = 0usize;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            parts.push((offset, head));
            offset += r.len();
            rest = tail;
        }
        self.run_parts(parts, |ci, (off, chunk)| f(ci, off, chunk))
    }

    /// Run `f(part_index, part)` over an explicit list of parts
    /// (worker threads take contiguous groups); results in part order.
    pub fn run_parts<T, R, F>(&self, parts: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = parts.len();
        if self.workers == 1 || n <= 1 {
            let started = Instant::now();
            let out = parts
                .into_iter()
                .enumerate()
                .map(|(i, p)| f(i, p))
                .collect();
            self.charge(0, started);
            return out;
        }
        let groups = chunk_ranges(n, self.workers);
        let mut indexed: Vec<Vec<(usize, T)>> = Vec::with_capacity(groups.len());
        let mut it = parts.into_iter().enumerate();
        for g in &groups {
            indexed.push((&mut it).take(g.len()).collect());
        }
        let f = &f;
        let grouped: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = indexed
                .into_iter()
                .enumerate()
                .map(|(lane, group)| {
                    scope.spawn(move || {
                        let started = Instant::now();
                        let out = group
                            .into_iter()
                            .map(|(i, p)| (i, f(i, p)))
                            .collect::<Vec<_>>();
                        self.charge(lane, started);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("kernel worker panicked"))
                .collect()
        });
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for group in grouped {
            for (i, r) in group {
                out[i] = Some(r);
            }
        }
        out.into_iter().map(|r| r.unwrap()).collect()
    }

    /// Deterministic parallel map-reduce over `0..n` in fixed-size
    /// blocks: `map` runs on each block range (parallel, pure), `fold`
    /// combines block results **in block-index order** on the caller
    /// thread. Because block boundaries depend only on `block`, the
    /// result is bitwise identical for every worker count.
    pub fn par_map_reduce<R, A, M, F>(
        &self,
        n: usize,
        block: usize,
        map: M,
        init: A,
        mut fold: F,
    ) -> A
    where
        R: Send,
        M: Fn(Range<usize>) -> R + Sync,
        F: FnMut(A, R) -> A,
    {
        assert!(block > 0);
        let nblocks = n.div_ceil(block);
        if self.workers == 1 || nblocks <= 1 {
            let started = Instant::now();
            let mut acc = init;
            for b in 0..nblocks {
                let r = b * block..((b + 1) * block).min(n);
                acc = fold(acc, map(r));
            }
            self.charge(0, started);
            return acc;
        }
        let blocks: Vec<Range<usize>> = (0..nblocks)
            .map(|b| b * block..((b + 1) * block).min(n))
            .collect();
        let results = self.run_parts(blocks, |_, r| map(r));
        results.into_iter().fold(init, fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chunk_ranges_cover_everything() {
        for n in [0usize, 1, 5, 16, 17, 1000] {
            for p in [1usize, 2, 3, 4, 7, 32] {
                let rs = chunk_ranges(n, p);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} p={p}");
                let mut expect = 0usize;
                for r in &rs {
                    assert_eq!(r.start, expect);
                    assert!(!r.is_empty());
                    expect = r.end;
                }
                // near-equal: sizes differ by at most 1
                if let (Some(min), Some(max)) = (
                    rs.iter().map(|r| r.len()).min(),
                    rs.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn carve_mut_partitions_parallel_lanes_identically() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let ranges = chunk_ranges(100, 7);
        let ca = carve_mut(&ranges, &mut a);
        let cb = carve_mut(&ranges, &mut b);
        assert_eq!(ca.len(), ranges.len());
        assert_eq!(ca.iter().map(|s| s.len()).sum::<usize>(), 100);
        for (sa, sb) in ca.iter().zip(&cb) {
            assert_eq!(sa.len(), sb.len(), "lanes must chunk in lockstep");
        }
        // first element of each chunk matches its range start
        for (s, r) in ca.iter().zip(&ranges) {
            assert_eq!(s[0] as usize, r.start);
        }
    }

    #[test]
    fn par_chunks_mut_equals_serial() {
        let mut serial: Vec<u64> = (0..10_000).collect();
        for v in serial.iter_mut() {
            *v = v.wrapping_mul(3).wrapping_add(1);
        }
        for workers in [1usize, 2, 4, 7] {
            let mut par: Vec<u64> = (0..10_000).collect();
            let pool = Pool::new(workers);
            let chunk_count = pool
                .par_chunks_mut(&mut par, |_, _, chunk| {
                    for v in chunk.iter_mut() {
                        *v = v.wrapping_mul(3).wrapping_add(1);
                    }
                    chunk.len()
                })
                .len();
            assert!(chunk_count <= workers.max(1));
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn par_chunks_offsets_are_global() {
        let mut data = vec![0usize; 1000];
        Pool::new(4).par_chunks_mut(&mut data, |_, off, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = off + k;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn map_reduce_is_worker_count_invariant() {
        // floating-point sum: identical bits for every worker count
        let xs: Vec<f64> = (0..40_000)
            .map(|i| ((i * 37) % 1009) as f64 * 1e-3)
            .collect();
        let sum_with = |workers: usize| {
            Pool::new(workers).par_map_reduce(
                xs.len(),
                1024,
                |r| xs[r].iter().sum::<f64>(),
                0.0f64,
                |a, b| a + b,
            )
        };
        let s1 = sum_with(1);
        for w in [2usize, 3, 4, 8] {
            assert_eq!(s1.to_bits(), sum_with(w).to_bits(), "workers={w}");
        }
    }

    #[test]
    fn run_parts_preserves_order() {
        let parts: Vec<usize> = (0..37).collect();
        let out = Pool::new(5).run_parts(parts, |i, p| {
            assert_eq!(i, p);
            p * 2
        });
        assert_eq!(out, (0..37).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn busy_time_accumulates_per_lane() {
        let pool = Pool::new(3);
        assert_eq!(pool.busy_seconds(), vec![0.0; 3]);
        let mut data = vec![1u64; 30_000];
        pool.par_chunks_mut(&mut data, |_, _, chunk| {
            for v in chunk.iter_mut() {
                for _ in 0..50 {
                    *v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
            }
        });
        let busy = pool.busy_seconds();
        assert_eq!(busy.len(), 3);
        assert!(busy.iter().all(|&b| b > 0.0), "{busy:?}");
        // clones share the accounting
        let clone = pool.clone();
        assert_eq!(clone.busy_seconds(), busy);
        pool.reset_busy();
        assert_eq!(clone.busy_seconds(), vec![0.0; 3]);
    }

    #[test]
    fn serial_fast_paths_charge_lane_zero() {
        let pool = Pool::serial();
        let sum = pool.par_map_reduce(1000, 128, |r| r.len(), 0usize, |a, b| a + b);
        assert_eq!(sum, 1000);
        let busy = pool.busy_seconds();
        assert_eq!(busy.len(), 1);
        assert!(busy[0] > 0.0);
    }

    #[test]
    fn fork_rng_deterministic_and_distinct() {
        let mut a = fork_rng(42, 0);
        let mut a2 = fork_rng(42, 0);
        let mut b = fork_rng(42, 1);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let xs2: Vec<u64> = (0..16).map(|_| a2.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }
}
