//! Compressed Sparse Row matrix.
//!
//! The paper stores the Poisson stiffness matrix `K` in CSR to reduce
//! memory footprint (§IV-C); we do the same. Assembly goes through
//! [`CooBuilder`] (triplets with duplicate summation), which is the
//! natural output of FEM element loops.

/// CSR sparse matrix with `f64` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[r.clone()]
            .iter()
            .map(|&c| c as usize)
            .zip(self.values[r].iter().copied())
    }

    /// Matrix–vector product `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        }
    }

    /// Row-chunked parallel `y = A x` on `pool`. Each output row is
    /// the same left-to-right accumulation as [`CsrMatrix::spmv`], so
    /// the result is bitwise identical to the serial product for every
    /// worker count.
    pub fn spmv_pooled(&self, x: &[f64], y: &mut [f64], pool: &kernels::Pool) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        if pool.is_serial() {
            return self.spmv(x, y);
        }
        let (row_ptr, col_idx, values) = (&self.row_ptr, &self.col_idx, &self.values);
        pool.par_chunks_mut(y, |_, off, rows| {
            for (k, yi) in rows.iter_mut().enumerate() {
                let i = off + k;
                let mut acc = 0.0;
                for e in row_ptr[i]..row_ptr[i + 1] {
                    acc += values[e] * x[col_idx[e] as usize];
                }
                *yi = acc;
            }
        });
    }

    /// Allocating variant of [`CsrMatrix::spmv`].
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// Diagonal entries (0.0 where a row has no stored diagonal).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nrows];
        for (i, di) in d.iter_mut().enumerate() {
            for (j, v) in self.row(i) {
                if i == j {
                    *di = v;
                }
            }
        }
        d
    }

    /// Entry accessor (slow; for tests).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i).find(|&(c, _)| c == j).map_or(0.0, |(_, v)| v)
    }

    /// Whether the matrix is (exactly) symmetric. O(nnz log nnz);
    /// intended for tests and debug assertions.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                if (self.get(j, i) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Coordinate-format builder with duplicate summation.
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooBuilder {
    /// New builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Add `v` to entry `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        if v != 0.0 {
            self.entries.push((i as u32, j as u32, v));
        }
    }

    /// Finalize into CSR, summing duplicates and dropping explicit
    /// zeros produced by cancellation.
    pub fn build(mut self) -> CsrMatrix {
        self.entries
            .sort_unstable_by_key(|&(i, j, _)| ((i as u64) << 32) | j as u64);
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());

        let mut k = 0usize;
        while k < self.entries.len() {
            let (i, j, mut v) = self.entries[k];
            k += 1;
            while k < self.entries.len() && self.entries[k].0 == i && self.entries[k].1 == j {
                v += self.entries[k].2;
                k += 1;
            }
            col_idx.push(j);
            values.push(v);
            row_ptr[i as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn builds_and_multiplies() {
        let a = laplacian_1d(4);
        assert_eq!(a.nnz(), 10);
        let y = a.mul_vec(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn duplicate_entries_sum() {
        let mut b = CooBuilder::new(2, 2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.5);
        b.add(1, 0, -1.0);
        let a = b.build();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn diagonal_extraction() {
        let a = laplacian_1d(5);
        assert_eq!(a.diagonal(), vec![2.0; 5]);
    }

    #[test]
    fn symmetry_check() {
        let a = laplacian_1d(6);
        assert!(a.is_symmetric(0.0));
        let mut b = CooBuilder::new(2, 2);
        b.add(0, 1, 1.0);
        assert!(!b.build().is_symmetric(1e-15));
    }

    #[test]
    fn empty_rows_ok() {
        let mut b = CooBuilder::new(3, 3);
        b.add(0, 0, 1.0);
        b.add(2, 2, 1.0);
        let a = b.build();
        let y = a.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 0.0, 1.0]);
    }
}
