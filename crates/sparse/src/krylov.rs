//! Krylov subspace solvers: preconditioned Conjugate Gradient and
//! BiCGStab.
//!
//! Stand-in for the PETSc KSP solver the paper uses for `K φ = b`
//! (§IV-C). The FEM stiffness matrix with Dirichlet rows is symmetric
//! positive definite, so CG with a Jacobi preconditioner is the
//! canonical choice; BiCGStab is provided for robustness checks on
//! non-symmetric systems.

use crate::csr::CsrMatrix;
use kernels::Pool;

/// Convergence report of a Krylov solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual ‖b − Ax‖ / ‖b‖.
    pub rel_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct KrylovOptions {
    /// Relative residual tolerance.
    pub rtol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for KrylovOptions {
    fn default() -> Self {
        KrylovOptions {
            rtol: 1e-8,
            max_iters: 2000,
        }
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fixed block size of [`det_dot`]; boundaries depend only on this
/// constant, never on the worker count.
pub const DET_DOT_BLOCK: usize = 1024;

/// Deterministic (worker-count-invariant) dot product: partial sums
/// over fixed [`DET_DOT_BLOCK`]-sized blocks are computed in parallel
/// and folded in block-index order, so the result is bitwise identical
/// whether `pool` has 1 worker or 64. For `n ≤ DET_DOT_BLOCK` this is
/// exactly the flat left-to-right sum.
pub fn det_dot(a: &[f64], b: &[f64], pool: &Pool) -> f64 {
    assert_eq!(a.len(), b.len());
    pool.par_map_reduce(
        a.len(),
        DET_DOT_BLOCK,
        |r| {
            a[r.clone()]
                .iter()
                .zip(&b[r])
                .map(|(x, y)| x * y)
                .sum::<f64>()
        },
        0.0f64,
        |acc, s| acc + s,
    )
}

#[inline]
fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Jacobi (diagonal) preconditioner: `z = D⁻¹ r`.
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Build from the matrix diagonal; zero diagonals become identity
    /// rows in the preconditioner.
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .iter()
            .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        Jacobi { inv_diag }
    }

    #[inline]
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Preconditioned Conjugate Gradient. `x` holds the initial guess on
/// entry and the solution on exit. Serial convenience wrapper over
/// [`cg_with`].
pub fn cg(a: &CsrMatrix, b: &[f64], x: &mut [f64], opts: KrylovOptions) -> SolveStats {
    cg_with(a, b, x, opts, &Pool::serial(), None)
}

/// Preconditioned Conjugate Gradient with an explicit worker [`Pool`]
/// and optional residual-history capture.
///
/// SpMV is row-chunked across the pool (bitwise identical to serial)
/// and every inner product goes through [`det_dot`] (fixed-block
/// reduction order), so the iterates, residual history and solution
/// are **bitwise identical for any worker count**. When `history` is
/// given, the relative residual of every iteration (including the
/// final one) is appended.
pub fn cg_with(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    opts: KrylovOptions,
    pool: &Pool,
    mut history: Option<&mut Vec<f64>>,
) -> SolveStats {
    let n = b.len();
    assert_eq!(a.nrows(), n);
    assert_eq!(x.len(), n);
    let pre = Jacobi::new(a);

    let norm_b = det_dot(b, b, pool).sqrt();
    if norm_b == 0.0 {
        x.fill(0.0);
        return SolveStats {
            iterations: 0,
            rel_residual: 0.0,
            converged: true,
        };
    }

    let mut r = vec![0.0; n];
    a.spmv_pooled(x, &mut r, pool);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z = vec![0.0; n];
    pre.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = det_dot(&r, &z, pool);
    let mut ap = vec![0.0; n];

    for it in 0..opts.max_iters {
        let res = det_dot(&r, &r, pool).sqrt() / norm_b;
        if let Some(h) = history.as_mut() {
            h.push(res);
        }
        if res <= opts.rtol {
            return SolveStats {
                iterations: it,
                rel_residual: res,
                converged: true,
            };
        }
        a.spmv_pooled(&p, &mut ap, pool);
        let pap = det_dot(&p, &ap, pool);
        if pap <= 0.0 {
            // matrix not SPD (or breakdown): report failure
            return SolveStats {
                iterations: it,
                rel_residual: res,
                converged: false,
            };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        pre.apply(&r, &mut z);
        let rz_new = det_dot(&r, &z, pool);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let res = det_dot(&r, &r, pool).sqrt() / norm_b;
    if let Some(h) = history.as_mut() {
        h.push(res);
    }
    SolveStats {
        iterations: opts.max_iters,
        rel_residual: res,
        converged: res <= opts.rtol,
    }
}

/// BiCGStab with Jacobi preconditioning, for non-symmetric systems.
pub fn bicgstab(a: &CsrMatrix, b: &[f64], x: &mut [f64], opts: KrylovOptions) -> SolveStats {
    let n = b.len();
    assert_eq!(a.nrows(), n);
    let pre = Jacobi::new(a);

    let norm_b = dot(b, b).sqrt();
    if norm_b == 0.0 {
        x.fill(0.0);
        return SolveStats {
            iterations: 0,
            rel_residual: 0.0,
            converged: true,
        };
    }

    let mut r = vec![0.0; n];
    a.spmv(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let r0 = r.clone();
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];

    for it in 0..opts.max_iters {
        let res = dot(&r, &r).sqrt() / norm_b;
        if res <= opts.rtol {
            return SolveStats {
                iterations: it,
                rel_residual: res,
                converged: true,
            };
        }
        let rho_new = dot(&r0, &r);
        if rho_new.abs() < 1e-300 {
            return SolveStats {
                iterations: it,
                rel_residual: res,
                converged: false,
            };
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        pre.apply(&p, &mut phat);
        a.spmv(&phat, &mut v);
        alpha = rho / dot(&r0, &v);
        let mut s = r.clone();
        axpy(-alpha, &v, &mut s);
        pre.apply(&s, &mut shat);
        a.spmv(&shat, &mut t);
        let tt = dot(&t, &t);
        omega = if tt > 0.0 { dot(&t, &s) / tt } else { 0.0 };
        axpy(alpha, &phat, x);
        axpy(omega, &shat, x);
        r.copy_from_slice(&s);
        axpy(-omega, &t, &mut r);
        if omega.abs() < 1e-300 {
            let res = dot(&r, &r).sqrt() / norm_b;
            return SolveStats {
                iterations: it + 1,
                rel_residual: res,
                converged: res <= opts.rtol,
            };
        }
    }

    let res = dot(&r, &r).sqrt() / norm_b;
    SolveStats {
        iterations: opts.max_iters,
        rel_residual: res,
        converged: res <= opts.rtol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.add(i, i, 2.0);
            if i > 0 {
                b.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn cg_with_pool_is_bitwise_worker_invariant() {
        let n = 3000; // > DET_DOT_BLOCK so blocked reduction is exercised
        let a = laplacian_1d(n);
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
        let b = a.mul_vec(&xs);
        let solve = |workers: usize| {
            let mut x = vec![0.0; n];
            let mut hist = Vec::new();
            let opts = KrylovOptions {
                rtol: 1e-10,
                max_iters: 400,
            };
            let stats = cg_with(&a, &b, &mut x, opts, &Pool::new(workers), Some(&mut hist));
            (x, hist, stats)
        };
        let (x1, h1, s1) = solve(1);
        assert_eq!(h1.len(), s1.iterations + 1);
        for w in [2usize, 4, 8] {
            let (xw, hw, sw) = solve(w);
            assert_eq!(s1.iterations, sw.iterations, "workers={w}");
            assert_eq!(h1.len(), hw.len(), "workers={w}");
            for (a, b) in h1.iter().zip(&hw) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={w}");
            }
            for (a, b) in x1.iter().zip(&xw) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={w}");
            }
        }
    }

    #[test]
    fn spmv_pooled_matches_serial_bitwise() {
        let n = 2500;
        let a = laplacian_1d(n);
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 29) % 97) as f64 * 0.013 - 0.5)
            .collect();
        let mut y_serial = vec![0.0; n];
        a.spmv(&x, &mut y_serial);
        for w in [2usize, 3, 4, 8] {
            let mut y = vec![0.0; n];
            a.spmv_pooled(&x, &mut y, &Pool::new(w));
            for (s, p) in y_serial.iter().zip(&y) {
                assert_eq!(s.to_bits(), p.to_bits(), "workers={w}");
            }
        }
    }

    #[test]
    fn det_dot_matches_flat_sum_small_and_is_invariant_large() {
        let small: Vec<f64> = (0..600).map(|i| (i as f64).sqrt() * 0.1).collect();
        let flat: f64 = small.iter().map(|v| v * v).sum();
        assert_eq!(
            det_dot(&small, &small, &Pool::serial()).to_bits(),
            flat.to_bits()
        );
        let large: Vec<f64> = (0..10_000)
            .map(|i| ((i * 13) % 701) as f64 * 1e-3)
            .collect();
        let d1 = det_dot(&large, &large, &Pool::new(1));
        for w in [2usize, 4, 16] {
            assert_eq!(
                d1.to_bits(),
                det_dot(&large, &large, &Pool::new(w)).to_bits()
            );
        }
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 50;
        let a = laplacian_1d(n);
        // manufactured solution
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.mul_vec(&xs);
        let mut x = vec![0.0; n];
        let stats = cg(&a, &b, &mut x, KrylovOptions::default());
        assert!(stats.converged, "{stats:?}");
        for (xi, xsi) in x.iter().zip(&xs) {
            assert!((xi - xsi).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_zero_rhs_gives_zero() {
        let a = laplacian_1d(10);
        let mut x = vec![1.0; 10];
        let stats = cg(&a, &[0.0; 10], &mut x, KrylovOptions::default());
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cg_warm_start_converges_faster() {
        let n = 100;
        let a = laplacian_1d(n);
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos()).collect();
        let b = a.mul_vec(&xs);
        let mut cold = vec![0.0; n];
        let s_cold = cg(&a, &b, &mut cold, KrylovOptions::default());
        // warm start from a slightly perturbed exact solution
        let mut warm: Vec<f64> = xs.iter().map(|v| v + 1e-6).collect();
        let s_warm = cg(&a, &b, &mut warm, KrylovOptions::default());
        assert!(s_warm.iterations < s_cold.iterations);
    }

    #[test]
    fn cg_detects_non_spd() {
        let mut bld = CooBuilder::new(2, 2);
        bld.add(0, 0, -1.0);
        bld.add(1, 1, -1.0);
        let a = bld.build();
        let mut x = vec![0.0; 2];
        let stats = cg(&a, &[1.0, 1.0], &mut x, KrylovOptions::default());
        assert!(!stats.converged);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        // upper bidiagonal system
        let n = 30;
        let mut bld = CooBuilder::new(n, n);
        for i in 0..n {
            bld.add(i, i, 3.0);
            if i + 1 < n {
                bld.add(i, i + 1, -1.0);
            }
        }
        let a = bld.build();
        let xs: Vec<f64> = (0..n).map(|i| i as f64 % 5.0).collect();
        let b = a.mul_vec(&xs);
        let mut x = vec![0.0; n];
        let stats = bicgstab(&a, &b, &mut x, KrylovOptions::default());
        assert!(stats.converged, "{stats:?}");
        for (xi, xsi) in x.iter().zip(&xs) {
            assert!((xi - xsi).abs() < 1e-6, "{xi} vs {xsi}");
        }
    }

    #[test]
    fn iteration_counts_grow_with_problem_size() {
        // classic CG behaviour on the 1-D Laplacian: iterations scale
        // with n — this is the root cause of the paper's Poisson_Solve
        // scalability bottleneck (Table IV).
        let small = {
            let a = laplacian_1d(16);
            let b = vec![1.0; 16];
            let mut x = vec![0.0; 16];
            cg(&a, &b, &mut x, KrylovOptions::default()).iterations
        };
        let large = {
            let a = laplacian_1d(256);
            let b = vec![1.0; 256];
            let mut x = vec![0.0; 256];
            cg(&a, &b, &mut x, KrylovOptions::default()).iterations
        };
        assert!(large > small);
    }
}
