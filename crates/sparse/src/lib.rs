//! Sparse linear algebra for the PIC Poisson solve (§III-C, §IV-C):
//! CSR storage, Jacobi-preconditioned CG and BiCGStab (the PETSc KSP
//! stand-in), and a dense oracle for tests.

pub mod csr;
pub mod dense;
pub mod krylov;

pub use csr::{CooBuilder, CsrMatrix};
pub use dense::solve_dense;
pub use krylov::{
    bicgstab, cg, cg_with, det_dot, Jacobi, KrylovOptions, SolveStats, DET_DOT_BLOCK,
};
