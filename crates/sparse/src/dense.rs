//! Dense Gaussian-elimination solver, used as the test oracle for the
//! Krylov methods and for tiny systems in unit tests.

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// `a` is row-major `n×n`. Returns `None` for (numerically) singular
/// systems.
// index loops: the elimination updates row `row` from row `col` of the
// same matrix, which iterator adapters can't express without
// split_at_mut gymnastics
#[allow(clippy::needless_range_loop)]
pub fn solve_dense(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n);
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .map(|r| {
            assert_eq!(r.len(), n);
            r.clone()
        })
        .collect();
    let mut x = b.to_vec();

    for col in 0..n {
        // partial pivot
        let piv =
            (col..n).max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())?;
        if m[piv][col].abs() < 1e-300 {
            return None;
        }
        m.swap(col, piv);
        x.swap(col, piv);
        for row in col + 1..n {
            let f = m[row][col] / m[col][col];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                m[row][k] -= f * m[col][k];
            }
            x[row] -= f * x[col];
        }
    }
    // back substitution
    for col in (0..n).rev() {
        x[col] /= m[col][col];
        for row in 0..col {
            let f = m[row][col];
            x[row] -= f * x[col];
            m[row][col] = 0.0;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_2x2() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let x = solve_dense(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_dense(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_dense(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }
}
