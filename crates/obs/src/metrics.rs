//! The typed metrics registry: named counters, gauges and time
//! histograms behind cheap cloneable handles.
//!
//! Registration (name lookup under a mutex) happens once per metric;
//! the returned handle is a couple of `Arc`'d atomics, so the hot
//! path — `Counter::add`, `Gauge::set`, `TimeHist::record` — is a
//! handful of relaxed atomic operations and safe to call from every
//! rank thread. A [`Registry`] clone shares the underlying metrics,
//! which is how a threaded world aggregates: every rank clones the
//! run's registry and increments the same counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{obj, Json};

/// Number of exponential histogram buckets: bucket `i` counts
/// observations below `2^i` microseconds, the last bucket is the
/// overflow (≥ ~16.8 s).
pub const HIST_BUCKETS: usize = 25;

/// What a metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Last-write-wins scalar.
    Gauge,
    /// Exponential-bucket histogram of durations (seconds).
    TimeHist,
}

#[derive(Debug)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<HistInner>),
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Mutex<Vec<(String, Slot)>>,
}

/// Shared, cheaply cloneable metrics registry.
///
/// A registry handle may carry a *scope prefix* (see
/// [`Registry::scoped`]): every metric registered through the handle
/// gets the prefix prepended to its name, while the underlying store
/// stays shared. This is how the job server isolates concurrent runs
/// on one registry — each job taps `job<id>.`-prefixed names, and one
/// [`Registry::snapshot`] still sees everything.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
    prefix: String,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// A handle onto the same store that registers every metric under
    /// `<prefix>.` (prefixes nest: scoping an already-scoped handle
    /// concatenates).
    pub fn scoped(&self, prefix: &str) -> Registry {
        Registry {
            inner: self.inner.clone(),
            prefix: format!("{}{prefix}.", self.prefix),
        }
    }

    /// The scope prefix of this handle (empty for the root handle).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// `name` qualified by this handle's scope prefix.
    fn qualify<'a>(&self, name: &'a str) -> std::borrow::Cow<'a, str> {
        if self.prefix.is_empty() {
            std::borrow::Cow::Borrowed(name)
        } else {
            std::borrow::Cow::Owned(format!("{}{name}", self.prefix))
        }
    }

    /// Counter handle for `name` (registers on first use; returns the
    /// existing handle afterwards).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let name = self.qualify(name);
        let name = name.as_ref();
        let mut metrics = self.inner.metrics.lock().unwrap();
        if let Some((_, slot)) = metrics.iter().find(|(n, _)| n == name) {
            match slot {
                Slot::Counter(c) => return Counter(c.clone()),
                _ => panic!("metric {name:?} is not a counter"),
            }
        }
        let cell = Arc::new(AtomicU64::new(0));
        metrics.push((name.to_string(), Slot::Counter(cell.clone())));
        Counter(cell)
    }

    /// Gauge handle for `name` (registers on first use).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let name = self.qualify(name);
        let name = name.as_ref();
        let mut metrics = self.inner.metrics.lock().unwrap();
        if let Some((_, slot)) = metrics.iter().find(|(n, _)| n == name) {
            match slot {
                Slot::Gauge(c) => return Gauge(c.clone()),
                _ => panic!("metric {name:?} is not a gauge"),
            }
        }
        let cell = Arc::new(AtomicU64::new(0.0f64.to_bits()));
        metrics.push((name.to_string(), Slot::Gauge(cell.clone())));
        Gauge(cell)
    }

    /// Time-histogram handle for `name` (registers on first use).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn time_hist(&self, name: &str) -> TimeHist {
        let name = self.qualify(name);
        let name = name.as_ref();
        let mut metrics = self.inner.metrics.lock().unwrap();
        if let Some((_, slot)) = metrics.iter().find(|(n, _)| n == name) {
            match slot {
                Slot::Hist(h) => return TimeHist(h.clone()),
                _ => panic!("metric {name:?} is not a time histogram"),
            }
        }
        let cell = Arc::new(HistInner::default());
        metrics.push((name.to_string(), Slot::Hist(cell.clone())));
        TimeHist(cell)
    }

    /// Point-in-time copy of every registered metric, in registration
    /// order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.inner.metrics.lock().unwrap();
        MetricsSnapshot {
            metrics: metrics
                .iter()
                .map(|(name, slot)| {
                    let value = match slot {
                        Slot::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                        Slot::Gauge(g) => {
                            MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                        }
                        Slot::Hist(h) => MetricValue::TimeHist(Box::new(h.snapshot())),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// Monotone event counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins f64 gauge (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Sum of observations in nanoseconds (u64 holds ~584 years).
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl HistInner {
    fn record(&self, seconds: f64) {
        let ns = (seconds.max(0.0) * 1e9) as u64;
        let us = ns / 1000;
        // bucket i counts observations < 2^i µs
        let idx = if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_seconds: self.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Exponential-bucket duration histogram.
#[derive(Debug, Clone)]
pub struct TimeHist(Arc<HistInner>);

impl TimeHist {
    /// Record one observation of `seconds`.
    #[inline]
    pub fn record(&self, seconds: f64) {
        self.0.record(seconds);
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// `buckets[i]` counts observations below `2^i` µs (last bucket:
    /// overflow).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all observations, seconds.
    pub sum_seconds: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistSnapshot {
    /// Mean observation in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_seconds / self.count as f64
        }
    }
}

/// Frozen value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    TimeHist(Box<HistSnapshot>),
}

/// Point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` in registration order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Value by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter value by name (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// JSON representation: an array of `{name, kind, ...}` objects.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.metrics
                .iter()
                .map(|(name, value)| match value {
                    MetricValue::Counter(c) => obj(vec![
                        ("name", Json::Str(name.clone())),
                        ("kind", Json::Str("counter".into())),
                        ("value", Json::U64(*c)),
                    ]),
                    MetricValue::Gauge(g) => obj(vec![
                        ("name", Json::Str(name.clone())),
                        ("kind", Json::Str("gauge".into())),
                        ("value", Json::Num(*g)),
                    ]),
                    MetricValue::TimeHist(h) => obj(vec![
                        ("name", Json::Str(name.clone())),
                        ("kind", Json::Str("time_hist".into())),
                        ("count", Json::U64(h.count)),
                        ("sum_seconds", Json::Num(h.sum_seconds)),
                        (
                            "buckets",
                            Json::Arr(h.buckets.iter().map(|&b| Json::U64(b)).collect()),
                        ),
                    ]),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(reg.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn clones_share_metrics() {
        let reg = Registry::new();
        let clone = reg.clone();
        clone.counter("c").add(7);
        reg.gauge("g").set(1.25);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(7));
        assert_eq!(snap.gauge("g"), Some(1.25));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("m");
        reg.counter("m");
    }

    #[test]
    fn hist_buckets_by_magnitude() {
        let reg = Registry::new();
        let h = reg.time_hist("t");
        h.record(0.5e-6); // < 1 µs -> bucket 0
        h.record(3e-6); // < 4 µs -> bucket 2
        h.record(1.0); // ~1 s -> high bucket
        match reg.snapshot().get("t") {
            Some(MetricValue::TimeHist(s)) => {
                assert_eq!(s.count, 3);
                assert_eq!(s.buckets[0], 1);
                assert_eq!(s.buckets[2], 1);
                assert!((s.sum_seconds - 1.0000035).abs() < 1e-6);
                assert!((s.mean() - s.sum_seconds / 3.0).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scoped_handles_prefix_names_but_share_the_store() {
        let root = Registry::new();
        let job = root.scoped("job7");
        job.counter("engine.steps").add(3);
        root.counter("engine.steps").inc();
        let snap = root.snapshot();
        assert_eq!(snap.counter("job7.engine.steps"), Some(3));
        assert_eq!(snap.counter("engine.steps"), Some(1));
        // prefixes nest
        let worker = job.scoped("rank0");
        worker.gauge("busy").set(0.5);
        assert_eq!(root.snapshot().gauge("job7.rank0.busy"), Some(0.5));
        assert_eq!(worker.prefix(), "job7.rank0.");
        assert_eq!(root.prefix(), "");
    }

    #[test]
    fn snapshot_json_parses() {
        let reg = Registry::new();
        reg.counter("a").add(5);
        reg.gauge("b").set(0.5);
        reg.time_hist("c").record(1e-3);
        let text = reg.snapshot().to_json().to_string();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back.as_array().unwrap().len(), 3);
    }

    #[test]
    fn threaded_increments_all_land() {
        let reg = Registry::new();
        let c = reg.counter("n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
