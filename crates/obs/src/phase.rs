//! The solver phases and the per-phase time breakdown, mirroring the
//! breakdown the paper reports in Table IV. Moved here from
//! `coupled::timers` so observers, sinks and exporters can speak the
//! same phase vocabulary without depending on the solver crate;
//! `coupled::timers` re-exports both types under their old paths.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut};

/// The solver phases of Fig. 1 that we time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    Inject,
    DsmcMove,
    DsmcExchange,
    ColliReact,
    PicMove,
    PicExchange,
    PoissonSolve,
    Reindex,
    Rebalance,
}

impl Phase {
    /// All phases, in the paper's reporting order.
    pub const ALL: [Phase; 9] = [
        Phase::DsmcMove,
        Phase::DsmcExchange,
        Phase::Inject,
        Phase::PicMove,
        Phase::PicExchange,
        Phase::PoissonSolve,
        Phase::Reindex,
        Phase::ColliReact,
        Phase::Rebalance,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Inject => "Inject",
            Phase::DsmcMove => "DSMC_Move",
            Phase::DsmcExchange => "DSMC_Exchange",
            Phase::ColliReact => "Colli_React",
            Phase::PicMove => "PIC_Move",
            Phase::PicExchange => "PIC_Exchange",
            Phase::PoissonSolve => "Poisson_Solve",
            Phase::Reindex => "Reindex",
            Phase::Rebalance => "Rebalance",
        }
    }

    /// Storage index into a [`Breakdown`] (stable, not the
    /// [`Phase::ALL`] reporting order).
    pub fn idx(self) -> usize {
        match self {
            Phase::Inject => 0,
            Phase::DsmcMove => 1,
            Phase::DsmcExchange => 2,
            Phase::ColliReact => 3,
            Phase::PicMove => 4,
            Phase::PicExchange => 5,
            Phase::PoissonSolve => 6,
            Phase::Reindex => 7,
            Phase::Rebalance => 8,
        }
    }
}

/// Seconds per phase.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Breakdown {
    t: [f64; 9],
}

impl Breakdown {
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Total time across all phases.
    pub fn total(&self) -> f64 {
        self.t.iter().sum()
    }

    /// Time in the two exchange phases (the `pm` term of eq. 6).
    pub fn migration(&self) -> f64 {
        self[Phase::DsmcExchange] + self[Phase::PicExchange]
    }

    /// The `poi` term of eq. 6.
    pub fn poisson(&self) -> f64 {
        self[Phase::PoissonSolve]
    }
}

impl Index<Phase> for Breakdown {
    type Output = f64;
    fn index(&self, p: Phase) -> &f64 {
        &self.t[p.idx()]
    }
}

impl IndexMut<Phase> for Breakdown {
    fn index_mut(&mut self, p: Phase) -> &mut f64 {
        &mut self.t[p.idx()]
    }
}

impl Add for Breakdown {
    type Output = Breakdown;
    fn add(self, o: Breakdown) -> Breakdown {
        let mut out = self;
        out += o;
        out
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, o: Breakdown) {
        for (a, b) in self.t.iter_mut().zip(o.t) {
            *a += b;
        }
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in Phase::ALL {
            writeln!(f, "{:>14}: {:>10.3} s", p.name(), self[p])?;
        }
        writeln!(f, "{:>14}: {:>10.3} s", "TOTAL", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_total() {
        let mut b = Breakdown::new();
        b[Phase::Inject] = 1.5;
        b[Phase::PoissonSolve] = 2.0;
        assert_eq!(b[Phase::Inject], 1.5);
        assert!((b.total() - 3.5).abs() < 1e-15);
        assert_eq!(b.poisson(), 2.0);
    }

    #[test]
    fn add_merges_phases() {
        let mut a = Breakdown::new();
        a[Phase::DsmcMove] = 1.0;
        let mut b = Breakdown::new();
        b[Phase::DsmcMove] = 2.0;
        b[Phase::PicExchange] = 0.5;
        let c = a + b;
        assert_eq!(c[Phase::DsmcMove], 3.0);
        assert_eq!(c.migration(), 0.5);
    }

    #[test]
    fn all_phases_have_unique_indices() {
        let mut seen = [false; 9];
        for p in Phase::ALL {
            assert!(!seen[p.idx()], "duplicate index for {p:?}");
            seen[p.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
