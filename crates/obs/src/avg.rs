//! Trailing-window time averages of per-cell field samples.
//!
//! Steady-state diagnostics (density profiles, potential maps) are
//! noisy step-to-step; the standard DSMC remedy is a trailing time
//! average. [`TimeAverage`] keeps the last `window` samples of each
//! named field and reports their element-wise mean. The mean is
//! recomputed from the retained samples in arrival order on every
//! query, so it is bitwise deterministic: no incremental sum drifts
//! with the eviction history.

use std::collections::{BTreeMap, VecDeque};

/// Per-field trailing sample window.
#[derive(Debug, Clone, Default)]
struct FieldWindow {
    ring: VecDeque<Vec<f64>>,
}

/// Trailing-window mean of named field samples (see
/// [`crate::Observer::field_sample`]).
#[derive(Debug, Clone)]
pub struct TimeAverage {
    window: usize,
    fields: BTreeMap<&'static str, FieldWindow>,
}

impl TimeAverage {
    /// Average over the trailing `window` samples. `window == 0`
    /// records nothing (every push is dropped).
    pub fn new(window: usize) -> Self {
        TimeAverage {
            window,
            fields: BTreeMap::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Record one sample of `name`. Keeps at most `window` samples,
    /// evicting the oldest. A sample whose length differs from the
    /// retained ones resets that field's window (the field was
    /// redefined; averaging across shapes would be meaningless).
    pub fn push(&mut self, name: &'static str, values: &[f64]) {
        if self.window == 0 {
            return;
        }
        let field = self.fields.entry(name).or_default();
        if field
            .ring
            .front()
            .is_some_and(|prev| prev.len() != values.len())
        {
            field.ring.clear();
        }
        if field.ring.len() == self.window {
            field.ring.pop_front();
        }
        field.ring.push_back(values.to_vec());
    }

    /// Number of samples currently retained for `name`.
    pub fn samples(&self, name: &str) -> usize {
        self.fields.get(name).map_or(0, |f| f.ring.len())
    }

    /// Element-wise mean of the retained samples of `name`, oldest
    /// first (summation order is fixed, so the result is bitwise
    /// reproducible). `None` until at least one sample arrived.
    pub fn mean(&self, name: &str) -> Option<Vec<f64>> {
        let field = self.fields.get(name)?;
        let n = field.ring.len();
        if n == 0 {
            return None;
        }
        let mut acc = vec![0.0; field.ring.front().map_or(0, Vec::len)];
        for sample in &field.ring {
            for (a, v) in acc.iter_mut().zip(sample) {
                *a += v;
            }
        }
        let inv = 1.0 / n as f64;
        for a in &mut acc {
            *a *= inv;
        }
        Some(acc)
    }

    /// Names with at least one retained sample, sorted.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.fields
            .iter()
            .filter(|(_, f)| !f.ring.is_empty())
            .map(|(&n, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_window_mean() {
        let mut avg = TimeAverage::new(3);
        assert_eq!(avg.mean("rho"), None);
        avg.push("rho", &[1.0, 10.0]);
        assert_eq!(avg.mean("rho"), Some(vec![1.0, 10.0]));
        avg.push("rho", &[2.0, 20.0]);
        avg.push("rho", &[3.0, 30.0]);
        assert_eq!(avg.mean("rho"), Some(vec![2.0, 20.0]));
        // fourth sample evicts the first: mean of 2, 3, 4
        avg.push("rho", &[4.0, 40.0]);
        assert_eq!(avg.mean("rho"), Some(vec![3.0, 30.0]));
        assert_eq!(avg.samples("rho"), 3);
        assert_eq!(avg.names().collect::<Vec<_>>(), vec!["rho"]);
    }

    #[test]
    fn zero_window_records_nothing() {
        let mut avg = TimeAverage::new(0);
        avg.push("rho", &[1.0]);
        assert_eq!(avg.samples("rho"), 0);
        assert_eq!(avg.mean("rho"), None);
    }

    #[test]
    fn shape_change_resets_the_field() {
        let mut avg = TimeAverage::new(4);
        avg.push("phi", &[1.0, 2.0]);
        avg.push("phi", &[5.0, 6.0, 7.0]);
        assert_eq!(avg.samples("phi"), 1);
        assert_eq!(avg.mean("phi"), Some(vec![5.0, 6.0, 7.0]));
    }

    #[test]
    fn fields_are_independent() {
        let mut avg = TimeAverage::new(2);
        avg.push("a", &[2.0]);
        avg.push("b", &[8.0]);
        avg.push("a", &[4.0]);
        assert_eq!(avg.mean("a"), Some(vec![3.0]));
        assert_eq!(avg.mean("b"), Some(vec![8.0]));
    }
}
