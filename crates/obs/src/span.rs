//! Hierarchical wall-clock span timers.
//!
//! [`SpanTimer`] replaces the flat ad-hoc stopwatch the solver crate
//! used to carry: one timer measures a *stack* of named spans (step ⊃
//! phase ⊃ substep) with the gap-free lap discipline the per-phase
//! breakdown needs — every `lap`/`open`/`close` reads the clock
//! exactly **once** and reuses that instant as the start of the next
//! interval, so consecutive laps tile the timeline with no gaps and
//! the lap times sum to exactly the origin-to-last-read wall time.

use std::time::Instant;

/// A hierarchical lap timer.
///
/// `open(name)` pushes a child span, `lap()` returns the seconds
/// since the previous clock read (attributing a leaf interval),
/// `close()` pops the innermost span and returns its inclusive
/// duration. A plain flat stopwatch is the degenerate case of
/// `start()` + repeated `lap()`.
#[derive(Debug)]
pub struct SpanTimer {
    origin: Instant,
    /// The previous clock read — start of the current lap.
    last: Instant,
    /// Open spans: (name, span start).
    stack: Vec<(&'static str, Instant)>,
}

impl SpanTimer {
    /// Start the timer (origin = now, no open spans).
    pub fn start() -> Self {
        let now = Instant::now();
        SpanTimer {
            origin: now,
            last: now,
            stack: Vec::new(),
        }
    }

    /// Push a child span. The clock read doubles as a lap boundary,
    /// so time before the `open` stays attributed to the caller.
    pub fn open(&mut self, name: &'static str) {
        let now = Instant::now();
        self.last = now;
        self.stack.push((name, now));
    }

    /// Seconds since the previous clock read (lap, open or close);
    /// restarts the lap.
    pub fn lap(&mut self) -> f64 {
        let now = Instant::now();
        let dt = (now - self.last).as_secs_f64();
        self.last = now;
        dt
    }

    /// Pop the innermost span, returning `(name, inclusive seconds)`.
    /// The clock read is also a lap boundary for the parent.
    ///
    /// # Panics
    /// If no span is open.
    pub fn close(&mut self) -> (&'static str, f64) {
        let (name, started) = self.stack.pop().expect("close() without open span");
        let now = Instant::now();
        self.last = now;
        (name, (now - started).as_secs_f64())
    }

    /// Names of the open spans, outermost first.
    pub fn path(&self) -> Vec<&'static str> {
        self.stack.iter().map(|(n, _)| *n).collect()
    }

    /// Nesting depth (number of open spans).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Elapsed seconds since the previous clock read, without
    /// restarting the lap.
    pub fn elapsed(&self) -> f64 {
        self.last.elapsed().as_secs_f64()
    }

    /// Elapsed seconds since construction.
    pub fn since_origin(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_tile_the_timeline_without_gaps() {
        let mut t = SpanTimer::start();
        let mut sum = 0.0;
        for k in 0..9 {
            if k % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            sum += t.lap();
        }
        let total = t.since_origin();
        assert!(sum <= total);
        assert!(
            total - sum < 1e-3,
            "gap {} s between lap sum {sum} and wall {total}",
            total - sum
        );
    }

    #[test]
    fn spans_nest_and_cover_their_laps() {
        let mut t = SpanTimer::start();
        t.open("step");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let a = t.lap();
        t.open("pic");
        assert_eq!(t.path(), vec!["step", "pic"]);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = t.lap();
        let (name, pic) = t.close();
        assert_eq!(name, "pic");
        assert!(pic >= b);
        let (name, step) = t.close();
        assert_eq!(name, "step");
        assert!(step >= a + b, "parent {step} must cover children {}", a + b);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn lap_measures_time() {
        let mut t = SpanTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(t.lap() >= 0.004);
    }
}
