//! The standard [`Observer`] that feeds a metrics [`Registry`] and a
//! [`TraceSink`] from pipeline signals.
//!
//! Drivers install one `Recorder` on the reporting rank; everything
//! else (per-rank kernel gauges, comm counters) taps the shared
//! registry directly. With metrics off and a [`NullSink`], a recorder
//! degenerates to a handful of no-op calls, which is what keeps the
//! default path bit-identical to an unobserved run.

use crate::avg::TimeAverage;
use crate::events::{ExchangeEvent, RebalanceEvent, StepTrace, STRATEGY_NAMES};
use crate::metrics::{Counter, Gauge, Registry, TimeHist};
use crate::observer::Observer;
use crate::phase::Phase;
use crate::sink::{NullSink, TraceEvent, TraceSink};

/// Registry handles the recorder updates on each signal.
#[derive(Debug)]
struct Taps {
    phase_time: [TimeHist; Phase::ALL.len()],
    exchange_count: [Counter; STRATEGY_NAMES.len()],
    exchange_tx: [Counter; STRATEGY_NAMES.len()],
    exchange_bytes: [Counter; STRATEGY_NAMES.len()],
    exchange_max_rank_msgs: [Gauge; STRATEGY_NAMES.len()],
    exchange_node_pairs: Gauge,
    exchange_aggregated_bytes: Counter,
    steps: Counter,
    step_time: TimeHist,
    lii: Gauge,
    rebalances: Counter,
    rebalance_migrated: Counter,
    remap_time: TimeHist,
    /// Smoothed per-cell timing taps of the timer-augmented cost
    /// source: seconds per neutral move / collision pair / charged
    /// move at the latest rebalance (zero under analytic sources).
    cost_rates: [Gauge; 3],
    comm_retries: Counter,
    comm_dedup_dropped: Counter,
    comm_faults_injected: Counter,
    recoveries: Counter,
}

impl Taps {
    fn new(reg: &Registry) -> Self {
        Taps {
            phase_time: std::array::from_fn(|i| {
                reg.time_hist(&format!("engine.phase.{}.seconds", Phase::ALL[i].name()))
            }),
            exchange_count: std::array::from_fn(|s| {
                reg.counter(&format!("vmpi.exchange.{}.count", STRATEGY_NAMES[s]))
            }),
            exchange_tx: std::array::from_fn(|s| {
                reg.counter(&format!("vmpi.exchange.{}.transactions", STRATEGY_NAMES[s]))
            }),
            exchange_bytes: std::array::from_fn(|s| {
                reg.counter(&format!("vmpi.exchange.{}.bytes", STRATEGY_NAMES[s]))
            }),
            exchange_max_rank_msgs: std::array::from_fn(|s| {
                reg.gauge(&format!(
                    "vmpi.exchange.{}.max_rank_msgs",
                    STRATEGY_NAMES[s]
                ))
            }),
            exchange_node_pairs: reg.gauge("vmpi.exchange.Hier.node_pairs"),
            exchange_aggregated_bytes: reg.counter("vmpi.exchange.Hier.aggregated_bytes"),
            steps: reg.counter("engine.steps"),
            step_time: reg.time_hist("engine.step.seconds"),
            lii: reg.gauge("balance.lii"),
            rebalances: reg.counter("balance.rebalances"),
            rebalance_migrated: reg.counter("balance.migrated_particles"),
            remap_time: reg.time_hist("balance.remap.seconds"),
            cost_rates: {
                const RATE_NAMES: [&str; 3] = ["move", "pair", "charged"];
                std::array::from_fn(|i| {
                    reg.gauge(&format!("balance.cost.per_{}.seconds", RATE_NAMES[i]))
                })
            },
            comm_retries: reg.counter("comm.retries"),
            comm_dedup_dropped: reg.counter("comm.dedup_dropped"),
            comm_faults_injected: reg.counter("comm.faults_injected"),
            recoveries: reg.counter("engine.recoveries"),
        }
    }
}

/// Feeds pipeline signals into a registry and a trace sink.
pub struct Recorder {
    taps: Option<Taps>,
    sink: Box<dyn TraceSink>,
    avg: Option<TimeAverage>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("metrics", &self.taps.is_some())
            .field(
                "avg_window",
                &self.avg.as_ref().map_or(0, TimeAverage::window),
            )
            .finish()
    }
}

impl Default for Recorder {
    /// A recorder that observes nothing (no registry, null sink).
    fn default() -> Self {
        Recorder::new(None, Box::new(NullSink))
    }
}

impl Recorder {
    /// Build a recorder tapping `registry` (if any) and writing events
    /// to `sink`.
    pub fn new(registry: Option<&Registry>, sink: Box<dyn TraceSink>) -> Self {
        Recorder {
            taps: registry.map(Taps::new),
            sink,
            avg: None,
        }
    }

    /// Also keep trailing time averages of [`Observer::field_sample`]
    /// signals over `window` samples (0 disables — the default).
    pub fn with_time_average(mut self, window: usize) -> Self {
        self.avg = (window > 0).then(|| TimeAverage::new(window));
        self
    }

    /// The time-average accumulator, when enabled.
    pub fn time_average(&self) -> Option<&TimeAverage> {
        self.avg.as_ref()
    }

    /// Emit the leading metadata record (call once, before the run).
    pub fn meta(&mut self, ranks: usize, steps: usize) {
        self.sink.emit(&TraceEvent::Meta { ranks, steps });
    }

    /// Emit the trailing fault/recovery summary of a run executed
    /// over a faulty transport (call at most once, before
    /// [`Recorder::finish`]), and mirror the counters into the
    /// registry under `comm.retries`, `comm.dedup_dropped`,
    /// `comm.faults_injected` and `engine.recoveries`.
    pub fn fault_summary(
        &mut self,
        recoveries: usize,
        retries: u64,
        dedup_dropped: u64,
        injected: u64,
    ) {
        if let Some(taps) = &self.taps {
            taps.comm_retries.add(retries);
            taps.comm_dedup_dropped.add(dedup_dropped);
            taps.comm_faults_injected.add(injected);
            taps.recoveries.add(recoveries as u64);
        }
        self.sink.emit(&TraceEvent::FaultSummary {
            recoveries,
            retries,
            dedup_dropped,
            injected,
        });
    }

    /// Flush the sink (call once, after the run).
    pub fn finish(&mut self) {
        self.sink.flush();
    }
}

impl Observer for Recorder {
    fn phase(&mut self, phase: Phase, seconds: f64) {
        if let Some(taps) = &self.taps {
            taps.phase_time[phase.idx()].record(seconds);
        }
    }

    fn exchange(&mut self, ev: &ExchangeEvent) {
        if let Some(taps) = &self.taps {
            let s = ev.strategy.min(STRATEGY_NAMES.len() - 1);
            taps.exchange_count[s].inc();
            taps.exchange_tx[s].add(ev.transactions);
            taps.exchange_bytes[s].add(ev.bytes);
            if ev.max_rank_msgs > 0 {
                taps.exchange_max_rank_msgs[s].set(ev.max_rank_msgs as f64);
            }
            if ev.node_pairs > 0 {
                taps.exchange_node_pairs.set(ev.node_pairs as f64);
            }
            taps.exchange_aggregated_bytes.add(ev.aggregated_bytes);
        }
        self.sink.emit(&TraceEvent::Exchange(*ev));
    }

    fn rebalance(&mut self, ev: &RebalanceEvent) {
        if let Some(taps) = &self.taps {
            taps.rebalances.inc();
            taps.rebalance_migrated.add(ev.migrated);
            taps.remap_time.record(ev.remap_seconds);
            for (gauge, &rate) in taps.cost_rates.iter().zip(&ev.cost_rates) {
                gauge.set(rate);
            }
        }
        self.sink.emit(&TraceEvent::Rebalance(*ev));
    }

    fn step(&mut self, index: usize, trace: &StepTrace) {
        if let Some(taps) = &self.taps {
            taps.steps.inc();
            taps.step_time.record(trace.step_time);
            taps.lii.set(trace.lii);
        }
        self.sink.emit(&TraceEvent::Step {
            index,
            trace: trace.clone(),
        });
    }

    fn field_sample(&mut self, name: &'static str, values: &[f64]) {
        if let Some(avg) = &mut self.avg {
            avg.push(name, values);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn recorder_taps_registry_and_sink() {
        let reg = Registry::new();
        let mem = MemorySink::new();
        let mut rec = Recorder::new(Some(&reg), Box::new(mem.clone()));
        rec.meta(3, 2);
        rec.phase(Phase::Inject, 0.25);
        rec.exchange(&ExchangeEvent {
            step: 0,
            phase: Phase::DsmcExchange,
            sub: 0,
            strategy: 1,
            transactions: 6,
            bytes: 640,
            max_rank_msgs: 2,
            node_pairs: 0,
            aggregated_bytes: 0,
        });
        rec.rebalance(&RebalanceEvent {
            step: 0,
            lii: 1.8,
            migrated: 42,
            remap_seconds: 0.01,
            cost_source: "timer_augmented",
            decomposition: "unified",
            cost_rates: [2e-8, 3e-10, 0.0],
        });
        rec.step(0, &StepTrace::default());
        rec.fault_summary(1, 7, 3, 12);
        rec.finish();

        let snap = reg.snapshot();
        assert_eq!(snap.counter("comm.retries"), Some(7));
        assert_eq!(snap.counter("comm.dedup_dropped"), Some(3));
        assert_eq!(snap.counter("comm.faults_injected"), Some(12));
        assert_eq!(snap.counter("engine.recoveries"), Some(1));
        assert_eq!(snap.counter("vmpi.exchange.DC.transactions"), Some(6));
        assert_eq!(snap.counter("vmpi.exchange.DC.bytes"), Some(640));
        assert_eq!(snap.counter("balance.rebalances"), Some(1));
        assert_eq!(snap.counter("balance.migrated_particles"), Some(42));
        assert_eq!(snap.gauge("balance.cost.per_move.seconds"), Some(2e-8));
        assert_eq!(snap.gauge("balance.cost.per_pair.seconds"), Some(3e-10));
        assert_eq!(snap.gauge("balance.cost.per_charged.seconds"), Some(0.0));
        assert_eq!(snap.counter("engine.steps"), Some(1));
        // meta + exchange + rebalance + step + fault summary
        assert_eq!(mem.len(), 5);
    }

    #[test]
    fn recorder_time_average_accumulates() {
        let mut rec = Recorder::default().with_time_average(2);
        rec.field_sample("density_h", &[1.0, 3.0]);
        rec.field_sample("density_h", &[3.0, 5.0]);
        rec.field_sample("density_h", &[5.0, 7.0]);
        let avg = rec.time_average().unwrap();
        assert_eq!(avg.mean("density_h"), Some(vec![4.0, 6.0]));
        // disabled by default: samples are dropped on the floor
        let mut plain = Recorder::default();
        plain.field_sample("density_h", &[1.0]);
        assert!(plain.time_average().is_none());
    }

    #[test]
    fn recorder_without_registry_still_traces() {
        let mem = MemorySink::new();
        let mut rec = Recorder::new(None, Box::new(mem.clone()));
        rec.phase(Phase::Inject, 0.1);
        rec.step(0, &StepTrace::default());
        assert_eq!(mem.len(), 1); // phases don't emit events
    }
}
