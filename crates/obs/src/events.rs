//! The structured events the pipeline reports: one per step, one per
//! particle exchange, one per rebalance.

use crate::json::{obj, Json};
use crate::phase::Phase;

/// Names of the concrete exchange strategies, in the same order as
/// `vmpi::Strategy::CONCRETE` (and every `strategy_uses` array):
/// centralized, distributed, sparse, hierarchical.
pub const STRATEGY_NAMES: [&str; 4] = ["CC", "DC", "Sparse", "Hier"];

/// Per-step scalar history of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepTrace {
    /// Wall time of this step — measured for the serial/threaded
    /// backends, modelled (max over ranks per phase) for the cluster.
    pub step_time: f64,
    /// Load-imbalance indicator measured this step.
    pub lii: f64,
    /// Particle share per rank (fraction of the population).
    pub share: Vec<f64>,
    /// Whether a rebalance happened this step.
    pub rebalanced: bool,
    /// Messages sent this step — world-wide wire messages for the
    /// threaded backend, protocol-predicted for the modelled one, 0
    /// for serial runs.
    pub transactions: u64,
    /// Bytes sent this step (same provenance as `transactions`).
    pub bytes: u64,
    /// Exchanges carried this step per concrete strategy, in
    /// [`STRATEGY_NAMES`] order.
    pub strategy_uses: [u64; 4],
}

impl StepTrace {
    /// JSON object for the trace sinks (`index` = step number).
    pub fn to_json(&self, index: usize) -> Json {
        obj(vec![
            ("type", Json::Str("step".into())),
            ("step", Json::U64(index as u64)),
            ("time", Json::Num(self.step_time)),
            ("lii", Json::Num(self.lii)),
            (
                "share",
                Json::Arr(self.share.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("rebalanced", Json::Bool(self.rebalanced)),
            ("transactions", Json::U64(self.transactions)),
            ("bytes", Json::U64(self.bytes)),
            (
                "strategy_uses",
                Json::Arr(self.strategy_uses.iter().map(|&u| Json::U64(u)).collect()),
            ),
        ])
    }
}

/// One particle exchange carried by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeEvent {
    /// DSMC step the exchange happened in.
    pub step: usize,
    /// [`Phase::DsmcExchange`] or [`Phase::PicExchange`].
    pub phase: Phase,
    /// PIC substep index (0 for the DSMC exchange).
    pub sub: usize,
    /// Concrete strategy that carried it ([`STRATEGY_NAMES`] index).
    pub strategy: usize,
    /// Messages attributed to this exchange. Exact (protocol
    /// prediction) for the modelled backend; for the threaded backend
    /// a world-counter delta observed around the exchange, which is
    /// approximate when other ranks are mid-flight — per-*step* totals
    /// are exact there, per-exchange attribution is best-effort.
    pub transactions: u64,
    /// Bytes attributed to this exchange (same provenance).
    pub bytes: u64,
    /// Worst per-rank message count (protocol prediction; 0 when
    /// unknown, i.e. on the threaded backend).
    pub max_rank_msgs: u64,
    /// Ordered node pairs carrying an aggregated trunk frame (Hier
    /// only; 0 for the flat strategies and the threaded backend).
    pub node_pairs: u64,
    /// Bytes of the aggregated leader-to-leader frames (same
    /// provenance as `node_pairs`).
    pub aggregated_bytes: u64,
}

impl ExchangeEvent {
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("type", Json::Str("exchange".into())),
            ("step", Json::U64(self.step as u64)),
            ("phase", Json::Str(self.phase.name().into())),
            ("sub", Json::U64(self.sub as u64)),
            (
                "strategy",
                Json::Str(STRATEGY_NAMES[self.strategy.min(STRATEGY_NAMES.len() - 1)].into()),
            ),
            ("transactions", Json::U64(self.transactions)),
            ("bytes", Json::U64(self.bytes)),
            ("max_rank_msgs", Json::U64(self.max_rank_msgs)),
            ("node_pairs", Json::U64(self.node_pairs)),
            ("aggregated_bytes", Json::U64(self.aggregated_bytes)),
        ])
    }
}

/// One re-decomposition performed by the dynamic load balancer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceEvent {
    /// DSMC step the rebalance happened in.
    pub step: usize,
    /// The load-imbalance indicator that triggered it.
    pub lii: f64,
    /// Particles migrated by the re-decomposition.
    pub migrated: u64,
    /// Wall seconds spent in the balancer (WLM + partition + KM
    /// remap), as measured around the decision.
    pub remap_seconds: f64,
    /// Stable name of the cost source that produced the partition
    /// weights (`"paper_wlm"`, `"timer_augmented"`).
    pub cost_source: &'static str,
    /// Stable name of the decomposition mode (`"unified"`,
    /// `"eullag"`).
    pub decomposition: &'static str,
    /// Smoothed per-unit cost rates of the cost source at decision
    /// time: seconds per neutral move, per collision pair, per
    /// charged move. Zeros for analytic sources.
    pub cost_rates: [f64; 3],
}

impl RebalanceEvent {
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("type", Json::Str("rebalance".into())),
            ("step", Json::U64(self.step as u64)),
            ("lii", Json::Num(self.lii)),
            ("migrated", Json::U64(self.migrated)),
            ("remap_seconds", Json::Num(self.remap_seconds)),
            ("cost_source", Json::Str(self.cost_source.into())),
            ("decomposition", Json::Str(self.decomposition.into())),
            (
                "cost_rates",
                Json::Arr(self.cost_rates.iter().map(|&r| Json::Num(r)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn step_trace_json_roundtrips() {
        let t = StepTrace {
            step_time: 0.25,
            lii: 1.5,
            share: vec![0.5, 0.5],
            rebalanced: true,
            transactions: 12,
            bytes: 3456,
            strategy_uses: [0, 10, 2, 0],
        };
        let v = parse(&t.to_json(7).to_string()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("step"));
        assert_eq!(v.get("step").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("transactions").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("bytes").unwrap().as_u64(), Some(3456));
        assert_eq!(v.get("share").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rebalance_event_json_carries_modes_and_rates() {
        let e = RebalanceEvent {
            step: 21,
            lii: 2.4,
            migrated: 120,
            remap_seconds: 0.003,
            cost_source: "timer_augmented",
            decomposition: "eullag",
            cost_rates: [1e-7, 2e-9, 3e-7],
        };
        let v = parse(&e.to_json().to_string()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("rebalance"));
        assert_eq!(
            v.get("cost_source").unwrap().as_str(),
            Some("timer_augmented")
        );
        assert_eq!(v.get("decomposition").unwrap().as_str(), Some("eullag"));
        let rates = v.get("cost_rates").unwrap().as_array().unwrap();
        assert_eq!(rates.len(), 3);
        assert_eq!(rates[1].as_f64(), Some(2e-9));
    }

    #[test]
    fn exchange_event_names_strategy() {
        let e = ExchangeEvent {
            step: 1,
            phase: Phase::PicExchange,
            sub: 1,
            strategy: 2,
            transactions: 4,
            bytes: 64,
            max_rank_msgs: 2,
            node_pairs: 0,
            aggregated_bytes: 0,
        };
        let v = parse(&e.to_json().to_string()).unwrap();
        assert_eq!(v.get("strategy").unwrap().as_str(), Some("Sparse"));
        assert_eq!(v.get("phase").unwrap().as_str(), Some("PIC_Exchange"));
    }

    #[test]
    fn exchange_event_names_hier_and_carries_aggregation() {
        let e = ExchangeEvent {
            step: 2,
            phase: Phase::DsmcExchange,
            sub: 0,
            strategy: 3,
            transactions: 3,
            bytes: 600,
            max_rank_msgs: 2,
            node_pairs: 1,
            aggregated_bytes: 139,
        };
        let v = parse(&e.to_json().to_string()).unwrap();
        assert_eq!(v.get("strategy").unwrap().as_str(), Some("Hier"));
        assert_eq!(v.get("node_pairs").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("aggregated_bytes").unwrap().as_u64(), Some(139));
    }
}
