//! The public observer API of the step pipeline.
//!
//! An [`Observer`] receives everything the engine measures while a
//! run is in flight: per-phase times, per-exchange traffic, rebalance
//! decisions and the per-step trace. All methods default to no-ops,
//! so an implementation opts into exactly the signals it needs. This
//! trait supersedes the engine-private `Probe` hook; the solver crate
//! keeps an adapter for legacy probes.

use crate::events::{ExchangeEvent, RebalanceEvent, StepTrace};
use crate::phase::Phase;

/// Observer of a coupled run. Called synchronously from the step
/// pipeline; implementations should be cheap (defer aggregation,
/// don't block).
pub trait Observer {
    /// `phase` took `seconds` this step (once per phase per step,
    /// after the step completes, in [`Phase::ALL`] order).
    fn phase(&mut self, phase: Phase, seconds: f64) {
        let _ = (phase, seconds);
    }

    /// A particle exchange completed.
    fn exchange(&mut self, ev: &ExchangeEvent) {
        let _ = ev;
    }

    /// The load balancer re-decomposed the domain.
    fn rebalance(&mut self, ev: &RebalanceEvent) {
        let _ = ev;
    }

    /// Step `index` finished with this trace.
    fn step(&mut self, index: usize, trace: &StepTrace) {
        let _ = (index, trace);
    }

    /// One sample of a named per-cell field (e.g. `"density_h"`,
    /// `"phi"`), fed once per step by drivers that keep time-averaged
    /// diagnostics. Purely observational — implementations must not
    /// feed anything back into the physics.
    fn field_sample(&mut self, name: &'static str, values: &[f64]) {
        let _ = (name, values);
    }
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn phase(&mut self, phase: Phase, seconds: f64) {
        (**self).phase(phase, seconds);
    }
    fn exchange(&mut self, ev: &ExchangeEvent) {
        (**self).exchange(ev);
    }
    fn rebalance(&mut self, ev: &RebalanceEvent) {
        (**self).rebalance(ev);
    }
    fn step(&mut self, index: usize, trace: &StepTrace) {
        (**self).step(index, trace);
    }
    fn field_sample(&mut self, name: &'static str, values: &[f64]) {
        (**self).field_sample(name, values);
    }
}

/// Fan-out to two observers (nest for more).
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    fn phase(&mut self, phase: Phase, seconds: f64) {
        self.0.phase(phase, seconds);
        self.1.phase(phase, seconds);
    }
    fn exchange(&mut self, ev: &ExchangeEvent) {
        self.0.exchange(ev);
        self.1.exchange(ev);
    }
    fn rebalance(&mut self, ev: &RebalanceEvent) {
        self.0.rebalance(ev);
        self.1.rebalance(ev);
    }
    fn step(&mut self, index: usize, trace: &StepTrace) {
        self.0.step(index, trace);
        self.1.step(index, trace);
    }
    fn field_sample(&mut self, name: &'static str, values: &[f64]) {
        self.0.field_sample(name, values);
        self.1.field_sample(name, values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Count(usize);
    impl Observer for Count {
        fn phase(&mut self, _p: Phase, _s: f64) {
            self.0 += 1;
        }
        fn step(&mut self, _i: usize, _t: &StepTrace) {
            self.0 += 10;
        }
        fn field_sample(&mut self, _n: &'static str, _v: &[f64]) {
            self.0 += 100;
        }
    }

    #[test]
    fn tee_fans_out_every_signal() {
        let mut tee = Tee(Count::default(), Count::default());
        tee.phase(Phase::Inject, 0.1);
        tee.step(0, &StepTrace::default());
        tee.field_sample("rho", &[1.0]);
        assert_eq!(tee.0 .0, 111);
        assert_eq!(tee.1 .0, 111);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Count::default();
        {
            let mut r: &mut Count = &mut c;
            Observer::phase(&mut r, Phase::Inject, 0.0);
        }
        assert_eq!(c.0, 1);
    }
}
