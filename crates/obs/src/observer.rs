//! The public observer API of the step pipeline.
//!
//! An [`Observer`] receives everything the engine measures while a
//! run is in flight: per-phase times, per-exchange traffic, rebalance
//! decisions and the per-step trace. All methods default to no-ops,
//! so an implementation opts into exactly the signals it needs. This
//! trait supersedes the engine-private `Probe` hook; the solver crate
//! keeps an adapter for legacy probes.

use crate::events::{ExchangeEvent, RebalanceEvent, StepTrace};
use crate::phase::Phase;

/// Observer of a coupled run. Called synchronously from the step
/// pipeline; implementations should be cheap (defer aggregation,
/// don't block).
pub trait Observer {
    /// `phase` took `seconds` this step (once per phase per step,
    /// after the step completes, in [`Phase::ALL`] order).
    fn phase(&mut self, phase: Phase, seconds: f64) {
        let _ = (phase, seconds);
    }

    /// A particle exchange completed.
    fn exchange(&mut self, ev: &ExchangeEvent) {
        let _ = ev;
    }

    /// The load balancer re-decomposed the domain.
    fn rebalance(&mut self, ev: &RebalanceEvent) {
        let _ = ev;
    }

    /// Step `index` finished with this trace.
    fn step(&mut self, index: usize, trace: &StepTrace) {
        let _ = (index, trace);
    }
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn phase(&mut self, phase: Phase, seconds: f64) {
        (**self).phase(phase, seconds);
    }
    fn exchange(&mut self, ev: &ExchangeEvent) {
        (**self).exchange(ev);
    }
    fn rebalance(&mut self, ev: &RebalanceEvent) {
        (**self).rebalance(ev);
    }
    fn step(&mut self, index: usize, trace: &StepTrace) {
        (**self).step(index, trace);
    }
}

/// Fan-out to two observers (nest for more).
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    fn phase(&mut self, phase: Phase, seconds: f64) {
        self.0.phase(phase, seconds);
        self.1.phase(phase, seconds);
    }
    fn exchange(&mut self, ev: &ExchangeEvent) {
        self.0.exchange(ev);
        self.1.exchange(ev);
    }
    fn rebalance(&mut self, ev: &RebalanceEvent) {
        self.0.rebalance(ev);
        self.1.rebalance(ev);
    }
    fn step(&mut self, index: usize, trace: &StepTrace) {
        self.0.step(index, trace);
        self.1.step(index, trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Count(usize);
    impl Observer for Count {
        fn phase(&mut self, _p: Phase, _s: f64) {
            self.0 += 1;
        }
        fn step(&mut self, _i: usize, _t: &StepTrace) {
            self.0 += 10;
        }
    }

    #[test]
    fn tee_fans_out_every_signal() {
        let mut tee = Tee(Count::default(), Count::default());
        tee.phase(Phase::Inject, 0.1);
        tee.step(0, &StepTrace::default());
        assert_eq!(tee.0 .0, 11);
        assert_eq!(tee.1 .0, 11);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Count::default();
        {
            let mut r: &mut Count = &mut c;
            Observer::phase(&mut r, Phase::Inject, 0.0);
        }
        assert_eq!(c.0, 1);
    }
}
