//! Minimal JSON value, writer and parser.
//!
//! The build environment vendors `serde` as an API stub (no real
//! serialization), so the trace sinks and the run-report export write
//! JSON through this hand-rolled value type instead. The parser
//! exists so tests (and downstream tooling) can round-trip
//! [`crate::sink::JsonlSink`] output without external crates; it
//! accepts exactly the JSON this module emits plus ordinary
//! whitespace, and rejects anything malformed.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite float (non-finite values serialize as `null`).
    Num(f64),
    /// Unsigned integer, kept exact (u64 counters exceed f64's 2^53
    /// integer range in principle).
    U64(u64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(u) => Some(*u),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut buf = String::new();
        self.write_into(&mut buf);
        f.write_str(&buf)
    }
}

impl Json {
    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{}` on f64 always round-trips (shortest exact
                    // representation) and is valid JSON
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::U64(u) => out.push_str(&format!("{u}")),
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Build an object from key/value pairs (keeps insertion order).
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

/// The canonical form of a value: object keys sorted bytewise at
/// every nesting level (arrays keep their order — element order is
/// meaningful). Two structurally equal documents that differ only in
/// member order canonicalize to the same value, and hence to the same
/// serialized string — the property the config-hash cache key relies
/// on. Scalars are untouched; the writer already emits the shortest
/// round-tripping form for floats.
pub fn canonicalize(v: &Json) -> Json {
    match v {
        Json::Arr(items) => Json::Arr(items.iter().map(canonicalize).collect()),
        Json::Obj(members) => {
            let mut sorted: Vec<(String, Json)> = members
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Json::Obj(sorted)
        }
        scalar => scalar.clone(),
    }
}

/// Parse one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(format!("bad number at byte {start}"));
        }
        let mut is_int = true;
        if self.peek() == Some(b'.') {
            is_int = false;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_int = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_int && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = obj(vec![
            ("a", Json::U64(18_446_744_073_709_551_615)),
            ("b", Json::Num(-1.5e-3)),
            ("s", Json::Str("he\"llo\n".into())),
            (
                "arr",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(0.25)]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_counters_stay_exact() {
        let v = Json::U64(u64::MAX);
        let back = parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789e12] {
            let back = parse(&Json::Num(x).to_string()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,]", "{\"a\"1}", "tru", "1.2.3", "\"\\x\"", "{} {}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn canonicalize_sorts_keys_at_every_depth() {
        let a = parse(r#"{"b":1,"a":{"y":[{"q":1,"p":2}],"x":0}}"#).unwrap();
        let b = parse(r#"{"a":{"x":0,"y":[{"p":2,"q":1}]},"b":1}"#).unwrap();
        assert_ne!(a.to_string(), b.to_string());
        assert_eq!(canonicalize(&a).to_string(), canonicalize(&b).to_string());
        assert_eq!(
            canonicalize(&a).to_string(),
            r#"{"a":{"x":0,"y":[{"p":2,"q":1}]},"b":1}"#
        );
        // arrays keep element order
        let arr = parse("[2,1]").unwrap();
        assert_eq!(canonicalize(&arr).to_string(), "[2,1]");
        // canonicalizing is idempotent
        let once = canonicalize(&a);
        assert_eq!(canonicalize(&once), once);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"k\" : [ 1 , { \"n\" : null } ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 2);
    }
}
