//! Structured trace sinks: where pipeline events go.
//!
//! A [`TraceSink`] consumes [`TraceEvent`]s — one per step, exchange
//! and rebalance, plus a leading metadata record. Three
//! implementations cover every consumer:
//!
//! * [`NullSink`] — the default; events vanish at zero cost.
//! * [`JsonlSink`] — one JSON object per line (machine-readable,
//!   append-only, versioned via the meta record). This is what
//!   `--trace-out <path>` selects in the bench binaries.
//! * [`MemorySink`] — events accumulate in a shared in-memory buffer,
//!   for tests and in-process consumers.

use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};

use crate::events::{ExchangeEvent, RebalanceEvent, StepTrace};
use crate::json::{obj, Json};
use crate::SCHEMA_VERSION;

/// One record of the structured trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Leading record: schema version and run shape.
    Meta { ranks: usize, steps: usize },
    /// One DSMC step completed.
    Step { index: usize, trace: StepTrace },
    /// One particle exchange completed.
    Exchange(ExchangeEvent),
    /// One rebalance performed.
    Rebalance(RebalanceEvent),
    /// Trailing record of a run executed over a faulty transport:
    /// what the chaos layer injected and what the reliability /
    /// recovery machinery did about it. Emitted once, before the
    /// final flush, and only when faults were possible (a fault plan
    /// was installed).
    FaultSummary {
        /// Checkpoint restarts performed after detected rank deaths.
        recoveries: usize,
        /// Journal retransmissions by the reliability sublayer.
        retries: u64,
        /// Duplicate frames discarded by sequence-number dedup.
        dedup_dropped: u64,
        /// Faults injected (drops + duplicates + delays, cumulative
        /// across recovery replays).
        injected: u64,
    },
}

impl TraceEvent {
    /// The event as one JSON object (what [`JsonlSink`] writes per
    /// line).
    pub fn to_json(&self) -> Json {
        match self {
            TraceEvent::Meta { ranks, steps } => obj(vec![
                ("type", Json::Str("meta".into())),
                ("schema_version", Json::U64(SCHEMA_VERSION as u64)),
                ("ranks", Json::U64(*ranks as u64)),
                ("steps", Json::U64(*steps as u64)),
            ]),
            TraceEvent::Step { index, trace } => trace.to_json(*index),
            TraceEvent::Exchange(ev) => ev.to_json(),
            TraceEvent::Rebalance(ev) => ev.to_json(),
            TraceEvent::FaultSummary {
                recoveries,
                retries,
                dedup_dropped,
                injected,
            } => obj(vec![
                ("type", Json::Str("fault_summary".into())),
                ("recoveries", Json::U64(*recoveries as u64)),
                ("retries", Json::U64(*retries)),
                ("dedup_dropped", Json::U64(*dedup_dropped)),
                ("injected", Json::U64(*injected)),
            ]),
        }
    }
}

/// Consumer of trace events. Implementations must be `Send` so the
/// threaded driver can hand the sink to rank 0's thread.
pub trait TraceSink: Send {
    fn emit(&mut self, ev: &TraceEvent);
    /// Flush buffered output (called once at end of run).
    fn flush(&mut self) {}
}

/// The default sink: drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _ev: &TraceEvent) {}
}

/// Writes one JSON object per line.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    out: BufWriter<W>,
}

impl JsonlSink<std::fs::File> {
    /// Create (truncate) `path` and write events to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: BufWriter::new(out),
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&mut self, ev: &TraceEvent) {
        // an I/O error on a trace stream must not kill the simulation;
        // drop the event (flush reports persistent failure via stderr)
        let _ = writeln!(self.out, "{}", ev.to_json());
    }

    fn flush(&mut self) {
        if let Err(e) = self.out.flush() {
            eprintln!("obs: trace flush failed: {e}");
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Shared in-memory sink: clones see the same buffer, so a test can
/// keep one handle and hand the other to the run.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Copy of the events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events.lock().unwrap().push(ev.clone());
    }
}

/// Broadcast sink: every emitted event is fanned out to every live
/// subscriber channel, and optionally teed into one inner sink (so a
/// run can stream to in-process followers *and* keep its JSONL file).
///
/// Clones share the subscriber list, which is how the job server
/// works: the server keeps one handle per job, hands a clone to the
/// run via [`TraceSpec::Fanout`], and [`FanoutSink::subscribe`] can
/// attach followers at any time. Subscribers whose receiver was
/// dropped are pruned on the next emit; [`FanoutSink::close`] drops
/// every sender so followers observe a clean end-of-stream.
#[derive(Clone, Default)]
pub struct FanoutSink {
    subscribers: Arc<Mutex<Vec<mpsc::Sender<TraceEvent>>>>,
    tee: Arc<Mutex<Option<Box<dyn TraceSink>>>>,
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("subscribers", &self.subscriber_count())
            .finish_non_exhaustive()
    }
}

impl FanoutSink {
    pub fn new() -> Self {
        FanoutSink::default()
    }

    /// Attach a follower: an unbounded receiver of every event
    /// emitted from now on.
    pub fn subscribe(&self) -> mpsc::Receiver<TraceEvent> {
        let (tx, rx) = mpsc::channel();
        self.subscribers.lock().unwrap().push(tx);
        rx
    }

    /// Also deliver every event into `sink` (e.g. the JSONL sink the
    /// submitter originally asked for).
    pub fn tee_into(&self, sink: Box<dyn TraceSink>) {
        *self.tee.lock().unwrap() = Some(sink);
    }

    /// Live subscriber channels (dropped receivers are only pruned on
    /// the next emit).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().unwrap().len()
    }

    /// Drop every subscriber sender (followers see the channel close)
    /// and flush + drop the teed sink. The handle stays usable; later
    /// subscribers start from an empty stream.
    pub fn close(&self) {
        self.subscribers.lock().unwrap().clear();
        if let Some(mut sink) = self.tee.lock().unwrap().take() {
            sink.flush();
        }
    }
}

impl TraceSink for FanoutSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.subscribers
            .lock()
            .unwrap()
            .retain(|tx| tx.send(ev.clone()).is_ok());
        if let Some(sink) = self.tee.lock().unwrap().as_mut() {
            sink.emit(ev);
        }
    }

    fn flush(&mut self) {
        if let Some(sink) = self.tee.lock().unwrap().as_mut() {
            sink.flush();
        }
    }
}

/// Where a run's trace should go — the cloneable *specification*
/// carried by the run configuration; the driver materializes the sink
/// at run start via [`TraceSpec::make_sink`].
#[derive(Debug, Clone, Default)]
pub enum TraceSpec {
    /// No trace (the default).
    #[default]
    Off,
    /// Write JSONL to this path (created/truncated at run start).
    Jsonl(PathBuf),
    /// Record into this shared buffer.
    Memory(MemorySink),
    /// Fan every event out to the sink's subscribers (and its teed
    /// inner sink, if any). This is how the job server streams live
    /// progress to followers.
    Fanout(FanoutSink),
}

impl TraceSpec {
    /// Materialize the sink. Only [`TraceSpec::Jsonl`] can fail (file
    /// creation).
    pub fn make_sink(&self) -> std::io::Result<Box<dyn TraceSink>> {
        Ok(match self {
            TraceSpec::Off => Box::new(NullSink),
            TraceSpec::Jsonl(path) => Box::new(JsonlSink::create(path)?),
            TraceSpec::Memory(m) => Box::new(m.clone()),
            TraceSpec::Fanout(f) => Box::new(f.clone()),
        })
    }

    /// Whether any events would be recorded.
    pub fn is_off(&self) -> bool {
        matches!(self, TraceSpec::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&TraceEvent::Meta { ranks: 3, steps: 2 });
        sink.emit(&TraceEvent::Step {
            index: 0,
            trace: StepTrace::default(),
        });
        sink.flush();
        let text = String::from_utf8(sink.out.get_ref().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let meta = parse(lines[0]).unwrap();
        assert_eq!(
            meta.get("schema_version").unwrap().as_u64(),
            Some(SCHEMA_VERSION as u64)
        );
        assert_eq!(
            parse(lines[1]).unwrap().get("type").unwrap().as_str(),
            Some("step")
        );
    }

    #[test]
    fn memory_sink_clones_share_buffer() {
        let keep = MemorySink::new();
        let mut given: Box<dyn TraceSink> = TraceSpec::Memory(keep.clone()).make_sink().unwrap();
        given.emit(&TraceEvent::Meta { ranks: 1, steps: 1 });
        assert_eq!(keep.len(), 1);
        assert!(matches!(
            keep.events()[0],
            TraceEvent::Meta { ranks: 1, .. }
        ));
    }

    #[test]
    fn fault_summary_json_carries_every_counter() {
        let ev = TraceEvent::FaultSummary {
            recoveries: 1,
            retries: 9,
            dedup_dropped: 4,
            injected: 20,
        };
        let v = parse(&ev.to_json().to_string()).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("fault_summary"));
        assert_eq!(v.get("recoveries").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("retries").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("dedup_dropped").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("injected").unwrap().as_u64(), Some(20));
    }

    #[test]
    fn fanout_reaches_every_subscriber_and_tee() {
        let fan = FanoutSink::new();
        let keep = MemorySink::new();
        fan.tee_into(Box::new(keep.clone()));
        let rx1 = fan.subscribe();
        let rx2 = fan.subscribe();
        let mut sink = TraceSpec::Fanout(fan.clone()).make_sink().unwrap();
        sink.emit(&TraceEvent::Meta { ranks: 2, steps: 5 });
        for rx in [&rx1, &rx2] {
            assert!(matches!(
                rx.try_recv().unwrap(),
                TraceEvent::Meta { ranks: 2, steps: 5 }
            ));
        }
        assert_eq!(keep.len(), 1, "teed sink saw the event");
        // a dropped receiver is pruned on the next emit
        drop(rx1);
        sink.emit(&TraceEvent::Meta { ranks: 2, steps: 5 });
        assert_eq!(fan.subscriber_count(), 1);
        // close ends the stream for followers
        fan.close();
        assert!(rx2.try_recv().is_ok(), "buffered event still delivered");
        assert!(rx2.recv().is_err(), "stream closed after close()");
    }

    #[test]
    fn off_spec_makes_null_sink() {
        let mut s = TraceSpec::Off.make_sink().unwrap();
        s.emit(&TraceEvent::Meta { ranks: 1, steps: 0 });
        assert!(TraceSpec::Off.is_off());
    }
}
