//! Low-overhead observability for the coupled DSMC/PIC stack.
//!
//! This crate is the single home for everything a run can *tell you*
//! about itself, decoupled from the solver so drivers, benches and
//! tests share one vocabulary:
//!
//! * [`Registry`] — typed metrics (counters, gauges, time
//!   histograms) behind cheap atomic handles; clones share state, so
//!   every rank thread taps the same registry.
//! * [`SpanTimer`] — hierarchical gap-free lap timers; the one code
//!   path phase attribution goes through in every backend.
//! * [`Observer`] — the public hook the step pipeline drives:
//!   per-phase times, per-exchange traffic, rebalances, per-step
//!   traces. All methods default to no-ops.
//! * [`TraceSink`] / [`TraceSpec`] — structured event streams:
//!   [`NullSink`] (default, zero cost), [`JsonlSink`] (one JSON
//!   object per line), [`MemorySink`] (tests).
//! * [`Recorder`] — the standard observer wiring a registry and a
//!   sink together.
//!
//! All exported JSON (trace lines, metric snapshots, run reports)
//! carries [`SCHEMA_VERSION`] so downstream tooling can detect
//! incompatible changes.

pub mod avg;
pub mod events;
pub mod json;
pub mod metrics;
pub mod observer;
pub mod phase;
pub mod recorder;
pub mod sink;
pub mod span;

/// Version tag stamped into every exported JSON artifact (trace meta
/// records and run reports). Bump on incompatible schema changes.
///
/// History: v1 introduced the versioned trace/report export; v2 adds
/// the optional `job` object on run reports (job id, canonical config
/// hash, cache-hit flag, queue/run wall times). v2 is a strict
/// superset of v1 — every v1 key is still present with the same
/// meaning, so v1 readers that look fields up by name keep working.
pub const SCHEMA_VERSION: u32 = 2;

pub use avg::TimeAverage;
pub use events::{ExchangeEvent, RebalanceEvent, StepTrace, STRATEGY_NAMES};
pub use json::Json;
pub use metrics::{
    Counter, Gauge, HistSnapshot, MetricKind, MetricValue, MetricsSnapshot, Registry, TimeHist,
};
pub use observer::{NullObserver, Observer, Tee};
pub use phase::{Breakdown, Phase};
pub use recorder::Recorder;
pub use sink::{FanoutSink, JsonlSink, MemorySink, NullSink, TraceEvent, TraceSink, TraceSpec};
pub use span::SpanTimer;
