//! Dual nested unstructured tetrahedral grids for coupled DSMC/PIC
//! (paper §IV-A).
//!
//! This crate provides:
//! * a small exact-enough geometry kernel ([`geom`]),
//! * the unstructured tet-mesh container with face adjacency
//!   ([`tet`]),
//! * the cylindrical-nozzle mesh generator standing in for
//!   SALOME-produced grids ([`nozzle`]),
//! * nested 1:8 refinement producing the fine PIC grid from the
//!   coarse DSMC grid ([`refine`]),
//! * point location and in-cell ray tracing used by the particle
//!   movers ([`locate`]), and
//! * quality statistics ([`quality`]).

pub mod geom;
pub mod locate;
pub mod nozzle;
pub mod quality;
pub mod refine;
pub mod tet;
pub mod vtk;

pub use geom::Vec3;
pub use locate::{first_exit, CellLocator};
pub use nozzle::NozzleSpec;
pub use refine::NestedMesh;
pub use tet::{BoundaryKind, FaceTag, TetMesh};
pub use vtk::{write_vtk, CellField};
