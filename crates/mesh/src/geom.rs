//! Small 3D vector and tetrahedron geometry kernel.
//!
//! Everything in this module is `f64`-based; the solver does not need
//! adaptive precision because mesh cells are well-shaped by
//! construction (Kuhn tetrahedra of a regular lattice, see
//! [`crate::nozzle`]).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-component double-precision vector used for positions,
/// velocities and fields.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in the direction of `self`; returns `Vec3::ZERO`
    /// for the zero vector rather than NaN.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// Signed volume of the tetrahedron `(a, b, c, d)`.
///
/// Positive when `(b-a, c-a, d-a)` form a right-handed basis. All mesh
/// generation in this crate produces positively oriented tets.
#[inline]
pub fn tet_volume_signed(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    (b - a).cross(c - a).dot(d - a) / 6.0
}

/// Absolute volume of the tetrahedron `(a, b, c, d)`.
#[inline]
pub fn tet_volume(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    tet_volume_signed(a, b, c, d).abs()
}

/// Centroid of a tetrahedron.
#[inline]
pub fn tet_centroid(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Vec3 {
    (a + b + c + d) / 4.0
}

/// Barycentric coordinates of point `p` with respect to tetrahedron
/// `(a, b, c, d)`.
///
/// Returned as `[wa, wb, wc, wd]` with `wa + wb + wc + wd == 1` (up to
/// roundoff). All four weights are non-negative iff `p` lies inside
/// the tet. The weights double as linear finite-element shape
/// functions, so they are reused for charge deposition and field
/// interpolation in the PIC solver.
pub fn barycentric(p: Vec3, a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> [f64; 4] {
    let vol = tet_volume_signed(a, b, c, d);
    if vol.abs() < f64::MIN_POSITIVE {
        // Degenerate tet: fall back to "all weight on a" which keeps
        // callers' invariants (weights sum to 1) intact.
        return [1.0, 0.0, 0.0, 0.0];
    }
    let inv = 1.0 / vol;
    let wa = tet_volume_signed(p, b, c, d) * inv;
    let wb = tet_volume_signed(a, p, c, d) * inv;
    let wc = tet_volume_signed(a, b, p, d) * inv;
    let wd = 1.0 - wa - wb - wc;
    [wa, wb, wc, wd]
}

/// Whether `p` lies inside (or on the boundary of) tet `(a,b,c,d)`,
/// with tolerance `eps` on the barycentric weights.
pub fn tet_contains(p: Vec3, a: Vec3, b: Vec3, c: Vec3, d: Vec3, eps: f64) -> bool {
    barycentric(p, a, b, c, d).iter().all(|&w| w >= -eps)
}

/// Intersection of the ray `r(t) = origin + t * dir` with the plane
/// through `p0` with (not necessarily unit) normal `n`.
///
/// Returns the parameter `t`, or `None` if the ray is parallel to the
/// plane.
#[inline]
pub fn ray_plane(origin: Vec3, dir: Vec3, p0: Vec3, n: Vec3) -> Option<f64> {
    let denom = dir.dot(n);
    if denom.abs() < 1e-300 {
        return None;
    }
    Some((p0 - origin).dot(n) / denom)
}

/// Outward normal (unnormalized) of the triangle `(a, b, c)` as seen
/// from the opposite vertex `opp`: the returned vector points away
/// from `opp`.
#[inline]
pub fn outward_face_normal(a: Vec3, b: Vec3, c: Vec3, opp: Vec3) -> Vec3 {
    let n = (b - a).cross(c - a);
    if n.dot(opp - a) > 0.0 {
        -n
    } else {
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Vec3 = Vec3::new(0.0, 0.0, 0.0);
    const B: Vec3 = Vec3::new(1.0, 0.0, 0.0);
    const C: Vec3 = Vec3::new(0.0, 1.0, 0.0);
    const D: Vec3 = Vec3::new(0.0, 0.0, 1.0);

    #[test]
    fn vector_algebra() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let w = Vec3::new(4.0, -1.0, 0.5);
        assert_eq!(v + w, Vec3::new(5.0, 1.0, 3.5));
        assert_eq!(v - w, Vec3::new(-3.0, 3.0, 2.5));
        assert_eq!(v * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * v, v * 2.0);
        assert!((v.dot(w) - (4.0 - 2.0 + 1.5)).abs() < 1e-15);
        // cross product is perpendicular to both operands
        let c = v.cross(w);
        assert!(c.dot(v).abs() < 1e-12);
        assert!(c.dot(w).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        let n = v.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-15);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn unit_tet_volume() {
        assert!((tet_volume(A, B, C, D) - 1.0 / 6.0).abs() < 1e-15);
        // swapping two vertices flips the sign
        assert!(tet_volume_signed(A, B, C, D) > 0.0);
        assert!(tet_volume_signed(B, A, C, D) < 0.0);
    }

    #[test]
    fn barycentric_vertices_and_centroid() {
        let w = barycentric(A, A, B, C, D);
        assert!((w[0] - 1.0).abs() < 1e-12);
        let cen = tet_centroid(A, B, C, D);
        let w = barycentric(cen, A, B, C, D);
        for wi in w {
            assert!((wi - 0.25).abs() < 1e-12);
        }
        let s: f64 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        assert!(tet_contains(Vec3::new(0.1, 0.1, 0.1), A, B, C, D, 1e-12));
        assert!(!tet_contains(Vec3::new(0.9, 0.9, 0.9), A, B, C, D, 1e-12));
        // face point counts as inside
        assert!(tet_contains(Vec3::new(0.25, 0.25, 0.0), A, B, C, D, 1e-12));
    }

    #[test]
    fn ray_plane_intersection() {
        // plane z = 1 with normal +z, ray from origin along +z
        let t = ray_plane(Vec3::ZERO, D, D, D).unwrap();
        assert!((t - 1.0).abs() < 1e-15);
        // parallel ray
        assert!(ray_plane(Vec3::ZERO, B, D, D).is_none());
    }

    #[test]
    fn outward_normal_points_away() {
        // face (B, C, D) opposite A in the unit tet
        let n = outward_face_normal(B, C, D, A);
        // A is at the origin; the face centroid minus A should have a
        // positive component along the outward normal.
        let fc = (B + C + D) / 3.0;
        assert!(n.dot(fc - A) > 0.0);
    }
}
