//! Legacy-VTK export of tetrahedral meshes with cell fields.
//!
//! Writes ASCII legacy `.vtk` (UNSTRUCTURED_GRID) files that ParaView
//! and VisIt open directly — the practical way to look at plume
//! densities, potentials and rank ownership from the examples and
//! experiment binaries.

use crate::tet::TetMesh;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A named per-cell scalar field to attach to the export.
pub struct CellField<'a> {
    pub name: &'a str,
    pub values: &'a [f64],
}

/// Render `mesh` (and optional per-cell scalar fields) as an ASCII
/// legacy VTK string.
pub fn to_vtk_string(mesh: &TetMesh, fields: &[CellField<'_>]) -> String {
    for f in fields {
        assert_eq!(
            f.values.len(),
            mesh.num_cells(),
            "field '{}' length mismatch",
            f.name
        );
    }
    let mut s = String::new();
    s.push_str("# vtk DataFile Version 3.0\n");
    s.push_str("dsmc-pic tetrahedral mesh\n");
    s.push_str("ASCII\nDATASET UNSTRUCTURED_GRID\n");

    let _ = writeln!(s, "POINTS {} double", mesh.num_nodes());
    for p in &mesh.nodes {
        let _ = writeln!(s, "{:.9e} {:.9e} {:.9e}", p.x, p.y, p.z);
    }

    let nc = mesh.num_cells();
    let _ = writeln!(s, "CELLS {} {}", nc, nc * 5);
    for t in &mesh.tets {
        let _ = writeln!(s, "4 {} {} {} {}", t[0], t[1], t[2], t[3]);
    }
    let _ = writeln!(s, "CELL_TYPES {nc}");
    for _ in 0..nc {
        s.push_str("10\n"); // VTK_TETRA
    }

    if !fields.is_empty() {
        let _ = writeln!(s, "CELL_DATA {nc}");
        for f in fields {
            let _ = writeln!(s, "SCALARS {} double 1", f.name);
            s.push_str("LOOKUP_TABLE default\n");
            for v in f.values {
                let _ = writeln!(s, "{v:.9e}");
            }
        }
    }
    s
}

/// Write the mesh (and fields) to a `.vtk` file.
pub fn write_vtk<P: AsRef<Path>>(
    path: P,
    mesh: &TetMesh,
    fields: &[CellField<'_>],
) -> io::Result<()> {
    std::fs::write(path, to_vtk_string(mesh, fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nozzle::NozzleSpec;

    #[test]
    fn vtk_structure_is_complete() {
        let m = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        let density: Vec<f64> = (0..m.num_cells()).map(|c| c as f64).collect();
        let owner: Vec<f64> = (0..m.num_cells()).map(|c| (c % 4) as f64).collect();
        let s = to_vtk_string(
            &m,
            &[
                CellField {
                    name: "density",
                    values: &density,
                },
                CellField {
                    name: "owner",
                    values: &owner,
                },
            ],
        );
        assert!(s.starts_with("# vtk DataFile"));
        assert!(s.contains(&format!("POINTS {} double", m.num_nodes())));
        assert!(s.contains(&format!("CELLS {} {}", m.num_cells(), m.num_cells() * 5)));
        assert!(s.contains("SCALARS density double 1"));
        assert!(s.contains("SCALARS owner double 1"));
        // VTK_TETRA code appears once per cell
        let tetra_lines = s.lines().filter(|l| *l == "10").count();
        assert_eq!(tetra_lines, m.num_cells());
        // node indices in CELLS stay in range
        for line in s
            .lines()
            .skip_while(|l| !l.starts_with("CELLS"))
            .skip(1)
            .take(m.num_cells())
        {
            let ids: Vec<usize> = line
                .split_whitespace()
                .skip(1)
                .map(|x| x.parse().unwrap())
                .collect();
            assert_eq!(ids.len(), 4);
            assert!(ids.iter().all(|&i| i < m.num_nodes()));
        }
    }

    #[test]
    fn file_roundtrip() {
        let m = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        let dir = std::env::temp_dir().join("dsmcpic_vtk_test.vtk");
        write_vtk(&dir, &m, &[]).unwrap();
        let back = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(back, to_vtk_string(&m, &[]));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_field_length() {
        let m = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        to_vtk_string(
            &m,
            &[CellField {
                name: "bad",
                values: &[1.0],
            }],
        );
    }
}
