//! Parametric tetrahedral mesh generator for the 3D cylindrical
//! nozzle test geometry (paper Fig. 7).
//!
//! The paper generates its grids with the SALOME platform; we build a
//! faithful stand-in: a cylinder of radius `radius` and length
//! `length` along +z, voxelised on a regular lattice and
//! tetrahedralised with the Kuhn (Freudenthal) 6-tet subdivision.
//! Kuhn subdivision is translation-invariant, so faces of adjacent
//! lattice cubes always match and the resulting mesh is conforming.
//!
//! Boundary faces are tagged:
//! * `z == 0` within `inlet_radius` of the axis → [`BoundaryKind::Inlet`]
//! * `z == length` → [`BoundaryKind::Outlet`]
//! * everything else (the stair-stepped cylinder jacket and the
//!   annular front plate) → [`BoundaryKind::Wall`]

use crate::geom::Vec3;
use crate::tet::{BoundaryKind, TetMesh};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of the cylindrical nozzle mesh.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NozzleSpec {
    /// Cylinder radius (m).
    pub radius: f64,
    /// Cylinder length along +z (m).
    pub length: f64,
    /// Radius of the injection disc at `z == 0` (m).
    pub inlet_radius: f64,
    /// Number of lattice cells across the cylinder diameter.
    pub nd: usize,
    /// Number of lattice cells along the cylinder axis.
    pub nz: usize,
}

impl Default for NozzleSpec {
    fn default() -> Self {
        // Millimetre-range plume domain, as in the paper's setup.
        NozzleSpec {
            radius: 5e-3,
            length: 20e-3,
            inlet_radius: 1.5e-3,
            nd: 8,
            nz: 16,
        }
    }
}

/// The six Kuhn tetrahedra of the unit cube, as corner offsets.
///
/// Every tet contains the main diagonal (0,0,0)–(1,1,1); the two
/// middle vertices walk the axes in one of the 3! = 6 orders.
const KUHN_PERMS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

impl NozzleSpec {
    /// Lattice spacing in the radial plane.
    pub fn hx(&self) -> f64 {
        2.0 * self.radius / self.nd as f64
    }

    /// Lattice spacing along the axis.
    pub fn hz(&self) -> f64 {
        self.length / self.nz as f64
    }

    /// Generate the coarse (DSMC) mesh.
    pub fn generate(&self) -> TetMesh {
        assert!(self.nd >= 2 && self.nz >= 1, "nozzle lattice too small");
        assert!(self.inlet_radius <= self.radius);
        let hx = self.hx();
        let hz = self.hz();
        let r2 = self.radius * self.radius;

        let mut node_ids: HashMap<(i64, i64, i64), u32> = HashMap::new();
        let mut nodes: Vec<Vec3> = Vec::new();
        let mut tets: Vec<[u32; 4]> = Vec::new();

        let n = self.nd as i64;
        let mut node = |key: (i64, i64, i64), nodes: &mut Vec<Vec3>| -> u32 {
            *node_ids.entry(key).or_insert_with(|| {
                let id = nodes.len() as u32;
                nodes.push(Vec3::new(
                    key.0 as f64 * hx - self.radius,
                    key.1 as f64 * hx - self.radius,
                    key.2 as f64 * hz,
                ));
                id
            })
        };

        for k in 0..self.nz as i64 {
            for j in 0..n {
                for i in 0..n {
                    // Keep the cube if its centre lies inside the
                    // cylinder cross-section.
                    let cx = (i as f64 + 0.5) * hx - self.radius;
                    let cy = (j as f64 + 0.5) * hx - self.radius;
                    if cx * cx + cy * cy > r2 {
                        continue;
                    }
                    // Corner ids of the cube, indexed by bitmask
                    // dx | dy<<1 | dz<<2.
                    let mut corner = [0u32; 8];
                    for (m, c) in corner.iter_mut().enumerate() {
                        let d = (m as i64 & 1, (m as i64 >> 1) & 1, (m as i64 >> 2) & 1);
                        *c = node((i + d.0, j + d.1, k + d.2), &mut nodes);
                    }
                    for perm in KUHN_PERMS {
                        let mut mask = 0usize;
                        let v0 = corner[0];
                        mask |= 1 << perm[0];
                        let v1 = corner[mask];
                        mask |= 1 << perm[1];
                        let v2 = corner[mask];
                        let v3 = corner[7];
                        tets.push([v0, v1, v2, v3]);
                    }
                }
            }
        }

        let spec = *self;
        TetMesh::build(nodes, tets, move |fc, normal| spec.classify(fc, normal))
    }

    /// Boundary classification used for both the coarse mesh and the
    /// nested fine mesh (see [`crate::refine`]).
    pub fn classify(&self, fc: Vec3, normal: Vec3) -> BoundaryKind {
        let ztol = 1e-9 * self.length.max(1e-12);
        if fc.z <= ztol && normal.z < -0.5 {
            let rr = (fc.x * fc.x + fc.y * fc.y).sqrt();
            if rr <= self.inlet_radius {
                return BoundaryKind::Inlet;
            }
            return BoundaryKind::Wall;
        }
        if fc.z >= self.length - ztol && normal.z > 0.5 {
            return BoundaryKind::Outlet;
        }
        BoundaryKind::Wall
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tet::FaceTag;

    fn small() -> (NozzleSpec, TetMesh) {
        let spec = NozzleSpec {
            nd: 6,
            nz: 8,
            ..NozzleSpec::default()
        };
        let mesh = spec.generate();
        (spec, mesh)
    }

    #[test]
    fn generates_nonempty_conforming_mesh() {
        let (_spec, m) = small();
        assert!(m.num_cells() > 100);
        assert!(m.num_nodes() > 50);
        // every interior adjacency must be symmetric
        for (t, nb) in m.neighbors.iter().enumerate() {
            for tag in nb {
                if let FaceTag::Interior(o) = tag {
                    let back = m.neighbors[*o as usize]
                        .iter()
                        .filter(|x| **x == FaceTag::Interior(t as u32))
                        .count();
                    assert_eq!(back, 1, "asymmetric adjacency at tet {t}");
                }
            }
        }
    }

    #[test]
    fn all_volumes_positive_and_total_close_to_cylinder() {
        let (spec, m) = small();
        for &v in &m.volumes {
            assert!(v > 0.0);
        }
        let exact = std::f64::consts::PI * spec.radius * spec.radius * spec.length;
        let tot = m.total_volume();
        // voxelisation error: within 40% for this coarse lattice and
        // strictly less than the circumscribing box
        assert!(tot < 4.0 * spec.radius * spec.radius * spec.length);
        assert!(
            (tot - exact).abs() / exact < 0.4,
            "tot={tot}, exact={exact}"
        );
    }

    #[test]
    fn has_all_three_boundary_kinds() {
        let (_spec, m) = small();
        assert!(!m.boundary_faces(BoundaryKind::Inlet).is_empty());
        assert!(!m.boundary_faces(BoundaryKind::Outlet).is_empty());
        assert!(!m.boundary_faces(BoundaryKind::Wall).is_empty());
    }

    #[test]
    fn inlet_faces_at_z0_within_radius() {
        let (spec, m) = small();
        for (t, f) in m.boundary_faces(BoundaryKind::Inlet) {
            let (fc, n) = m.face_centroid_normal(t as usize, f as usize);
            assert!(fc.z.abs() < 1e-12);
            assert!(n.normalized().z < -0.9);
            assert!((fc.x * fc.x + fc.y * fc.y).sqrt() <= spec.inlet_radius + 1e-12);
        }
    }

    #[test]
    fn outlet_faces_at_far_end() {
        let (spec, m) = small();
        for (t, f) in m.boundary_faces(BoundaryKind::Outlet) {
            let (fc, _n) = m.face_centroid_normal(t as usize, f as usize);
            assert!((fc.z - spec.length).abs() < 1e-12);
        }
    }

    #[test]
    fn resolution_scales_cell_count() {
        let a = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        let b = NozzleSpec {
            nd: 8,
            nz: 8,
            ..NozzleSpec::default()
        }
        .generate();
        assert!(b.num_cells() > 4 * a.num_cells());
    }
}
