//! Nested 1:8 tetrahedral refinement (paper §IV-A, Fig. 2).
//!
//! Each coarse (DSMC) tet is split into 8 fine (PIC) tets by halving
//! every edge: four corner tets plus four tets obtained by cutting the
//! interior octahedron along its shortest diagonal. The fine grid is
//! therefore *entirely nested* in the coarse grid, which is the
//! property the paper exploits: only the coarse grid is decomposed
//! across ranks, and fine cells inherit their parent's owner.

use crate::geom::Vec3;
use crate::tet::{BoundaryKind, TetMesh};
use std::collections::HashMap;

/// A coarse DSMC mesh with its nested fine PIC mesh.
#[derive(Debug, Clone)]
pub struct NestedMesh {
    /// Coarse grid (cell size ~ mean free path); DSMC runs here and
    /// this is the unit of domain decomposition.
    pub coarse: TetMesh,
    /// Fine grid (cell size ~ Debye length); PIC runs here.
    pub fine: TetMesh,
    /// `fine_parent[f]` = coarse cell containing fine cell `f`.
    pub fine_parent: Vec<u32>,
    /// `children[c]` = the 8 fine cells nested in coarse cell `c`.
    pub children: Vec<[u32; 8]>,
}

impl NestedMesh {
    /// Refine `coarse` 1:8. `classify` tags fine boundary faces (use
    /// the same geometric classifier as for the coarse mesh so both
    /// grids agree on inlet/outlet/wall).
    pub fn from_coarse<F>(coarse: TetMesh, classify: F) -> Self
    where
        F: Fn(Vec3, Vec3) -> BoundaryKind,
    {
        let (fine, fine_parent) = refine_1_to_8(&coarse, classify);
        let nc = coarse.num_cells();
        let mut children = vec![[0u32; 8]; nc];
        let mut fill = vec![0usize; nc];
        for (f, &p) in fine_parent.iter().enumerate() {
            let slot = fill[p as usize];
            children[p as usize][slot] = f as u32;
            fill[p as usize] = slot + 1;
        }
        debug_assert!(fill.iter().all(|&c| c == 8));
        NestedMesh {
            coarse,
            fine,
            fine_parent,
            children,
        }
    }

    /// Number of coarse cells.
    pub fn num_coarse(&self) -> usize {
        self.coarse.num_cells()
    }

    /// Number of fine cells (= 8 × coarse).
    pub fn num_fine(&self) -> usize {
        self.fine.num_cells()
    }
}

/// Split every tet of `coarse` into 8, deduplicating edge-midpoint
/// nodes between neighbouring tets. Returns the fine mesh and the
/// fine→coarse parent map.
pub fn refine_1_to_8<F>(coarse: &TetMesh, classify: F) -> (TetMesh, Vec<u32>)
where
    F: Fn(Vec3, Vec3) -> BoundaryKind,
{
    let mut nodes = coarse.nodes.clone();
    let mut midpoint: HashMap<(u32, u32), u32> = HashMap::new();
    let mut mid = |a: u32, b: u32, nodes: &mut Vec<Vec3>| -> u32 {
        let key = (a.min(b), a.max(b));
        *midpoint.entry(key).or_insert_with(|| {
            let id = nodes.len() as u32;
            let p = (nodes[a as usize] + nodes[b as usize]) / 2.0;
            nodes.push(p);
            id
        })
    };

    let mut tets: Vec<[u32; 4]> = Vec::with_capacity(coarse.num_cells() * 8);
    let mut parent: Vec<u32> = Vec::with_capacity(coarse.num_cells() * 8);

    for (c, tet) in coarse.tets.iter().enumerate() {
        let [v0, v1, v2, v3] = *tet;
        let m01 = mid(v0, v1, &mut nodes);
        let m02 = mid(v0, v2, &mut nodes);
        let m03 = mid(v0, v3, &mut nodes);
        let m12 = mid(v1, v2, &mut nodes);
        let m13 = mid(v1, v3, &mut nodes);
        let m23 = mid(v2, v3, &mut nodes);

        // Four corner tets.
        let mut eight: Vec<[u32; 4]> = vec![
            [v0, m01, m02, m03],
            [v1, m01, m12, m13],
            [v2, m02, m12, m23],
            [v3, m03, m13, m23],
        ];

        // Interior octahedron: opposite vertex pairs are
        // (m01,m23), (m02,m13), (m03,m12). Cut along the shortest
        // diagonal for best element quality (standard Bey refinement
        // choice).
        let d = |a: u32, b: u32| nodes[a as usize].dist(nodes[b as usize]);
        let diags = [(m01, m23), (m02, m13), (m03, m12)];
        let lens = [d(m01, m23), d(m02, m13), d(m03, m12)];
        let best = (0..3)
            .min_by(|&i, &j| lens[i].partial_cmp(&lens[j]).unwrap())
            .unwrap();
        let (p, q) = diags[best];
        // Equatorial cycle: the four non-diagonal vertices ordered so
        // that consecutive ones are octahedron-adjacent (never an
        // opposite pair).
        let cycle: [u32; 4] = match best {
            0 => [m02, m03, m13, m12],
            1 => [m01, m03, m23, m12],
            _ => [m01, m02, m23, m13],
        };
        for e in 0..4 {
            eight.push([p, q, cycle[e], cycle[(e + 1) % 4]]);
        }

        debug_assert_eq!(eight.len(), 8);
        for t in eight {
            tets.push(t);
            parent.push(c as u32);
        }
    }

    (TetMesh::build(nodes, tets, classify), parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nozzle::NozzleSpec;
    use crate::tet::FaceTag;

    fn nested() -> NestedMesh {
        let spec = NozzleSpec {
            nd: 4,
            nz: 6,
            ..NozzleSpec::default()
        };
        let coarse = spec.generate();
        NestedMesh::from_coarse(coarse, move |fc, n| spec.classify(fc, n))
    }

    #[test]
    fn eight_children_per_parent() {
        let nm = nested();
        assert_eq!(nm.num_fine(), 8 * nm.num_coarse());
        assert_eq!(nm.children.len(), nm.num_coarse());
        for (c, ch) in nm.children.iter().enumerate() {
            for &f in ch {
                assert_eq!(nm.fine_parent[f as usize], c as u32);
            }
        }
    }

    #[test]
    fn volume_is_conserved_exactly() {
        let nm = nested();
        for (c, ch) in nm.children.iter().enumerate() {
            let fine_sum: f64 = ch.iter().map(|&f| nm.fine.volumes[f as usize]).sum();
            let coarse_v = nm.coarse.volumes[c];
            assert!(
                (fine_sum - coarse_v).abs() < 1e-12 * coarse_v.max(1e-300),
                "cell {c}: children sum {fine_sum} != parent {coarse_v}"
            );
        }
    }

    #[test]
    fn children_are_geometrically_nested() {
        let nm = nested();
        for (c, ch) in nm.children.iter().enumerate().take(50) {
            for &f in ch {
                let centroid = nm.fine.centroids[f as usize];
                assert!(
                    nm.coarse.contains(c, centroid, 1e-9),
                    "fine centroid escaped its parent"
                );
            }
        }
    }

    #[test]
    fn fine_mesh_is_conforming() {
        let nm = nested();
        for (t, nb) in nm.fine.neighbors.iter().enumerate() {
            for tag in nb {
                if let FaceTag::Interior(o) = tag {
                    assert!(nm.fine.neighbors[*o as usize].contains(&FaceTag::Interior(t as u32)));
                }
            }
        }
    }

    #[test]
    fn fine_boundary_kinds_match_geometry() {
        let nm = nested();
        // the fine grid must expose all three boundary kinds too
        assert!(!nm.fine.boundary_faces(BoundaryKind::Inlet).is_empty());
        assert!(!nm.fine.boundary_faces(BoundaryKind::Outlet).is_empty());
        assert!(!nm.fine.boundary_faces(BoundaryKind::Wall).is_empty());
        // fine inlet area equals coarse inlet area (same geometry)
        let area = |m: &TetMesh, k| {
            m.boundary_faces(k)
                .iter()
                .map(|&(t, f)| m.face_area(t as usize, f as usize))
                .sum::<f64>()
        };
        let ca = area(&nm.coarse, BoundaryKind::Inlet);
        let fa = area(&nm.fine, BoundaryKind::Inlet);
        assert!((ca - fa).abs() < 1e-12 * ca.max(1e-300));
    }

    #[test]
    fn midpoint_nodes_deduplicated() {
        let nm = nested();
        // node count must be far less than 10 per fine tet (which
        // would indicate no sharing at all)
        assert!(nm.fine.num_nodes() < nm.num_fine() * 2);
    }
}
