//! Mesh quality statistics.
//!
//! Used by examples/benches to report grid characteristics (and to
//! sanity-check that the generated nozzle grids are usable for DSMC:
//! the coarse cell size must track the intended mean-free-path
//! resolution).

use crate::tet::TetMesh;

/// Summary statistics over the cells of a mesh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    pub num_cells: usize,
    pub num_nodes: usize,
    pub min_volume: f64,
    pub max_volume: f64,
    pub mean_volume: f64,
    /// Shortest edge over the whole mesh.
    pub min_edge: f64,
    /// Longest edge over the whole mesh.
    pub max_edge: f64,
    /// Worst (largest) cell aspect ratio: longest edge / (6√2 ·
    /// inradius-equivalent), normalised so a regular tet scores 1.
    pub max_aspect: f64,
}

/// Compute quality statistics for a mesh.
pub fn analyze(mesh: &TetMesh) -> QualityReport {
    let mut min_v = f64::INFINITY;
    let mut max_v: f64 = 0.0;
    let mut min_e = f64::INFINITY;
    let mut max_e: f64 = 0.0;
    let mut max_aspect: f64 = 0.0;

    const EDGES: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

    for t in 0..mesh.num_cells() {
        let p = mesh.tet_pos(t);
        let v = mesh.volumes[t];
        min_v = min_v.min(v);
        max_v = max_v.max(v);
        let mut longest: f64 = 0.0;
        for (a, b) in EDGES {
            let e = p[a].dist(p[b]);
            min_e = min_e.min(e);
            max_e = max_e.max(e);
            longest = longest.max(e);
        }
        // Regular tet with edge L has volume L^3/(6*sqrt(2)); the
        // ratio of that ideal volume to the actual volume measures
        // flatness.
        let ideal = longest.powi(3) / (6.0 * std::f64::consts::SQRT_2);
        if v > 0.0 {
            max_aspect = max_aspect.max(ideal / v);
        }
    }

    QualityReport {
        num_cells: mesh.num_cells(),
        num_nodes: mesh.num_nodes(),
        min_volume: min_v,
        max_volume: max_v,
        mean_volume: mesh.total_volume() / mesh.num_cells().max(1) as f64,
        min_edge: min_e,
        max_edge: max_e,
        max_aspect,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nozzle::NozzleSpec;

    #[test]
    fn nozzle_quality_bounded() {
        let m = NozzleSpec {
            nd: 6,
            nz: 8,
            ..NozzleSpec::default()
        }
        .generate();
        let q = analyze(&m);
        assert_eq!(q.num_cells, m.num_cells());
        assert!(q.min_volume > 0.0);
        assert!(q.min_edge > 0.0);
        assert!(q.max_edge >= q.min_edge);
        // Kuhn tets of a regular-ish lattice are well shaped; aspect
        // stays within a small constant.
        assert!(q.max_aspect < 20.0, "aspect {}", q.max_aspect);
    }

    #[test]
    fn refinement_halves_edges() {
        let spec = NozzleSpec {
            nd: 4,
            nz: 6,
            ..NozzleSpec::default()
        };
        let coarse = spec.generate();
        let nm = crate::refine::NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n));
        let qc = analyze(&nm.coarse);
        let qf = analyze(&nm.fine);
        assert!((qf.max_edge - qc.max_edge / 2.0).abs() < 1e-12 * qc.max_edge);
        assert!((qf.mean_volume - qc.mean_volume / 8.0).abs() < 1e-9 * qc.mean_volume);
    }
}
