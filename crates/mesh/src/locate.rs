//! Point location and cell-to-cell ray tracing on tetrahedral meshes.
//!
//! Particle movers need two primitives:
//! * [`CellLocator`]: find the cell containing an arbitrary point
//!   (used at injection and after load-balance migration), accelerated
//!   by a uniform bin grid + tet walking.
//! * [`first_exit`]: given a particle inside cell `t` moving along a
//!   straight line, find which face it leaves through and when (used
//!   by the DSMC/PIC movers to track cell crossings exactly).

use crate::geom::{ray_plane, Vec3};
use crate::tet::{FaceTag, TetMesh};

/// Tolerance on barycentric weights when testing containment.
pub const BARY_EPS: f64 = 1e-10;

/// Walk from `start` towards the cell containing `p`, following the
/// face with the most negative barycentric weight. Returns the
/// containing cell, or `None` if the walk leaves the domain or fails
/// to converge within `max_steps` (caller should fall back to
/// [`locate_brute`] / the bin locator).
pub fn locate_walk(mesh: &TetMesh, start: usize, p: Vec3, max_steps: usize) -> Option<usize> {
    let mut t = start;
    for _ in 0..max_steps {
        let w = mesh.bary(t, p);
        if w.iter().all(|&wi| wi >= -BARY_EPS) {
            return Some(t);
        }
        // Prefer the most negative face, but if it is a boundary face
        // (stair-stepped, non-convex domains) fall through to the next
        // most negative *interior* face.
        let mut order: [usize; 4] = [0, 1, 2, 3];
        order.sort_unstable_by(|&a, &b| w[a].partial_cmp(&w[b]).unwrap());
        let mut moved = false;
        for f in order {
            if w[f] >= -BARY_EPS {
                break;
            }
            if let FaceTag::Interior(o) = mesh.neighbors[t][f] {
                t = o as usize;
                moved = true;
                break;
            }
        }
        if !moved {
            return None;
        }
    }
    None
}

/// Exhaustive point location. O(cells); use only as a fallback or in
/// tests.
pub fn locate_brute(mesh: &TetMesh, p: Vec3) -> Option<usize> {
    (0..mesh.num_cells()).find(|&t| mesh.contains(t, p, BARY_EPS))
}

/// Uniform-bin point locator.
///
/// Bins the cell centroids on a regular grid over the mesh bounding
/// box; a query walks from the nearest binned centroid. Robust to the
/// walk hitting a (stair-stepped) boundary by retrying from nearby
/// bins and finally falling back to brute force.
pub struct CellLocator {
    lo: Vec3,
    inv_h: Vec3,
    dims: [usize; 3],
    /// A representative cell per bin (the one whose centroid landed
    /// there last), `u32::MAX` when empty.
    bins: Vec<u32>,
}

impl CellLocator {
    /// Build a locator with roughly `target_bins` bins.
    pub fn new(mesh: &TetMesh, target_bins: usize) -> Self {
        let (lo, hi) = mesh.bbox();
        let ext = hi - lo;
        let vol = (ext.x * ext.y * ext.z).max(1e-300);
        let h = (vol / target_bins.max(1) as f64).cbrt();
        let dims = [
            ((ext.x / h).ceil() as usize).max(1),
            ((ext.y / h).ceil() as usize).max(1),
            ((ext.z / h).ceil() as usize).max(1),
        ];
        let inv_h = Vec3::new(
            dims[0] as f64 / ext.x.max(1e-300),
            dims[1] as f64 / ext.y.max(1e-300),
            dims[2] as f64 / ext.z.max(1e-300),
        );
        let mut bins = vec![u32::MAX; dims[0] * dims[1] * dims[2]];
        for (t, c) in mesh.centroids.iter().enumerate() {
            let idx = Self::bin_index(lo, inv_h, dims, *c);
            bins[idx] = t as u32;
        }
        CellLocator {
            lo,
            inv_h,
            dims,
            bins,
        }
    }

    fn bin_index(lo: Vec3, inv_h: Vec3, dims: [usize; 3], p: Vec3) -> usize {
        let clampi = |v: f64, n: usize| (v as isize).clamp(0, n as isize - 1) as usize;
        let i = clampi((p.x - lo.x) * inv_h.x, dims[0]);
        let j = clampi((p.y - lo.y) * inv_h.y, dims[1]);
        let k = clampi((p.z - lo.z) * inv_h.z, dims[2]);
        (k * dims[1] + j) * dims[0] + i
    }

    /// Locate the cell containing `p`.
    pub fn locate(&self, mesh: &TetMesh, p: Vec3) -> Option<usize> {
        let idx = Self::bin_index(self.lo, self.inv_h, self.dims, p);
        // Try the home bin, then all populated bins spiralling out is
        // overkill here: try home, then any populated bin, then brute.
        if self.bins[idx] != u32::MAX {
            if let Some(t) = locate_walk(mesh, self.bins[idx] as usize, p, 4 * mesh.num_cells()) {
                return Some(t);
            }
        }
        // Retry from a handful of other seeds (walks can dead-end on
        // non-convex, stair-stepped boundaries).
        for &seed in self.bins.iter().filter(|&&b| b != u32::MAX).take(8) {
            if let Some(t) = locate_walk(mesh, seed as usize, p, 4 * mesh.num_cells()) {
                return Some(t);
            }
        }
        locate_brute(mesh, p)
    }
}

/// The face through which a particle at `r` (inside cell `t`) moving
/// with velocity `v` first exits the cell, and the time of crossing.
///
/// Returns `None` when the particle does not leave the cell within
/// `dt` (or `v` is zero). The returned time is clamped to be
/// non-negative; the face index is the local face (0..4).
pub fn first_exit(mesh: &TetMesh, t: usize, r: Vec3, v: Vec3, dt: f64) -> Option<(f64, usize)> {
    let mut best: Option<(f64, usize)> = None;
    for f in 0..4 {
        let (fc, n) = mesh.face_centroid_normal(t, f);
        // Only faces the particle moves towards can be exits.
        if v.dot(n) <= 0.0 {
            continue;
        }
        if let Some(tc) = ray_plane(r, v, fc, n) {
            let tc = tc.max(0.0);
            if tc <= dt && best.is_none_or(|(bt, _)| tc < bt) {
                best = Some((tc, f));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nozzle::NozzleSpec;

    fn mesh() -> TetMesh {
        NozzleSpec {
            nd: 6,
            nz: 10,
            ..NozzleSpec::default()
        }
        .generate()
    }

    #[test]
    fn walk_finds_centroids() {
        let m = mesh();
        let mut found_count = 0usize;
        let mut total = 0usize;
        for t in (0..m.num_cells()).step_by(7) {
            total += 1;
            // When the walk succeeds it must land on the right cell
            // (centroids are strictly interior). Walks may dead-end on
            // the stair-stepped boundary; the CellLocator covers that
            // with retries.
            if let Some(found) = locate_walk(&m, 0, m.centroids[t], 4 * m.num_cells()) {
                assert_eq!(found, t);
                found_count += 1;
            }
        }
        // the vast majority of walks should succeed on this mesh
        assert!(found_count * 10 >= total * 9, "{found_count}/{total}");
    }

    #[test]
    fn brute_matches_walk() {
        let m = mesh();
        for t in (0..m.num_cells()).step_by(13) {
            let p = m.centroids[t];
            assert_eq!(locate_brute(&m, p), Some(t));
        }
    }

    #[test]
    fn locator_handles_outside_points() {
        let m = mesh();
        let loc = CellLocator::new(&m, 256);
        let far = Vec3::new(1.0, 1.0, 1.0); // 1 m away: far outside
        assert_eq!(loc.locate(&m, far), None);
    }

    #[test]
    fn locator_finds_interior_points() {
        let m = mesh();
        let loc = CellLocator::new(&m, 256);
        for t in (0..m.num_cells()).step_by(11) {
            assert_eq!(loc.locate(&m, m.centroids[t]), Some(t));
        }
    }

    #[test]
    fn first_exit_hits_forward_face() {
        let m = mesh();
        let t = 0;
        let r = m.centroids[t];
        // shoot along +z: must exit through some face in finite time
        let v = Vec3::new(0.0, 0.0, 1000.0);
        let (tc, f) = first_exit(&m, t, r, v, 1.0).expect("must exit");
        assert!(tc > 0.0);
        // crossing point lies on the face plane
        let hit = r + v * tc;
        let w = m.bary(t, hit);
        assert!(
            w[f] < 1e-8,
            "barycentric weight of opposite vertex ~0 on face"
        );
    }

    #[test]
    fn no_exit_for_tiny_dt() {
        let m = mesh();
        let t = 0;
        let r = m.centroids[t];
        let v = Vec3::new(0.0, 0.0, 1.0);
        // dt so small the particle stays inside
        assert!(first_exit(&m, t, r, v, 1e-12).is_none());
    }

    #[test]
    fn exit_neighbor_contains_crossing_point() {
        let m = mesh();
        for t in (0..m.num_cells()).step_by(17) {
            let r = m.centroids[t];
            let v = Vec3::new(300.0, 150.0, 700.0);
            if let Some((tc, f)) = first_exit(&m, t, r, v, 1.0) {
                let hit = r + v * (tc * 1.0000001) + v.normalized() * 1e-15;
                if let FaceTag::Interior(o) = m.neighbors[t][f] {
                    assert!(
                        m.contains(o as usize, hit, 1e-6),
                        "neighbor must contain the just-crossed point"
                    );
                }
            }
        }
    }
}
