//! Unstructured tetrahedral mesh container and topology.
//!
//! A [`TetMesh`] stores nodes, tets (as 4 node ids each), and
//! face-adjacency computed once after construction. Face `i` of a tet
//! is the face *opposite* local vertex `i`. A face either borders
//! another tet ([`FaceTag::Interior`]) or lies on the domain boundary
//! with a physical tag ([`FaceTag::Boundary`]).

use crate::geom::{barycentric, outward_face_normal, tet_centroid, tet_volume_signed, Vec3};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Physical classification of a boundary face.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundaryKind {
    /// The particle-injection inlet (plasma source).
    Inlet,
    /// Open outflow: particles crossing it leave the domain.
    Outlet,
    /// Solid wall: particles reflect (diffusely, at wall temperature).
    Wall,
}

/// What lies across face `i` of a tet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaceTag {
    /// Neighbouring tet id.
    Interior(u32),
    /// Domain boundary with its physical kind.
    Boundary(BoundaryKind),
}

/// Local node ids of the face opposite each vertex.
pub const FACE_NODES: [[usize; 3]; 4] = [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]];

/// An unstructured tetrahedral mesh with precomputed topology and
/// per-cell geometry caches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TetMesh {
    /// Node coordinates.
    pub nodes: Vec<Vec3>,
    /// Tets as 4 node indices, positively oriented.
    pub tets: Vec<[u32; 4]>,
    /// `neighbors[t][i]` = what lies across face `i` (opposite vertex
    /// `i`) of tet `t`.
    pub neighbors: Vec<[FaceTag; 4]>,
    /// Cached absolute cell volumes.
    pub volumes: Vec<f64>,
    /// Cached cell centroids.
    pub centroids: Vec<Vec3>,
}

impl TetMesh {
    /// Build a mesh from raw nodes and tets, computing face adjacency.
    ///
    /// `classify` assigns a [`BoundaryKind`] to every face that has no
    /// neighbouring tet; it receives the face centroid and the outward
    /// unit normal.
    pub fn build<F>(nodes: Vec<Vec3>, mut tets: Vec<[u32; 4]>, classify: F) -> Self
    where
        F: Fn(Vec3, Vec3) -> BoundaryKind,
    {
        // Enforce positive orientation so signed-volume-based
        // barycentric coordinates behave uniformly.
        for t in tets.iter_mut() {
            let [a, b, c, d] = [
                nodes[t[0] as usize],
                nodes[t[1] as usize],
                nodes[t[2] as usize],
                nodes[t[3] as usize],
            ];
            if tet_volume_signed(a, b, c, d) < 0.0 {
                t.swap(2, 3);
            }
        }

        let ntet = tets.len();
        let mut neighbors = vec![[FaceTag::Boundary(BoundaryKind::Wall); 4]; ntet];

        // Hash each face by its sorted node triple. A face appears in
        // at most two tets (mesh conformity).
        let mut face_map: HashMap<[u32; 3], (u32, u8)> = HashMap::with_capacity(2 * ntet);
        for (t, tet) in tets.iter().enumerate() {
            for (f, fl) in FACE_NODES.iter().enumerate() {
                let mut key = [tet[fl[0]], tet[fl[1]], tet[fl[2]]];
                key.sort_unstable();
                match face_map.remove(&key) {
                    Some((ot, of)) => {
                        neighbors[t][f] = FaceTag::Interior(ot);
                        neighbors[ot as usize][of as usize] = FaceTag::Interior(t as u32);
                    }
                    None => {
                        face_map.insert(key, (t as u32, f as u8));
                    }
                }
            }
        }

        // Remaining entries in the map are boundary faces.
        let mut mesh = TetMesh {
            nodes,
            tets,
            neighbors,
            volumes: Vec::new(),
            centroids: Vec::new(),
        };
        mesh.recompute_geometry();
        for (_key, (t, f)) in face_map {
            let (fc, n) = mesh.face_centroid_normal(t as usize, f as usize);
            mesh.neighbors[t as usize][f as usize] =
                FaceTag::Boundary(classify(fc, n.normalized()));
        }
        mesh
    }

    fn recompute_geometry(&mut self) {
        self.volumes = (0..self.tets.len())
            .map(|t| {
                let p = self.tet_pos(t);
                tet_volume_signed(p[0], p[1], p[2], p[3]).abs()
            })
            .collect();
        self.centroids = (0..self.tets.len())
            .map(|t| {
                let p = self.tet_pos(t);
                tet_centroid(p[0], p[1], p[2], p[3])
            })
            .collect();
    }

    /// Number of cells (tets).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.tets.len()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Positions of the 4 vertices of tet `t`.
    #[inline]
    pub fn tet_pos(&self, t: usize) -> [Vec3; 4] {
        let tet = self.tets[t];
        [
            self.nodes[tet[0] as usize],
            self.nodes[tet[1] as usize],
            self.nodes[tet[2] as usize],
            self.nodes[tet[3] as usize],
        ]
    }

    /// Global node ids of face `f` of tet `t`.
    #[inline]
    pub fn face_nodes(&self, t: usize, f: usize) -> [u32; 3] {
        let tet = self.tets[t];
        let fl = FACE_NODES[f];
        [tet[fl[0]], tet[fl[1]], tet[fl[2]]]
    }

    /// Centroid and outward (unnormalized) normal of face `f` of tet `t`.
    pub fn face_centroid_normal(&self, t: usize, f: usize) -> (Vec3, Vec3) {
        let fnodes = self.face_nodes(t, f);
        let [a, b, c] = [
            self.nodes[fnodes[0] as usize],
            self.nodes[fnodes[1] as usize],
            self.nodes[fnodes[2] as usize],
        ];
        let opp = self.nodes[self.tets[t][f] as usize];
        ((a + b + c) / 3.0, outward_face_normal(a, b, c, opp))
    }

    /// Barycentric coordinates of `p` in tet `t`.
    #[inline]
    pub fn bary(&self, t: usize, p: Vec3) -> [f64; 4] {
        let q = self.tet_pos(t);
        barycentric(p, q[0], q[1], q[2], q[3])
    }

    /// Whether `p` is inside tet `t` (tolerance `eps` on barycentric
    /// weights).
    #[inline]
    pub fn contains(&self, t: usize, p: Vec3, eps: f64) -> bool {
        self.bary(t, p).iter().all(|&w| w >= -eps)
    }

    /// Total mesh volume.
    pub fn total_volume(&self) -> f64 {
        self.volumes.iter().sum()
    }

    /// Axis-aligned bounding box `(min, max)` of all nodes.
    pub fn bbox(&self) -> (Vec3, Vec3) {
        let mut lo = Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut hi = Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for n in &self.nodes {
            lo.x = lo.x.min(n.x);
            lo.y = lo.y.min(n.y);
            lo.z = lo.z.min(n.z);
            hi.x = hi.x.max(n.x);
            hi.y = hi.y.max(n.y);
            hi.z = hi.z.max(n.z);
        }
        (lo, hi)
    }

    /// Ids of boundary faces of a given kind, as `(tet, face)` pairs.
    pub fn boundary_faces(&self, kind: BoundaryKind) -> Vec<(u32, u8)> {
        let mut out = Vec::new();
        for (t, nb) in self.neighbors.iter().enumerate() {
            for (f, tag) in nb.iter().enumerate() {
                if *tag == FaceTag::Boundary(kind) {
                    out.push((t as u32, f as u8));
                }
            }
        }
        out
    }

    /// Cell-adjacency graph in CSR form `(xadj, adjncy)`, suitable for
    /// graph partitioning. Two cells are adjacent iff they share a
    /// face.
    pub fn cell_graph(&self) -> (Vec<u32>, Vec<u32>) {
        let n = self.num_cells();
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::with_capacity(4 * n);
        xadj.push(0u32);
        for nb in &self.neighbors {
            for tag in nb {
                if let FaceTag::Interior(o) = tag {
                    adjncy.push(*o);
                }
            }
            xadj.push(adjncy.len() as u32);
        }
        (xadj, adjncy)
    }

    /// Area of face `f` of tet `t`.
    pub fn face_area(&self, t: usize, f: usize) -> f64 {
        let fnodes = self.face_nodes(t, f);
        let [a, b, c] = [
            self.nodes[fnodes[0] as usize],
            self.nodes[fnodes[1] as usize],
            self.nodes[fnodes[2] as usize],
        ];
        (b - a).cross(c - a).norm() / 2.0
    }

    /// Characteristic cell size: cube root of the mean cell volume.
    pub fn mean_cell_size(&self) -> f64 {
        (self.total_volume() / self.num_cells() as f64).cbrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two unit tets glued on the face (B, C, D).
    fn two_tets() -> TetMesh {
        let nodes = vec![
            Vec3::new(0.0, 0.0, 0.0), // 0 = A
            Vec3::new(1.0, 0.0, 0.0), // 1 = B
            Vec3::new(0.0, 1.0, 0.0), // 2 = C
            Vec3::new(0.0, 0.0, 1.0), // 3 = D
            Vec3::new(1.0, 1.0, 1.0), // 4 = E (other side)
        ];
        let tets = vec![[0, 1, 2, 3], [4, 1, 2, 3]];
        TetMesh::build(nodes, tets, |_c, _n| BoundaryKind::Wall)
    }

    #[test]
    fn adjacency_is_symmetric() {
        let m = two_tets();
        // face 0 of tet 0 is opposite vertex 0 = (1,2,3) shared with tet 1
        assert_eq!(m.neighbors[0][0], FaceTag::Interior(1));
        assert_eq!(m.neighbors[1][0], FaceTag::Interior(0));
        // all other faces are boundary
        let n_interior: usize = m
            .neighbors
            .iter()
            .flatten()
            .filter(|t| matches!(t, FaceTag::Interior(_)))
            .count();
        assert_eq!(n_interior, 2);
    }

    #[test]
    fn orientation_fixed_up() {
        // deliberately negatively oriented input tet
        let nodes = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ];
        let m = TetMesh::build(nodes, vec![[1, 0, 2, 3]], |_c, _n| BoundaryKind::Wall);
        let p = m.tet_pos(0);
        assert!(tet_volume_signed(p[0], p[1], p[2], p[3]) > 0.0);
        assert!((m.volumes[0] - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn volumes_and_centroids_cached() {
        let m = two_tets();
        assert_eq!(m.volumes.len(), 2);
        assert!((m.total_volume() - m.volumes.iter().sum::<f64>()).abs() < 1e-15);
        for t in 0..2 {
            let p = m.tet_pos(t);
            assert!(m.contains(t, tet_centroid(p[0], p[1], p[2], p[3]), 1e-12));
        }
    }

    #[test]
    fn outward_face_normals() {
        let m = two_tets();
        for t in 0..m.num_cells() {
            for f in 0..4 {
                let (fc, n) = m.face_centroid_normal(t, f);
                // outward normal points from centroid towards face
                assert!(n.dot(fc - m.centroids[t]) > 0.0);
            }
        }
    }

    #[test]
    fn cell_graph_csr() {
        let m = two_tets();
        let (xadj, adj) = m.cell_graph();
        assert_eq!(xadj, vec![0, 1, 2]);
        assert_eq!(adj, vec![1, 0]);
    }

    #[test]
    fn boundary_face_listing() {
        let m = two_tets();
        assert_eq!(m.boundary_faces(BoundaryKind::Wall).len(), 6);
        assert_eq!(m.boundary_faces(BoundaryKind::Inlet).len(), 0);
    }

    #[test]
    fn face_area_unit_tet() {
        let m = two_tets();
        // face 3 of tet 0 is (0,1,2): right triangle with legs 1,1
        assert!((m.face_area(0, 3) - 0.5).abs() < 1e-15);
    }
}
