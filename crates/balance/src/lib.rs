//! Dynamic load balancing for coupled DSMC/PIC (paper §V):
//! the load-imbalance indicator (eq. 6), the weighted load model
//! (eq. 7), pluggable per-cell cost sources (analytic and
//! timer-augmented), KM-based grid remapping (§V-C) and the rebalance
//! driver (Algorithm 1).

pub mod cost;
pub mod lii;
pub mod rebalance;
pub mod remap;
pub mod wlm;

pub use cost::{CostSample, CostSource, CostSourceKind, PaperWlm, TimerAugmented};
pub use lii::{load_imbalance_indicator, RankTimes};
pub use rebalance::{RebalanceConfig, RebalanceOutcome, Rebalancer};
pub use remap::{migration_volume, remap_identity, remap_km};
pub use wlm::{weighted_load_model, WlmParams};
