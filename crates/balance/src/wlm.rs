//! The weighted load model (paper eq. 7):
//! `wlm_i = N_i + R·C_i + W_cell`.
//!
//! `N_i` = neutral particles in cell `i` (DSMC work), `C_i` = charged
//! particles (PIC work, weighted by `R` = PIC steps per DSMC step),
//! `W_cell` = per-cell fixed work (Colli_React pair selection,
//! Poisson assembly), all expressed in units of "one neutral
//! particle's work".

/// Parameters of the weighted load model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WlmParams {
    /// Charged-to-neutral weight ratio `R` (= PIC timesteps per DSMC
    /// timestep; 2 in all paper experiments).
    pub r: i64,
    /// Fixed weight of a grid cell (paper sweeps 1..10000 in
    /// Table VI).
    pub w_cell: i64,
}

impl Default for WlmParams {
    fn default() -> Self {
        WlmParams { r: 2, w_cell: 1 }
    }
}

/// Compute `wlm` for every cell from per-cell particle counts.
pub fn weighted_load_model(
    neutral_counts: &[u64],
    charged_counts: &[u64],
    params: WlmParams,
) -> Vec<i64> {
    assert_eq!(neutral_counts.len(), charged_counts.len());
    neutral_counts
        .iter()
        .zip(charged_counts)
        .map(|(&n, &c)| n as i64 + params.r * c as i64 + params.w_cell)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_eq7() {
        let n = [10u64, 0, 3];
        let c = [5u64, 2, 0];
        let w = weighted_load_model(&n, &c, WlmParams { r: 2, w_cell: 7 });
        assert_eq!(w, vec![10 + 10 + 7, 4 + 7, 3 + 7]);
    }

    #[test]
    fn empty_cells_still_carry_cell_weight() {
        let w = weighted_load_model(&[0], &[0], WlmParams { r: 2, w_cell: 100 });
        assert_eq!(w, vec![100]);
    }

    #[test]
    fn r_scales_charged_only() {
        let a = weighted_load_model(&[4], &[6], WlmParams { r: 1, w_cell: 0 });
        let b = weighted_load_model(&[4], &[6], WlmParams { r: 3, w_cell: 0 });
        assert_eq!(a, vec![10]);
        assert_eq!(b, vec![22]);
    }
}
