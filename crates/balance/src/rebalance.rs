//! The dynamic load balancer (paper Algorithm 1).
//!
//! Every DSMC iteration the balancer is offered the measured `lii`;
//! once at least `T` iterations have elapsed since the last
//! re-decomposition *and* `lii > Threshold`, the coarse grid is
//! re-partitioned with the weighted load model and remapped to ranks
//! with (optionally) the KM algorithm.

use crate::cost::{CostSample, CostSource, CostSourceKind, PaperWlm, TimerAugmented};
use crate::remap::{remap_identity, remap_km};
use crate::wlm::WlmParams;
use partition::{part_graph_kway, Graph, KwayOptions};

/// Balancer configuration (paper defaults: `Threshold = 2.0`,
/// `T = 20`, `R = 2`, `W_cell = 1`).
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Minimum DSMC iterations between checks (`T`).
    pub t_interval: usize,
    /// Imbalance threshold on `lii`.
    pub threshold: f64,
    /// Weighted-load-model parameters (`R`, `W_cell`).
    pub wlm: WlmParams,
    /// Whether to use KM remapping (Table V ablates this).
    pub use_km: bool,
    /// Partitioner options.
    pub kway: KwayOptions,
    /// Which cost source supplies the partitioner vertex weights.
    pub cost_source: CostSourceKind,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            t_interval: 20,
            threshold: 2.0,
            wlm: WlmParams::default(),
            use_km: true,
            kway: KwayOptions::default(),
            cost_source: CostSourceKind::default(),
        }
    }
}

/// Outcome of a rebalance decision.
#[derive(Debug, Clone, PartialEq)]
pub enum RebalanceOutcome {
    /// Not yet: fewer than `T` iterations since the last rebalance.
    TooSoon,
    /// Checked, but imbalance below threshold.
    Balanced { lii: f64 },
    /// Rebalanced: new cell→rank ownership.
    Remapped {
        lii: f64,
        new_owner: Vec<u32>,
        /// Particles that must migrate under the new mapping.
        migration_volume: u64,
    },
}

/// Stateful rebalancer implementing Algorithm 1.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    pub config: RebalanceConfig,
    iterations_since: usize,
    /// Number of re-decompositions performed.
    pub rebalance_count: usize,
    /// The cost source supplying partitioner vertex weights.
    cost: Box<dyn CostSource>,
}

impl Rebalancer {
    pub fn new(config: RebalanceConfig) -> Self {
        let cost: Box<dyn CostSource> = match config.cost_source {
            CostSourceKind::PaperWlm => Box::new(PaperWlm(config.wlm)),
            CostSourceKind::TimerAugmented => Box::new(TimerAugmented::new(config.wlm)),
        };
        Rebalancer::with_cost_source(config, cost)
    }

    /// Build with a caller-supplied [`CostSource`] — the pluggable
    /// entry point for sources beyond the two built-in kinds.
    pub fn with_cost_source(config: RebalanceConfig, cost: Box<dyn CostSource>) -> Self {
        Rebalancer {
            config,
            iterations_since: 0,
            rebalance_count: 0,
            cost,
        }
    }

    /// Whether the active cost source consumes measured samples —
    /// drivers skip gathering timers (and keep the default path's
    /// wire traffic untouched) when this is false.
    pub fn wants_samples(&self) -> bool {
        self.cost.wants_samples()
    }

    /// Offer one step's globally-reduced measured costs to the
    /// active cost source.
    pub fn observe(&mut self, sample: &CostSample) {
        self.cost.observe(sample);
    }

    /// Stable name of the active cost source.
    pub fn cost_source_name(&self) -> &'static str {
        self.cost.name()
    }

    /// Smoothed per-unit cost rates of the active source (zeros for
    /// analytic sources).
    pub fn cost_rates(&self) -> [f64; 3] {
        self.cost.cost_rates()
    }

    /// Offer one DSMC iteration's measurements to the balancer.
    ///
    /// * `lii` — measured load-imbalance indicator
    /// * `xadj`/`adjncy` — coarse-grid cell adjacency (CSR)
    /// * `neutral`/`charged` — per-cell particle counts
    /// * `old_owner` — current cell→rank ownership
    /// * `k` — number of ranks
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's inputs
    pub fn step(
        &mut self,
        lii: f64,
        xadj: &[u32],
        adjncy: &[u32],
        neutral: &[u64],
        charged: &[u64],
        old_owner: &[u32],
        k: usize,
    ) -> RebalanceOutcome {
        self.iterations_since += 1;
        if self.iterations_since < self.config.t_interval {
            return RebalanceOutcome::TooSoon;
        }
        if lii <= self.config.threshold {
            return RebalanceOutcome::Balanced { lii };
        }

        // Algorithm 1 lines 6-11: cost-source vertex weights -> k-way
        // partition -> KM remap. (PaperWlm reproduces the original
        // analytic weights bit for bit.)
        let wlm = self.cost.cell_weights(neutral, charged);
        let graph = Graph::new(xadj.to_vec(), adjncy.to_vec(), wlm);
        let new_part = part_graph_kway(&graph, k, self.config.kway);

        // migration cost per cell = resident particles
        let load: Vec<u64> = neutral.iter().zip(charged).map(|(&n, &c)| n + c).collect();
        let new_owner = if self.config.use_km {
            remap_km(old_owner, &new_part, &load, k)
        } else {
            remap_identity(&new_part)
        };
        let migration_volume = crate::remap::migration_volume(old_owner, &new_owner, &load);

        self.iterations_since = 0;
        self.rebalance_count += 1;
        RebalanceOutcome::Remapped {
            lii,
            new_owner,
            migration_volume,
        }
    }

    /// Iterations since the last re-decomposition.
    pub fn iterations_since(&self) -> usize {
        self.iterations_since
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line graph CSR of n cells.
    fn line(n: usize) -> (Vec<u32>, Vec<u32>) {
        let mut xadj = vec![0u32];
        let mut adj = Vec::new();
        for v in 0..n {
            if v > 0 {
                adj.push(v as u32 - 1);
            }
            if v + 1 < n {
                adj.push(v as u32 + 1);
            }
            xadj.push(adj.len() as u32);
        }
        (xadj, adj)
    }

    #[test]
    fn waits_for_t_iterations() {
        let mut rb = Rebalancer::new(RebalanceConfig {
            t_interval: 3,
            ..RebalanceConfig::default()
        });
        let (xadj, adj) = line(8);
        let n = vec![10u64; 8];
        let c = vec![0u64; 8];
        let owner = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        for _ in 0..2 {
            assert_eq!(
                rb.step(100.0, &xadj, &adj, &n, &c, &owner, 2),
                RebalanceOutcome::TooSoon
            );
        }
        assert!(matches!(
            rb.step(100.0, &xadj, &adj, &n, &c, &owner, 2),
            RebalanceOutcome::Remapped { .. }
        ));
    }

    #[test]
    fn below_threshold_does_nothing() {
        let mut rb = Rebalancer::new(RebalanceConfig {
            t_interval: 1,
            threshold: 2.0,
            ..RebalanceConfig::default()
        });
        let (xadj, adj) = line(4);
        let out = rb.step(1.5, &xadj, &adj, &[1; 4], &[0; 4], &[0, 0, 1, 1], 2);
        assert_eq!(out, RebalanceOutcome::Balanced { lii: 1.5 });
        assert_eq!(rb.rebalance_count, 0);
    }

    #[test]
    fn rebalance_improves_particle_balance() {
        // all particles on rank 0's cells
        let ncells = 16;
        let (xadj, adj) = line(ncells);
        let mut neutral = vec![0u64; ncells];
        for n in neutral.iter_mut().take(4) {
            *n = 100; // front cells crowded (like the plume inlet)
        }
        let charged = vec![0u64; ncells];
        let old_owner: Vec<u32> = (0..ncells).map(|c| (c / 8) as u32).collect();
        let mut rb = Rebalancer::new(RebalanceConfig {
            t_interval: 1,
            ..RebalanceConfig::default()
        });
        match rb.step(10.0, &xadj, &adj, &neutral, &charged, &old_owner, 2) {
            RebalanceOutcome::Remapped { new_owner, .. } => {
                let load = |owner: &[u32], r: u32| -> u64 {
                    (0..ncells)
                        .filter(|&c| owner[c] == r)
                        .map(|c| neutral[c])
                        .sum()
                };
                let before = load(&old_owner, 0).max(load(&old_owner, 1));
                let after = load(&new_owner, 0).max(load(&new_owner, 1));
                assert!(after < before, "after {after} !< before {before}");
            }
            o => panic!("expected remap, got {o:?}"),
        }
        assert_eq!(rb.rebalance_count, 1);
        assert_eq!(rb.iterations_since(), 0);
    }

    #[test]
    fn km_migrates_less_than_identity() {
        let ncells = 24;
        let (xadj, adj) = line(ncells);
        let neutral = vec![50u64; ncells];
        let charged = vec![0u64; ncells];
        let old_owner: Vec<u32> = (0..ncells).map(|c| (c * 3 / ncells) as u32).collect();
        let run = |use_km: bool| {
            let mut rb = Rebalancer::new(RebalanceConfig {
                t_interval: 1,
                use_km,
                ..RebalanceConfig::default()
            });
            match rb.step(10.0, &xadj, &adj, &neutral, &charged, &old_owner, 3) {
                RebalanceOutcome::Remapped {
                    migration_volume, ..
                } => migration_volume,
                o => panic!("{o:?}"),
            }
        };
        assert!(run(true) <= run(false));
    }

    #[test]
    fn timer_source_narrows_partition_around_crowded_cells() {
        use crate::cost::{CostSample, CostSourceKind};
        // one very crowded cell: quadratic pair cost dominates
        let ncells = 12;
        let (xadj, adj) = line(ncells);
        let mut neutral = vec![4u64; ncells];
        neutral[0] = 100;
        let charged = vec![0u64; ncells];
        let pairs: u64 = neutral.iter().map(|&n| n * n.saturating_sub(1)).sum();
        let old_owner: Vec<u32> = (0..ncells).map(|c| (c / 6) as u32).collect();
        let owned = |owner: &[u32], r: u32| owner.iter().filter(|&&o| o == r).count();

        let run = |kind: CostSourceKind| {
            let mut rb = Rebalancer::new(RebalanceConfig {
                t_interval: 1,
                cost_source: kind,
                ..RebalanceConfig::default()
            });
            rb.observe(&CostSample {
                dsmc_move_seconds: 0.1,
                colli_react_seconds: 10.0,
                neutral_total: neutral.iter().sum(),
                pair_total: pairs,
                ..CostSample::default()
            });
            match rb.step(10.0, &xadj, &adj, &neutral, &charged, &old_owner, 2) {
                RebalanceOutcome::Remapped { new_owner, .. } => new_owner,
                o => panic!("{o:?}"),
            }
        };
        let timer_owner = run(CostSourceKind::TimerAugmented);
        let crowded = timer_owner[0];
        assert!(
            owned(&timer_owner, crowded) < ncells / 2,
            "measured quadratic cost should shrink the crowded rank's share: {timer_owner:?}"
        );
    }

    #[test]
    fn paper_source_ignores_samples_and_stays_analytic() {
        use crate::cost::CostSample;
        let (xadj, adj) = line(8);
        let neutral = vec![10u64; 8];
        let charged = vec![0u64; 8];
        let owner = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        let step = |observe: bool| {
            let mut rb = Rebalancer::new(RebalanceConfig {
                t_interval: 1,
                ..RebalanceConfig::default()
            });
            assert!(!rb.wants_samples());
            assert_eq!(rb.cost_source_name(), "paper_wlm");
            if observe {
                rb.observe(&CostSample {
                    dsmc_move_seconds: 99.0,
                    neutral_total: 80,
                    ..CostSample::default()
                });
            }
            rb.step(10.0, &xadj, &adj, &neutral, &charged, &owner, 2)
        };
        assert_eq!(step(false), step(true));
    }
}
