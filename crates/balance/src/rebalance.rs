//! The dynamic load balancer (paper Algorithm 1).
//!
//! Every DSMC iteration the balancer is offered the measured `lii`;
//! once at least `T` iterations have elapsed since the last
//! re-decomposition *and* `lii > Threshold`, the coarse grid is
//! re-partitioned with the weighted load model and remapped to ranks
//! with (optionally) the KM algorithm.

use crate::remap::{remap_identity, remap_km};
use crate::wlm::{weighted_load_model, WlmParams};
use partition::{part_graph_kway, Graph, KwayOptions};

/// Balancer configuration (paper defaults: `Threshold = 2.0`,
/// `T = 20`, `R = 2`, `W_cell = 1`).
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Minimum DSMC iterations between checks (`T`).
    pub t_interval: usize,
    /// Imbalance threshold on `lii`.
    pub threshold: f64,
    /// Weighted-load-model parameters (`R`, `W_cell`).
    pub wlm: WlmParams,
    /// Whether to use KM remapping (Table V ablates this).
    pub use_km: bool,
    /// Partitioner options.
    pub kway: KwayOptions,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            t_interval: 20,
            threshold: 2.0,
            wlm: WlmParams::default(),
            use_km: true,
            kway: KwayOptions::default(),
        }
    }
}

/// Outcome of a rebalance decision.
#[derive(Debug, Clone, PartialEq)]
pub enum RebalanceOutcome {
    /// Not yet: fewer than `T` iterations since the last rebalance.
    TooSoon,
    /// Checked, but imbalance below threshold.
    Balanced { lii: f64 },
    /// Rebalanced: new cell→rank ownership.
    Remapped {
        lii: f64,
        new_owner: Vec<u32>,
        /// Particles that must migrate under the new mapping.
        migration_volume: u64,
    },
}

/// Stateful rebalancer implementing Algorithm 1.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    pub config: RebalanceConfig,
    iterations_since: usize,
    /// Number of re-decompositions performed.
    pub rebalance_count: usize,
}

impl Rebalancer {
    pub fn new(config: RebalanceConfig) -> Self {
        Rebalancer {
            config,
            iterations_since: 0,
            rebalance_count: 0,
        }
    }

    /// Offer one DSMC iteration's measurements to the balancer.
    ///
    /// * `lii` — measured load-imbalance indicator
    /// * `xadj`/`adjncy` — coarse-grid cell adjacency (CSR)
    /// * `neutral`/`charged` — per-cell particle counts
    /// * `old_owner` — current cell→rank ownership
    /// * `k` — number of ranks
    #[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's inputs
    pub fn step(
        &mut self,
        lii: f64,
        xadj: &[u32],
        adjncy: &[u32],
        neutral: &[u64],
        charged: &[u64],
        old_owner: &[u32],
        k: usize,
    ) -> RebalanceOutcome {
        self.iterations_since += 1;
        if self.iterations_since < self.config.t_interval {
            return RebalanceOutcome::TooSoon;
        }
        if lii <= self.config.threshold {
            return RebalanceOutcome::Balanced { lii };
        }

        // Algorithm 1 lines 6-11: weighted load model -> k-way
        // partition -> KM remap.
        let wlm = weighted_load_model(neutral, charged, self.config.wlm);
        let graph = Graph::new(xadj.to_vec(), adjncy.to_vec(), wlm);
        let new_part = part_graph_kway(&graph, k, self.config.kway);

        // migration cost per cell = resident particles
        let load: Vec<u64> = neutral.iter().zip(charged).map(|(&n, &c)| n + c).collect();
        let new_owner = if self.config.use_km {
            remap_km(old_owner, &new_part, &load, k)
        } else {
            remap_identity(&new_part)
        };
        let migration_volume = crate::remap::migration_volume(old_owner, &new_owner, &load);

        self.iterations_since = 0;
        self.rebalance_count += 1;
        RebalanceOutcome::Remapped {
            lii,
            new_owner,
            migration_volume,
        }
    }

    /// Iterations since the last re-decomposition.
    pub fn iterations_since(&self) -> usize {
        self.iterations_since
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Line graph CSR of n cells.
    fn line(n: usize) -> (Vec<u32>, Vec<u32>) {
        let mut xadj = vec![0u32];
        let mut adj = Vec::new();
        for v in 0..n {
            if v > 0 {
                adj.push(v as u32 - 1);
            }
            if v + 1 < n {
                adj.push(v as u32 + 1);
            }
            xadj.push(adj.len() as u32);
        }
        (xadj, adj)
    }

    #[test]
    fn waits_for_t_iterations() {
        let mut rb = Rebalancer::new(RebalanceConfig {
            t_interval: 3,
            ..RebalanceConfig::default()
        });
        let (xadj, adj) = line(8);
        let n = vec![10u64; 8];
        let c = vec![0u64; 8];
        let owner = vec![0u32, 0, 0, 0, 1, 1, 1, 1];
        for _ in 0..2 {
            assert_eq!(
                rb.step(100.0, &xadj, &adj, &n, &c, &owner, 2),
                RebalanceOutcome::TooSoon
            );
        }
        assert!(matches!(
            rb.step(100.0, &xadj, &adj, &n, &c, &owner, 2),
            RebalanceOutcome::Remapped { .. }
        ));
    }

    #[test]
    fn below_threshold_does_nothing() {
        let mut rb = Rebalancer::new(RebalanceConfig {
            t_interval: 1,
            threshold: 2.0,
            ..RebalanceConfig::default()
        });
        let (xadj, adj) = line(4);
        let out = rb.step(1.5, &xadj, &adj, &[1; 4], &[0; 4], &[0, 0, 1, 1], 2);
        assert_eq!(out, RebalanceOutcome::Balanced { lii: 1.5 });
        assert_eq!(rb.rebalance_count, 0);
    }

    #[test]
    fn rebalance_improves_particle_balance() {
        // all particles on rank 0's cells
        let ncells = 16;
        let (xadj, adj) = line(ncells);
        let mut neutral = vec![0u64; ncells];
        for n in neutral.iter_mut().take(4) {
            *n = 100; // front cells crowded (like the plume inlet)
        }
        let charged = vec![0u64; ncells];
        let old_owner: Vec<u32> = (0..ncells).map(|c| (c / 8) as u32).collect();
        let mut rb = Rebalancer::new(RebalanceConfig {
            t_interval: 1,
            ..RebalanceConfig::default()
        });
        match rb.step(10.0, &xadj, &adj, &neutral, &charged, &old_owner, 2) {
            RebalanceOutcome::Remapped { new_owner, .. } => {
                let load = |owner: &[u32], r: u32| -> u64 {
                    (0..ncells)
                        .filter(|&c| owner[c] == r)
                        .map(|c| neutral[c])
                        .sum()
                };
                let before = load(&old_owner, 0).max(load(&old_owner, 1));
                let after = load(&new_owner, 0).max(load(&new_owner, 1));
                assert!(after < before, "after {after} !< before {before}");
            }
            o => panic!("expected remap, got {o:?}"),
        }
        assert_eq!(rb.rebalance_count, 1);
        assert_eq!(rb.iterations_since(), 0);
    }

    #[test]
    fn km_migrates_less_than_identity() {
        let ncells = 24;
        let (xadj, adj) = line(ncells);
        let neutral = vec![50u64; ncells];
        let charged = vec![0u64; ncells];
        let old_owner: Vec<u32> = (0..ncells).map(|c| (c * 3 / ncells) as u32).collect();
        let run = |use_km: bool| {
            let mut rb = Rebalancer::new(RebalanceConfig {
                t_interval: 1,
                use_km,
                ..RebalanceConfig::default()
            });
            match rb.step(10.0, &xadj, &adj, &neutral, &charged, &old_owner, 3) {
                RebalanceOutcome::Remapped {
                    migration_volume, ..
                } => migration_volume,
                o => panic!("{o:?}"),
            }
        };
        assert!(run(true) <= run(false));
    }
}
