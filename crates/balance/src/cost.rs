//! Pluggable per-cell cost sources for the load balancer.
//!
//! Algorithm 1 originally hard-wired the analytic weighted load model
//! (eq. 7) as the partitioner's vertex weights. This module turns the
//! weight computation into a [`CostSource`] implementation so the same
//! rebalance driver can run on:
//!
//! * [`PaperWlm`] — the paper's analytic `wlm = N + R·C + W_cell`,
//!   the default, kept bitwise-identical to the pre-refactor path;
//! * [`TimerAugmented`] — measured per-phase costs (DSMC move,
//!   collide/react, PIC move), EWMA-smoothed across rebalance checks
//!   and distributed over cells by each phase's natural per-cell
//!   driver, after McDoniel & Bientinesi's timer-augmented cost
//!   function. The quadratic collision term is what the linear
//!   analytic model cannot express: a crowded cell selects
//!   `O(N²)` candidate pairs but only costs `O(N)` under eq. 7.
//!
//! The measured seconds arrive through [`CostSource::observe`]: the
//! drivers reduce their per-rank phase timers to one global
//! [`CostSample`] per step (rank-ordered summation, so every rank of a
//! replicated balancer sees identical bits) and offer it here before
//! the rebalance decision.

use crate::wlm::{weighted_load_model, WlmParams};

/// One step's globally-reduced cost measurements, offered to a
/// [`CostSource`] before each rebalance decision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostSample {
    /// Seconds spent in DSMC_Move, summed over all ranks.
    pub dsmc_move_seconds: f64,
    /// Seconds spent in Colli_React, summed over all ranks.
    pub colli_react_seconds: f64,
    /// Seconds spent in all R PIC_Move sub-steps, summed over ranks.
    pub pic_move_seconds: f64,
    /// Total neutral particles across all cells.
    pub neutral_total: u64,
    /// Total collision candidate pairs, `Σ N_c·(N_c−1)`.
    pub pair_total: u64,
    /// Total charged particles across all cells.
    pub charged_total: u64,
}

/// Config-level selector for a cost source, carried inside the `Copy`
/// [`crate::RebalanceConfig`]; the stateful source itself is
/// materialised by [`Rebalancer::new`](crate::Rebalancer::new).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostSourceKind {
    /// Analytic weighted load model (paper eq. 7). Default.
    #[default]
    PaperWlm,
    /// EWMA-smoothed measured per-phase costs.
    TimerAugmented,
}

impl CostSourceKind {
    /// Stable short name, used in trace events and report tables.
    pub fn name(self) -> &'static str {
        match self {
            CostSourceKind::PaperWlm => "paper_wlm",
            CostSourceKind::TimerAugmented => "timer_augmented",
        }
    }
}

/// A strategy for turning per-cell particle counts (and optionally
/// measured timings) into partitioner vertex weights.
pub trait CostSource: std::fmt::Debug + Send {
    /// Stable short name, used in trace events and report tables.
    fn name(&self) -> &'static str;

    /// Offer one step's globally-reduced measured costs. Analytic
    /// sources ignore it; measured sources fold it into their
    /// smoothed state.
    fn observe(&mut self, sample: &CostSample) {
        let _ = sample;
    }

    /// Whether this source wants [`CostSource::observe`] calls — lets
    /// drivers skip gathering timer samples (and keep the default
    /// path's wire traffic untouched) when the source is analytic.
    fn wants_samples(&self) -> bool {
        false
    }

    /// Per-cell vertex weights for the k-way partitioner.
    fn cell_weights(&self, neutral: &[u64], charged: &[u64]) -> Vec<i64>;

    /// The smoothed per-unit cost rates in seconds (per neutral move,
    /// per collision pair, per charged move); zeros for analytic
    /// sources. Surfaced into `RebalanceEvent` as timing taps.
    fn cost_rates(&self) -> [f64; 3] {
        [0.0; 3]
    }

    /// Clone into a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn CostSource>;
}

impl Clone for Box<dyn CostSource> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The paper's analytic weighted load model (eq. 7), bit-for-bit the
/// pre-refactor weights: `wlm_i = N_i + R·C_i + W_cell`.
#[derive(Debug, Clone, Copy)]
pub struct PaperWlm(pub WlmParams);

impl CostSource for PaperWlm {
    fn name(&self) -> &'static str {
        CostSourceKind::PaperWlm.name()
    }

    fn cell_weights(&self, neutral: &[u64], charged: &[u64]) -> Vec<i64> {
        weighted_load_model(neutral, charged, self.0)
    }

    fn clone_box(&self) -> Box<dyn CostSource> {
        Box::new(*self)
    }
}

/// Integer weight scale for the measured rates: the most expensive
/// cell maps to this weight, everything else proportionally. Large
/// enough that the partitioner sees smooth gradations, small enough
/// that `Σ weights` stays far from `i64` overflow.
const TIMER_WEIGHT_SCALE: f64 = 1_000_000.0;

/// Timer-augmented cost source: EWMA-smoothed measured per-phase
/// seconds, distributed over cells by each phase's per-cell driver
/// (`N_c` for DSMC move, `N_c·(N_c−1)` for collision pair selection,
/// `C_c` for the PIC push).
#[derive(Debug, Clone, Copy)]
pub struct TimerAugmented {
    /// EWMA smoothing factor in `(0, 1]`; 1 = use only the newest
    /// sample.
    pub alpha: f64,
    /// Analytic fallback used until the first sample arrives, and the
    /// source of the `W_cell` floor that keeps empty cells movable.
    pub fallback: WlmParams,
    /// Smoothed `[per-neutral-move, per-pair, per-charged-move]`
    /// seconds; `None` until the first observation.
    rates: Option<[f64; 3]>,
}

impl TimerAugmented {
    pub fn new(fallback: WlmParams) -> Self {
        TimerAugmented {
            alpha: 0.3,
            fallback,
            rates: None,
        }
    }
}

impl CostSource for TimerAugmented {
    fn name(&self) -> &'static str {
        CostSourceKind::TimerAugmented.name()
    }

    fn wants_samples(&self) -> bool {
        true
    }

    fn observe(&mut self, sample: &CostSample) {
        let unit = |secs: f64, units: u64| if units == 0 { 0.0 } else { secs / units as f64 };
        let fresh = [
            unit(sample.dsmc_move_seconds, sample.neutral_total),
            unit(sample.colli_react_seconds, sample.pair_total),
            unit(sample.pic_move_seconds, sample.charged_total),
        ];
        self.rates = Some(match self.rates {
            None => fresh,
            Some(old) => {
                let mut next = [0.0; 3];
                for i in 0..3 {
                    next[i] = self.alpha * fresh[i] + (1.0 - self.alpha) * old[i];
                }
                next
            }
        });
    }

    fn cell_weights(&self, neutral: &[u64], charged: &[u64]) -> Vec<i64> {
        assert_eq!(neutral.len(), charged.len());
        let Some([per_move, per_pair, per_charged]) = self.rates else {
            // No measurement yet: fall back to the analytic model so
            // an early-firing balancer still acts sensibly.
            return weighted_load_model(neutral, charged, self.fallback);
        };
        let raw: Vec<f64> = neutral
            .iter()
            .zip(charged)
            .map(|(&n, &c)| {
                let pairs = n as f64 * (n as f64 - 1.0);
                per_move * n as f64 + per_pair * pairs.max(0.0) + per_charged * c as f64
            })
            .collect();
        let max = raw.iter().cloned().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return weighted_load_model(neutral, charged, self.fallback);
        }
        // W_cell survives as an additive floor so empty cells keep a
        // nonzero weight (the partitioner must still place them).
        let floor = self.fallback.w_cell.max(1);
        raw.iter()
            .map(|&r| (r / max * TIMER_WEIGHT_SCALE).round() as i64 + floor)
            .collect()
    }

    fn cost_rates(&self) -> [f64; 3] {
        self.rates.unwrap_or([0.0; 3])
    }

    fn clone_box(&self) -> Box<dyn CostSource> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_wlm_is_bitwise_the_analytic_model() {
        let n = [10u64, 0, 3];
        let c = [5u64, 2, 0];
        let params = WlmParams { r: 2, w_cell: 7 };
        let src = PaperWlm(params);
        assert_eq!(
            src.cell_weights(&n, &c),
            weighted_load_model(&n, &c, params)
        );
        assert!(!src.wants_samples());
        assert_eq!(src.cost_rates(), [0.0; 3]);
    }

    #[test]
    fn timer_falls_back_until_first_sample() {
        let params = WlmParams::default();
        let src = TimerAugmented::new(params);
        assert_eq!(
            src.cell_weights(&[5, 0], &[1, 2]),
            weighted_load_model(&[5, 0], &[1, 2], params)
        );
    }

    #[test]
    fn timer_weights_crowded_cells_superlinearly() {
        let mut src = TimerAugmented::new(WlmParams::default());
        src.observe(&CostSample {
            dsmc_move_seconds: 1.0,
            colli_react_seconds: 4.0,
            pic_move_seconds: 0.0,
            neutral_total: 130,
            pair_total: 100 * 99 + 20 * 19 + 10 * 9,
            charged_total: 0,
        });
        // cell 0 has 10x the particles of cell 1; with a quadratic
        // collision term its weight must exceed 10x cell 1's.
        let w = src.cell_weights(&[100, 10], &[0, 0]);
        assert!(
            w[0] > 10 * w[1],
            "quadratic pair cost missing: {} !> 10*{}",
            w[0],
            w[1]
        );
    }

    #[test]
    fn ewma_smooths_toward_new_samples() {
        let mut src = TimerAugmented::new(WlmParams::default());
        let sample = |secs: f64| CostSample {
            dsmc_move_seconds: secs,
            neutral_total: 100,
            ..CostSample::default()
        };
        src.observe(&sample(1.0));
        assert_eq!(src.cost_rates()[0], 0.01);
        src.observe(&sample(2.0));
        let r = src.cost_rates()[0];
        assert!(r > 0.01 && r < 0.02, "EWMA out of range: {r}");
    }

    #[test]
    fn empty_cells_keep_a_movable_weight() {
        let mut src = TimerAugmented::new(WlmParams { r: 2, w_cell: 3 });
        src.observe(&CostSample {
            dsmc_move_seconds: 1.0,
            neutral_total: 10,
            ..CostSample::default()
        });
        let w = src.cell_weights(&[10, 0], &[0, 0]);
        assert_eq!(w[1], 3, "empty cell must keep the W_cell floor");
        assert!(w[0] > w[1]);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(CostSourceKind::PaperWlm.name(), "paper_wlm");
        assert_eq!(CostSourceKind::TimerAugmented.name(), "timer_augmented");
        assert_eq!(CostSourceKind::default(), CostSourceKind::PaperWlm);
    }
}
