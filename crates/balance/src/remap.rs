//! KM-based grid remapping (paper §V-C, Fig. 6).
//!
//! After re-decomposition, the new parts must be assigned to ranks.
//! A naive (identity or random) assignment migrates far more
//! particles than necessary; the paper converts the problem to
//! maximum-weight bipartite matching — weight(part, rank) = load
//! already resident on `rank` that falls inside `part` — and solves
//! it with Kuhn–Munkres, keeping as much load in place as possible.

use partition::max_weight_assignment;

/// Remap new parts onto ranks with the KM algorithm. Returns the new
/// owner per cell.
///
/// * `old_owner[c]` — rank currently owning cell `c`
/// * `new_part[c]` — part id of cell `c` in the fresh decomposition
/// * `load[c]` — migration cost of cell `c` (its particle count)
/// * `k` — number of ranks (= number of parts)
pub fn remap_km(old_owner: &[u32], new_part: &[u32], load: &[u64], k: usize) -> Vec<u32> {
    assert_eq!(old_owner.len(), new_part.len());
    assert_eq!(old_owner.len(), load.len());

    // weight[part][rank] = load of `part` already on `rank`
    let mut weight = vec![vec![0i64; k]; k];
    for c in 0..old_owner.len() {
        weight[new_part[c] as usize][old_owner[c] as usize] += load[c] as i64;
    }
    let (assignment, _) = max_weight_assignment(&weight);

    old_owner
        .iter()
        .zip(new_part)
        .map(|(_, &p)| assignment[p as usize] as u32)
        .collect()
}

/// Baseline without KM: parts map to ranks by identity
/// (`part p → rank p`), as a pre-KM implementation would.
pub fn remap_identity(new_part: &[u32]) -> Vec<u32> {
    new_part.to_vec()
}

/// Total load that must migrate between ranks under a remapping.
pub fn migration_volume(old_owner: &[u32], new_owner: &[u32], load: &[u64]) -> u64 {
    old_owner
        .iter()
        .zip(new_owner)
        .zip(load)
        .filter(|((o, n), _)| o != n)
        .map(|(_, &l)| l)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Fig. 6 scenario: the new decomposition is a relabelling
    /// of the old one plus one moved cell; KM must recover the
    /// near-identity mapping.
    #[test]
    fn km_recovers_relabelled_partition() {
        // 6 cells, 2 ranks. old: rank0 = {0,1,2}, rank1 = {3,4,5}
        let old = vec![0, 0, 0, 1, 1, 1];
        // new partition labels are swapped: part1 = {0,1,2}, part0 = {3,4,5,}
        // plus cell 2 moved to the other side: part0 = {2,3,4,5}
        let new_part = vec![1, 1, 0, 0, 0, 0];
        let load = vec![10u64; 6];
        let owner = remap_km(&old, &new_part, &load, 2);
        // KM should map part1 -> rank0 and part0 -> rank1, so only
        // cell 2 migrates
        assert_eq!(owner, vec![0, 0, 1, 1, 1, 1]);
        assert_eq!(migration_volume(&old, &owner, &load), 10);
        // identity mapping would migrate 5 cells
        let naive = remap_identity(&new_part);
        assert_eq!(migration_volume(&old, &naive, &load), 50);
    }

    #[test]
    fn km_never_worse_than_identity() {
        // pseudo-random configurations
        let mut s = 777u64;
        let mut rnd = move |m: u64| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % m
        };
        for _ in 0..30 {
            let k = 4usize;
            let n = 40usize;
            let old: Vec<u32> = (0..n).map(|_| rnd(k as u64) as u32).collect();
            let new_part: Vec<u32> = (0..n).map(|_| rnd(k as u64) as u32).collect();
            let load: Vec<u64> = (0..n).map(|_| rnd(100)).collect();
            let km = remap_km(&old, &new_part, &load, k);
            let id = remap_identity(&new_part);
            assert!(migration_volume(&old, &km, &load) <= migration_volume(&old, &id, &load));
        }
    }

    #[test]
    fn remap_preserves_partition_structure() {
        // cells in the same part must land on the same rank
        let old = vec![0, 1, 0, 1];
        let new_part = vec![0, 0, 1, 1];
        let load = vec![1u64; 4];
        let owner = remap_km(&old, &new_part, &load, 2);
        assert_eq!(owner[0], owner[1]);
        assert_eq!(owner[2], owner[3]);
        assert_ne!(owner[0], owner[2]);
    }

    #[test]
    fn zero_load_cells_are_free_to_move() {
        let old = vec![0, 1];
        let new_part = vec![1, 0];
        let load = vec![0u64, 0];
        let owner = remap_km(&old, &new_part, &load, 2);
        assert_eq!(migration_volume(&old, &owner, &load), 0);
    }
}
