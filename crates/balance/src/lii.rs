//! The load-imbalance indicator (paper eq. 6).
//!
//! `lii` compares the *compute* time of the slowest and fastest rank,
//! after subtracting the two components that are "largely constant"
//! across ranks — particle migration (`DSMC_Exchange` +
//! `PIC_Exchange`) and the Poisson solve — so the indicator reflects
//! genuine particle/cell load skew rather than communication noise.

/// One rank's timing breakdown for an indicator window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankTimes {
    /// Total wall time of the window (s).
    pub total: f64,
    /// Time in particle migration (both exchanges) (s).
    pub migration: f64,
    /// Time in the Poisson solve (s).
    pub poisson: f64,
}

impl RankTimes {
    /// The imbalance-relevant compute time.
    #[inline]
    pub fn adjusted(&self) -> f64 {
        self.total - self.migration - self.poisson
    }
}

/// Compute the load-imbalance indicator over per-rank timings.
///
/// `lii = adj(argmax total) / adj(argmin total)` per eq. 6. Returns
/// 1.0 for fewer than 2 ranks, and `f64::INFINITY` when the fastest
/// rank's adjusted time is ≤ 0 (fully idle rank — maximal imbalance).
pub fn load_imbalance_indicator(times: &[RankTimes]) -> f64 {
    if times.len() < 2 {
        return 1.0;
    }
    let imax = (0..times.len())
        .max_by(|&a, &b| times[a].total.partial_cmp(&times[b].total).unwrap())
        .unwrap();
    let imin = (0..times.len())
        .min_by(|&a, &b| times[a].total.partial_cmp(&times[b].total).unwrap())
        .unwrap();
    let num = times[imax].adjusted();
    let den = times[imin].adjusted();
    if den <= 0.0 {
        return if num <= 0.0 { 1.0 } else { f64::INFINITY };
    }
    (num / den).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(total: f64, migration: f64, poisson: f64) -> RankTimes {
        RankTimes {
            total,
            migration,
            poisson,
        }
    }

    #[test]
    fn balanced_ranks_give_one() {
        let times = vec![rt(10.0, 1.0, 2.0); 4];
        assert!((load_imbalance_indicator(&times) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_is_measured_on_adjusted_time() {
        // rank 0: total 10, 3 constant -> 7 compute
        // rank 1: total 4, 3 constant -> 1 compute => lii = 7
        let times = vec![rt(10.0, 1.0, 2.0), rt(4.0, 1.0, 2.0)];
        assert!((load_imbalance_indicator(&times) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn constant_components_subtracted() {
        // identical compute, wildly different poisson time: indicator
        // still uses adjusted values from max/min *total* ranks
        let times = vec![rt(12.0, 1.0, 6.0), rt(6.0, 1.0, 0.0)];
        // max total rank 0: adj 5; min total rank 1: adj 5 -> lii 1
        assert!((load_imbalance_indicator(&times) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_rank_is_infinite_imbalance() {
        let times = vec![rt(10.0, 1.0, 1.0), rt(2.0, 1.0, 1.0)];
        assert_eq!(load_imbalance_indicator(&times), f64::INFINITY);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(load_imbalance_indicator(&[]), 1.0);
        assert_eq!(load_imbalance_indicator(&[rt(5.0, 1.0, 1.0)]), 1.0);
        // everything zero
        let z = vec![RankTimes::default(); 3];
        assert_eq!(load_imbalance_indicator(&z), 1.0);
    }
}
