//! Particle injection at the inlet (paper's *Inject* component).
//!
//! Each DSMC timestep injects simulation particles at the inlet disc
//! with positions uniform over the inlet faces (area-weighted) and
//! velocities perpendicular to the inlet following a drifting
//! Maxwellian, as §III-B prescribes.

use mesh::{BoundaryKind, TetMesh, Vec3};
use particles::sample::maxwellian;
use particles::{Particle, ParticleBuffer, Species};
use rand::Rng;

/// Precomputed inlet geometry plus injection bookkeeping.
#[derive(Debug, Clone)]
pub struct Injector {
    /// `(tet, face, cumulative area)` for area-weighted face choice.
    faces: Vec<(u32, u8, f64)>,
    /// Total inlet area (m²).
    pub area: f64,
    /// Inward unit normal (same for all inlet faces on the nozzle:
    /// +z).
    pub inward: Vec3,
    /// Fractional particle carry-over between steps (so non-integer
    /// per-step injection rates are honoured on average).
    carry: f64,
}

impl Injector {
    /// Build an injector over all inlet faces of `mesh`.
    pub fn new(mesh: &TetMesh) -> Self {
        Self::with_filter(mesh, |_| true).expect("mesh has no inlet faces")
    }

    /// Build an injector over the inlet faces whose owning cell
    /// satisfies `keep` — a rank in a decomposed run injects only
    /// into its own cells, and the per-rank areas sum to the global
    /// inlet area so the global flux is preserved. Returns `None`
    /// when no inlet face is kept.
    pub fn with_filter<F: Fn(u32) -> bool>(mesh: &TetMesh, keep: F) -> Option<Self> {
        let mut faces = Vec::new();
        let mut acc = 0.0;
        let mut inward = Vec3::ZERO;
        for (t, f) in mesh.boundary_faces(BoundaryKind::Inlet) {
            if !keep(t) {
                continue;
            }
            let a = mesh.face_area(t as usize, f as usize);
            acc += a;
            faces.push((t, f, acc));
            let (_c, n) = mesh.face_centroid_normal(t as usize, f as usize);
            inward = -n.normalized();
        }
        if faces.is_empty() {
            return None;
        }
        Some(Injector {
            faces,
            area: acc,
            inward,
            carry: 0.0,
        })
    }

    /// Fractional particle carry accumulated so far (checkpoint
    /// state: without it a restored run injects on a shifted
    /// schedule).
    pub fn carry(&self) -> f64 {
        self.carry
    }

    /// Restore a [`Injector::carry`] snapshot.
    pub fn set_carry(&mut self, carry: f64) {
        self.carry = carry;
    }

    /// Number of simulation particles to inject this step for a
    /// species with real number density `n_real` (1/m³) entering at
    /// drift speed `v_drift` (m/s) over timestep `dt`, given the
    /// species scaling factor.
    ///
    /// Flux = n · A · v · dt real particles; divide by the per-
    /// simulation-particle weight.
    pub fn particles_per_step(&self, n_real: f64, v_drift: f64, dt: f64, weight: f64) -> f64 {
        n_real * self.area * v_drift * dt / weight
    }

    /// Inject `species` particles for one timestep. `rate` is the
    /// (possibly fractional) number of simulation particles per step;
    /// the fractional part accumulates across steps. Velocities are
    /// Maxwellian at temperature `temp` around `v_drift · inward`.
    ///
    /// Returns how many particles were created.
    #[allow(clippy::too_many_arguments)]
    pub fn inject<R: Rng>(
        &mut self,
        mesh: &TetMesh,
        buf: &mut ParticleBuffer,
        species_id: u8,
        species: &Species,
        rate: f64,
        v_drift: f64,
        temp: f64,
        rng: &mut R,
    ) -> usize {
        self.carry += rate;
        let n = self.carry as usize;
        self.carry -= n as f64;

        let drift = self.inward * v_drift;
        for _ in 0..n {
            // area-weighted face pick by binary search on cumulative
            // areas
            let x: f64 = rng.gen::<f64>() * self.area;
            let k = self
                .faces
                .partition_point(|&(_, _, acc)| acc < x)
                .min(self.faces.len() - 1);
            let (t, f, _) = self.faces[k];
            let fnodes = mesh.face_nodes(t as usize, f as usize);
            let [a, b, c] = [
                mesh.nodes[fnodes[0] as usize],
                mesh.nodes[fnodes[1] as usize],
                mesh.nodes[fnodes[2] as usize],
            ];
            let mut pos = particles::sample::point_in_triangle(rng, a, b, c);
            // nudge the particle slightly inside the cell so it does
            // not sit exactly on the boundary plane
            pos += self.inward * (mesh.mean_cell_size() * 1e-6);

            let mut vel = maxwellian(rng, temp, species.mass, drift);
            // enforce inward motion (flux through the inlet is one-way)
            let vn = vel.dot(self.inward);
            if vn <= 0.0 {
                vel -= self.inward * (2.0 * vn);
            }

            buf.push(Particle {
                pos,
                vel,
                cell: t,
                species: species_id,
                id: 0, // assigned by Reindex
            });
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::NozzleSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TetMesh, Injector) {
        let m = NozzleSpec {
            nd: 6,
            nz: 8,
            ..NozzleSpec::default()
        }
        .generate();
        let inj = Injector::new(&m);
        (m, inj)
    }

    #[test]
    fn inlet_area_matches_faces() {
        let (m, inj) = setup();
        let total: f64 = m
            .boundary_faces(BoundaryKind::Inlet)
            .iter()
            .map(|&(t, f)| m.face_area(t as usize, f as usize))
            .sum();
        assert!((inj.area - total).abs() < 1e-15);
        assert!(inj.area > 0.0);
        // inward normal is +z for the nozzle inlet at z=0
        assert!((inj.inward.z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn injects_requested_count_on_average() {
        let (m, mut inj) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = ParticleBuffer::new();
        let sp = Species::hydrogen(1.0);
        let mut total = 0usize;
        for _ in 0..100 {
            total += inj.inject(&m, &mut buf, 0, &sp, 2.5, 1e4, 300.0, &mut rng);
        }
        assert_eq!(total, 250); // fractional carry makes this exact
        assert_eq!(buf.len(), 250);
    }

    #[test]
    fn injected_particles_inside_their_cells_moving_inward() {
        let (m, mut inj) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = ParticleBuffer::new();
        let sp = Species::hydrogen(1.0);
        inj.inject(&m, &mut buf, 0, &sp, 50.0, 1e4, 300.0, &mut rng);
        for p in buf.iter() {
            assert!(
                m.contains(p.cell as usize, p.pos, 1e-6),
                "particle outside its cell"
            );
            assert!(p.vel.z > 0.0, "must move into the domain");
            assert!(p.pos.z >= 0.0);
        }
    }

    #[test]
    fn velocity_distribution_centred_on_drift() {
        let (m, mut inj) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = ParticleBuffer::new();
        let sp = Species::hydrogen(1.0);
        inj.inject(&m, &mut buf, 0, &sp, 5000.0, 1e4, 300.0, &mut rng);
        let mean_vz: f64 = buf.iter().map(|p| p.vel.z).sum::<f64>() / buf.len() as f64;
        // drift 10 km/s dominates thermal (~1.6 km/s at 300K)
        assert!((mean_vz - 1e4).abs() < 200.0, "{mean_vz}");
    }

    #[test]
    fn flux_formula() {
        let (_m, inj) = setup();
        let rate = inj.particles_per_step(1e20, 1e4, 1e-7, 1e10);
        assert!((rate - 1e20 * inj.area * 1e4 * 1e-7 / 1e10).abs() < 1e-9);
    }
}
