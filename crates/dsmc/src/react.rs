//! Chemical reactions (the paper's *Colli_React* component, reaction
//! half): dissociation/ionisation of H and recombination of H⁺
//! (paper §VI-C: "we are mainly concerned about the dissociation of H
//! and the recombination of H⁺").
//!
//! Model (documented substitution — see DESIGN.md): electrons are not
//! tracked as particles (quasi-neutral background), so
//! * **dissociation/ionisation**: an accepted H–H collision whose
//!   relative kinetic energy `½ μ g²` exceeds the activation energy
//!   converts one partner to H⁺ with a steric probability;
//! * **recombination**: each H⁺ reverts to H with probability
//!   `1 − exp(−k_r · n_i · Δt)` where `n_i` is the local real ion
//!   density (three-body recombination with the implicit electron
//!   fluid, quasi-neutrality `n_e ≈ n_i`).

use mesh::TetMesh;
use particles::{ParticleBuffer, SpeciesTable};
use rand::Rng;

use crate::collide::CollisionEvent;

/// Reaction-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct ChemistryModel {
    /// Activation energy for the dissociation channel (J).
    pub e_activation: f64,
    /// Steric factor: probability of reaction once the energy
    /// threshold is met.
    pub p_steric: f64,
    /// Recombination rate coefficient `k_r` (m³/s).
    pub k_recomb: f64,
}

impl Default for ChemistryModel {
    fn default() -> Self {
        ChemistryModel {
            // Threshold chosen so the plume's hot core (10 km/s drift,
            // collisional thermalisation) actually exercises the
            // channel at simulation scale: ~0.05 eV.
            e_activation: 8.0e-21,
            p_steric: 0.3,
            k_recomb: 1.0e-16,
        }
    }
}

/// Counts of reactions performed in one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactStats {
    pub dissociations: usize,
    pub recombinations: usize,
}

impl ChemistryModel {
    /// Process the collision events of this step: H–H pairs above the
    /// activation energy dissociate (one partner becomes H⁺).
    pub fn react_collisions<R: Rng>(
        &self,
        buf: &mut ParticleBuffer,
        species: &SpeciesTable,
        h_id: u8,
        hplus_id: u8,
        events: &[CollisionEvent],
        rng: &mut R,
    ) -> ReactStats {
        let m_h = species.get(h_id).mass;
        let mu = m_h / 2.0; // reduced mass of identical partners
        let mut stats = ReactStats::default();
        for e in events {
            let (i, j) = (e.i as usize, e.j as usize);
            if buf.species[i] != h_id || buf.species[j] != h_id {
                continue;
            }
            let energy = 0.5 * mu * e.rel_speed * e.rel_speed;
            if energy >= self.e_activation && rng.gen::<f64>() < self.p_steric {
                // the faster partner ionises
                let k = if buf.vel(i).norm2() >= buf.vel(j).norm2() {
                    i
                } else {
                    j
                };
                buf.species[k] = hplus_id;
                stats.dissociations += 1;
            }
        }
        stats
    }

    /// Recombination pass: every H⁺ reverts to H with a probability
    /// set by the local ion density.
    #[allow(clippy::too_many_arguments)]
    pub fn recombine<R: Rng>(
        &self,
        mesh: &TetMesh,
        buf: &mut ParticleBuffer,
        species: &SpeciesTable,
        h_id: u8,
        hplus_id: u8,
        dt: f64,
        rng: &mut R,
    ) -> ReactStats {
        // local real ion density per cell
        let w_ion = species.get(hplus_id).weight;
        let mut ions_per_cell = vec![0u64; mesh.num_cells()];
        for i in 0..buf.len() {
            if buf.species[i] == hplus_id {
                ions_per_cell[buf.cell[i] as usize] += 1;
            }
        }
        let mut stats = ReactStats::default();
        for i in 0..buf.len() {
            if buf.species[i] != hplus_id {
                continue;
            }
            let c = buf.cell[i] as usize;
            let n_i = ions_per_cell[c] as f64 * w_ion / mesh.volumes[c];
            let p = 1.0 - (-self.k_recomb * n_i * dt).exp();
            if rng.gen::<f64>() < p {
                buf.species[i] = h_id;
                stats.recombinations += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::{NozzleSpec, Vec3};
    use particles::Particle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TetMesh, SpeciesTable) {
        let m = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        let (t, _, _) = SpeciesTable::hydrogen_plasma(1e12, 6000.0);
        (m, t)
    }

    fn two_particles(speed: f64) -> ParticleBuffer {
        let mut buf = ParticleBuffer::new();
        for (k, v) in [speed, -speed].iter().enumerate() {
            buf.push(Particle {
                pos: Vec3::ZERO,
                vel: Vec3::new(*v, 0.0, 0.0),
                cell: 0,
                species: 0,
                id: k as u64,
            });
        }
        buf
    }

    #[test]
    fn fast_collisions_dissociate() {
        let (_m, table) = setup();
        let chem = ChemistryModel {
            p_steric: 1.0,
            ..ChemistryModel::default()
        };
        // relative speed 20 km/s: energy = 0.5 * (m/2) * g² ≈ 1.7e-19 J >> threshold
        let mut buf = two_particles(1e4);
        let events = [CollisionEvent {
            i: 0,
            j: 1,
            rel_speed: 2e4,
        }];
        let mut rng = StdRng::seed_from_u64(1);
        let stats = chem.react_collisions(&mut buf, &table, 0, 1, &events, &mut rng);
        assert_eq!(stats.dissociations, 1);
        let n_ions = buf.species.iter().filter(|&&s| s == 1).count();
        assert_eq!(n_ions, 1);
    }

    #[test]
    fn slow_collisions_do_not_react() {
        let (_m, table) = setup();
        let chem = ChemistryModel {
            p_steric: 1.0,
            ..ChemistryModel::default()
        };
        let mut buf = two_particles(10.0);
        let events = [CollisionEvent {
            i: 0,
            j: 1,
            rel_speed: 20.0,
        }];
        let mut rng = StdRng::seed_from_u64(2);
        let stats = chem.react_collisions(&mut buf, &table, 0, 1, &events, &mut rng);
        assert_eq!(stats.dissociations, 0);
        assert!(buf.species.iter().all(|&s| s == 0));
    }

    #[test]
    fn non_hh_pairs_skipped() {
        let (_m, table) = setup();
        let chem = ChemistryModel {
            p_steric: 1.0,
            ..ChemistryModel::default()
        };
        let mut buf = two_particles(1e4);
        buf.species[1] = 1; // H-H+ pair
        let events = [CollisionEvent {
            i: 0,
            j: 1,
            rel_speed: 2e4,
        }];
        let mut rng = StdRng::seed_from_u64(3);
        let stats = chem.react_collisions(&mut buf, &table, 0, 1, &events, &mut rng);
        assert_eq!(stats.dissociations, 0);
    }

    #[test]
    fn recombination_rate_increases_with_density() {
        let (m, table) = setup();
        // rate sized so the dense cloud recombines at ~50% per step
        // at this mesh's cell volume and the H+ weight of 6000
        let chem = ChemistryModel {
            k_recomb: 1.5e-9,
            ..ChemistryModel::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        // dense ion cloud in cell 0
        let mut dense = ParticleBuffer::new();
        for k in 0..400u64 {
            dense.push(Particle {
                pos: m.centroids[0],
                vel: Vec3::ZERO,
                cell: 0,
                species: 1,
                id: k,
            });
        }
        let stats_dense = chem.recombine(&m, &mut dense, &table, 0, 1, 1e-6, &mut rng);
        // sparse cloud: 4 ions
        let mut sparse = ParticleBuffer::new();
        for k in 0..4u64 {
            sparse.push(Particle {
                pos: m.centroids[0],
                vel: Vec3::ZERO,
                cell: 0,
                species: 1,
                id: k,
            });
        }
        let stats_sparse = chem.recombine(&m, &mut sparse, &table, 0, 1, 1e-6, &mut rng);
        let frac_dense = stats_dense.recombinations as f64 / 400.0;
        let frac_sparse = stats_sparse.recombinations as f64 / 4.0;
        assert!(
            frac_dense > frac_sparse,
            "dense {frac_dense} vs sparse {frac_sparse}"
        );
    }

    #[test]
    fn zero_rate_means_no_recombination() {
        let (m, table) = setup();
        let chem = ChemistryModel {
            k_recomb: 0.0,
            ..ChemistryModel::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = ParticleBuffer::new();
        for k in 0..50u64 {
            buf.push(Particle {
                pos: m.centroids[0],
                vel: Vec3::ZERO,
                cell: 0,
                species: 1,
                id: k,
            });
        }
        let stats = chem.recombine(&m, &mut buf, &table, 0, 1, 1e-6, &mut rng);
        assert_eq!(stats.recombinations, 0);
    }
}
