//! Direct Simulation Monte Carlo on the coarse tetrahedral grid
//! (paper §III-B): Maxwellian inlet injection, ballistic movement
//! with exact cell tracking and diffuse walls, Bird NTC collisions
//! with the VHS model, hydrogen dissociation/recombination chemistry,
//! and flow-field moments.

pub mod collide;
pub mod cross;
pub mod inject;
pub mod moments;
pub mod movepush;
pub mod react;

pub use collide::{CollideStats, CollisionEvent, CollisionModel};
pub use cross::{CrossCollisionModel, CrossStats};
pub use inject::Injector;
pub use moments::{moments, CellMoments};
pub use movepush::{
    move_particles, move_particles_filtered, move_particles_pooled, move_particles_tracked,
    MoveStats, Pump, EXITED,
};
pub use react::{ChemistryModel, ReactStats};
