//! Cross-species neutral–ion collisions: momentum exchange (MEX) and
//! charge exchange (CEX).
//!
//! The paper's related work (SUGAR, CHAOS) simulates MEX and CEX
//! collisions between neutral particles and charged particles in ion
//! thruster plumes; the paper's own solver "implements various
//! collision ... models". This module extends the NTC machinery to
//! H–H⁺ pairs:
//!
//! * **MEX**: elastic VHS scattering between a neutral and an ion —
//!   identical kinematics to neutral–neutral collisions (equal masses
//!   here, written for the general case).
//! * **CEX**: resonant charge exchange `H + H⁺ → H⁺ + H`: an electron
//!   hops between the partners, so the particles *swap identities*
//!   while keeping their velocities — a fast ion becomes a fast
//!   neutral and a slow neutral becomes a slow ion. This is the
//!   dominant process shaping thruster-plume wings.

use crate::collide::CollisionEvent;
use mesh::TetMesh;
use particles::{ParticleBuffer, SpeciesTable};
use rand::Rng;

/// Cross-collision parameters.
#[derive(Debug, Clone, Copy)]
pub struct CrossCollisionModel {
    /// Fraction of accepted neutral–ion collisions that are CEX (the
    /// rest are MEX). Resonant CEX cross-sections are comparable to
    /// the momentum-transfer cross-section for H/H⁺.
    pub cex_fraction: f64,
}

impl Default for CrossCollisionModel {
    fn default() -> Self {
        CrossCollisionModel { cex_fraction: 0.5 }
    }
}

/// Outcome counts of one cross-collision pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossStats {
    pub candidates: usize,
    pub mex: usize,
    pub cex: usize,
}

impl CrossCollisionModel {
    /// One NTC pass over neutral–ion pairs. Appends accepted events
    /// (for diagnostics) to `events`.
    #[allow(clippy::too_many_arguments)]
    pub fn collide<R: Rng>(
        &self,
        mesh: &TetMesh,
        buf: &mut ParticleBuffer,
        species: &SpeciesTable,
        neutral_id: u8,
        ion_id: u8,
        dt: f64,
        rng: &mut R,
        events: &mut Vec<CollisionEvent>,
    ) -> CrossStats {
        let n_sp = species.get(neutral_id);
        let i_sp = species.get(ion_id);
        // The ion scaling factor is usually far smaller than the
        // neutral one; NTC pairing uses the larger weight so every
        // selected pair represents min-weight physics (standard
        // conservative choice for disparate weights).
        let f_n = n_sp.weight.max(i_sp.weight);

        // bucket both species per cell
        let nc = mesh.num_cells();
        let mut neutrals: Vec<Vec<u32>> = vec![Vec::new(); nc];
        let mut ions: Vec<Vec<u32>> = vec![Vec::new(); nc];
        for i in 0..buf.len() {
            let c = buf.cell[i] as usize;
            if buf.species[i] == neutral_id {
                neutrals[c].push(i as u32);
            } else if buf.species[i] == ion_id {
                ions[c].push(i as u32);
            }
        }

        let mut stats = CrossStats::default();
        for c in 0..nc {
            let nn = neutrals[c].len();
            let ni = ions[c].len();
            if nn == 0 || ni == 0 {
                continue;
            }
            let g_ref = n_sp.thermal_speed(n_sp.t_ref);
            let sigma_g_max = 2.0 * n_sp.vhs_cross_section(g_ref) * g_ref;
            let n_cand = nn as f64 * ni as f64 * f_n * sigma_g_max * dt / mesh.volumes[c];
            let n_cand = n_cand.floor() as usize + usize::from(rng.gen::<f64>() < n_cand.fract());

            for _ in 0..n_cand {
                stats.candidates += 1;
                let a = neutrals[c][rng.gen_range(0..nn)] as usize;
                let b = ions[c][rng.gen_range(0..ni)] as usize;
                let g_vec = buf.vel(a) - buf.vel(b);
                let g = g_vec.norm();
                let sigma_g = n_sp.vhs_cross_section(g) * g;
                if rng.gen::<f64>() * sigma_g_max >= sigma_g {
                    continue;
                }
                if rng.gen::<f64>() < self.cex_fraction {
                    // CEX: identities swap, velocities stay — the
                    // electron hops, momentum of each *body* is
                    // untouched.
                    buf.species[a] = ion_id;
                    buf.species[b] = neutral_id;
                    stats.cex += 1;
                } else {
                    // MEX: elastic isotropic VHS scattering
                    let m1 = n_sp.mass;
                    let m2 = i_sp.mass;
                    let cm = (buf.vel(a) * m1 + buf.vel(b) * m2) / (m1 + m2);
                    let cos_t = 2.0 * rng.gen::<f64>() - 1.0;
                    let sin_t = (1.0 - cos_t * cos_t).sqrt();
                    let phi = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
                    let dir = mesh::Vec3::new(sin_t * phi.cos(), sin_t * phi.sin(), cos_t);
                    buf.set_vel(a, cm + dir * (g * m2 / (m1 + m2)));
                    buf.set_vel(b, cm - dir * (g * m1 / (m1 + m2)));
                    stats.mex += 1;
                }
                events.push(CollisionEvent {
                    i: a as u32,
                    j: b as u32,
                    rel_speed: g,
                });
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::{NozzleSpec, Vec3};
    use particles::Particle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(nn: usize, ni: usize) -> (TetMesh, SpeciesTable, ParticleBuffer) {
        let m = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        let (table, h, hp) = SpeciesTable::hydrogen_plasma(1e12, 1e12);
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = ParticleBuffer::new();
        for k in 0..(nn + ni) as u64 {
            let sp = if (k as usize) < nn { h } else { hp };
            // ions drift fast, neutrals are slow: CEX visibly swaps
            let drift = if sp == hp {
                Vec3::new(0.0, 0.0, 2e4)
            } else {
                Vec3::ZERO
            };
            buf.push(Particle {
                pos: m.centroids[0],
                vel: particles::sample::maxwellian(&mut rng, 300.0, particles::MASS_H, drift),
                cell: 0,
                species: sp,
                id: k,
            });
        }
        (m, table, buf)
    }

    #[test]
    fn conserves_species_totals() {
        let (m, table, mut buf) = setup(150, 150);
        let model = CrossCollisionModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut ev = Vec::new();
        let before_ions = buf.species.iter().filter(|&&s| s == 1).count();
        let stats = model.collide(&m, &mut buf, &table, 0, 1, 5e-6, &mut rng, &mut ev);
        assert!(stats.candidates > 0, "no candidates drawn");
        let after_ions = buf.species.iter().filter(|&&s| s == 1).count();
        // CEX swaps identities pairwise: totals unchanged
        assert_eq!(before_ions, after_ions);
        assert_eq!(buf.len(), 300);
    }

    #[test]
    fn cex_transfers_drift_to_neutrals() {
        let (m, table, mut buf) = setup(200, 200);
        let model = CrossCollisionModel { cex_fraction: 1.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let mut ev = Vec::new();
        let mean_vz = |buf: &ParticleBuffer, sp: u8| {
            let vs: Vec<f64> = (0..buf.len())
                .filter(|&i| buf.species[i] == sp)
                .map(|i| buf.vz[i])
                .collect();
            vs.iter().sum::<f64>() / vs.len() as f64
        };
        let neutral_vz_before = mean_vz(&buf, 0);
        let stats = model.collide(&m, &mut buf, &table, 0, 1, 2e-5, &mut rng, &mut ev);
        assert!(stats.cex > 5, "need CEX events, got {stats:?}");
        assert_eq!(stats.mex, 0);
        let neutral_vz_after = mean_vz(&buf, 0);
        // fast ions became neutrals: neutral drift must rise
        assert!(
            neutral_vz_after > neutral_vz_before + 100.0,
            "{neutral_vz_before} -> {neutral_vz_after}"
        );
    }

    #[test]
    fn mex_conserves_momentum_and_energy() {
        let (m, table, mut buf) = setup(150, 150);
        let model = CrossCollisionModel { cex_fraction: 0.0 };
        let mut rng = StdRng::seed_from_u64(4);
        let mut ev = Vec::new();
        let mom = |buf: &ParticleBuffer| buf.iter().fold(Vec3::ZERO, |acc, p| acc + p.vel);
        let energy = |buf: &ParticleBuffer| -> f64 { buf.iter().map(|p| p.vel.norm2()).sum() };
        let (p0, e0) = (mom(&buf), energy(&buf));
        let stats = model.collide(&m, &mut buf, &table, 0, 1, 5e-6, &mut rng, &mut ev);
        assert!(stats.mex > 0);
        // H and H+ masses differ by one electron mass (~0.05%), so
        // conservation holds to that order
        assert!((mom(&buf) - p0).norm() < 1e-3 * p0.norm());
        assert!((energy(&buf) - e0).abs() < 1e-3 * e0);
    }

    #[test]
    fn no_partners_no_collisions() {
        let (m, table, mut buf) = setup(100, 0);
        let model = CrossCollisionModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut ev = Vec::new();
        let stats = model.collide(&m, &mut buf, &table, 0, 1, 1e-5, &mut rng, &mut ev);
        assert_eq!(stats, CrossStats::default());
    }
}
