//! Cell-centred flow-field moments: number density, bulk velocity and
//! temperature.
//!
//! Used for validation output (the paper's Fig. 8 density contours and
//! Fig. 9 axis profiles) and for diagnostics.

use mesh::{TetMesh, Vec3};
use particles::{ParticleBuffer, SpeciesTable, KB};

/// Per-cell moments of one species.
#[derive(Debug, Clone)]
pub struct CellMoments {
    /// Simulation-particle counts per cell.
    pub count: Vec<u64>,
    /// Real number density per cell (1/m³).
    pub density: Vec<f64>,
    /// Bulk (mean) velocity per cell (m/s).
    pub velocity: Vec<Vec3>,
    /// Translational temperature per cell (K); 0 for cells with < 2
    /// particles.
    pub temperature: Vec<f64>,
}

/// Compute moments of species `species_id` on the coarse grid.
pub fn moments(
    mesh: &TetMesh,
    buf: &ParticleBuffer,
    species: &SpeciesTable,
    species_id: u8,
) -> CellMoments {
    let nc = mesh.num_cells();
    let sp = species.get(species_id);
    let mut count = vec![0u64; nc];
    let mut vsum = vec![Vec3::ZERO; nc];
    let mut v2sum = vec![0.0f64; nc];

    for i in 0..buf.len() {
        if buf.species[i] != species_id {
            continue;
        }
        let c = buf.cell[i] as usize;
        count[c] += 1;
        vsum[c] += buf.vel(i);
        v2sum[c] += buf.vel(i).norm2();
    }

    let mut density = vec![0.0; nc];
    let mut velocity = vec![Vec3::ZERO; nc];
    let mut temperature = vec![0.0; nc];
    for c in 0..nc {
        let n = count[c];
        if n == 0 {
            continue;
        }
        density[c] = n as f64 * sp.weight / mesh.volumes[c];
        let vbar = vsum[c] / n as f64;
        velocity[c] = vbar;
        if n >= 2 {
            // <c²> = <v²> − |<v>|², T = m <c²> / (3 k_B)
            let c2 = (v2sum[c] / n as f64 - vbar.norm2()).max(0.0);
            temperature[c] = sp.mass * c2 / (3.0 * KB);
        }
    }

    CellMoments {
        count,
        density,
        velocity,
        temperature,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::NozzleSpec;
    use particles::sample::maxwellian;
    use particles::Particle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn density_counts_weights_and_volume() {
        let m = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        let (table, h, _) = SpeciesTable::hydrogen_plasma(1e10, 1.0);
        let mut buf = ParticleBuffer::new();
        for k in 0..7u64 {
            buf.push(Particle {
                pos: m.centroids[3],
                vel: Vec3::ZERO,
                cell: 3,
                species: h,
                id: k,
            });
        }
        let mom = moments(&m, &buf, &table, h);
        assert_eq!(mom.count[3], 7);
        let expect = 7.0 * 1e10 / m.volumes[3];
        assert!((mom.density[3] - expect).abs() < 1e-6 * expect);
        assert_eq!(mom.count[0], 0);
        assert_eq!(mom.density[0], 0.0);
    }

    #[test]
    fn temperature_recovers_maxwellian() {
        let m = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        let (table, h, _) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = ParticleBuffer::new();
        let drift = Vec3::new(0.0, 0.0, 1e4);
        for k in 0..5000u64 {
            buf.push(Particle {
                pos: m.centroids[0],
                vel: maxwellian(&mut rng, 450.0, particles::MASS_H, drift),
                cell: 0,
                species: h,
                id: k,
            });
        }
        let mom = moments(&m, &buf, &table, h);
        assert!(
            (mom.temperature[0] - 450.0).abs() < 20.0,
            "{}",
            mom.temperature[0]
        );
        assert!((mom.velocity[0].z - 1e4).abs() < 100.0);
    }

    #[test]
    fn species_filtered() {
        let m = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        let (table, h, hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        let mut buf = ParticleBuffer::new();
        buf.push(Particle {
            pos: m.centroids[0],
            vel: Vec3::ZERO,
            cell: 0,
            species: hp,
            id: 0,
        });
        let mom = moments(&m, &buf, &table, h);
        assert_eq!(mom.count[0], 0);
        let mom_ion = moments(&m, &buf, &table, hp);
        assert_eq!(mom_ion.count[0], 1);
    }
}
