//! Bird NTC collision-pair selection with the VHS interaction model
//! (the paper's *Colli_React* component, collision half; Bird 1994).
//!
//! Per coarse cell, the no-time-counter scheme draws
//! `½ N (N−1) F_N (σg)_max Δt / V_c` candidate pairs and accepts each
//! with probability `σ(g)·g / (σg)_max`; accepted pairs scatter
//! isotropically (VHS), conserving momentum and energy exactly.

use kernels::{fork_rng, Pool};
use mesh::TetMesh;
use particles::{ParticleBuffer, SpeciesTable};
use rand::Rng;

/// Persistent per-cell state of the NTC scheme (the running
/// `(σg)_max` estimate) plus scratch buffers.
#[derive(Debug, Clone)]
pub struct CollisionModel {
    /// Running maximum of σ(g)·g per cell (m³/s).
    sigma_g_max: Vec<f64>,
    /// Scratch: particle indices per cell.
    cell_lists: Vec<Vec<u32>>,
    /// `cell_lists` already holds this step's bucketing (built by
    /// [`CollisionModel::prebucket`] during an overlapped exchange);
    /// the next collide pass consumes it instead of re-bucketing.
    buckets_ready: bool,
}

/// Outcome of one collision pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CollideStats {
    /// Candidate pairs drawn.
    pub candidates: usize,
    /// Pairs that actually collided.
    pub collisions: usize,
}

/// An accepted collision: buffer indices of the two partners and
/// their post-collision relative speed (used by the chemistry model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionEvent {
    pub i: u32,
    pub j: u32,
    /// Relative speed at impact (m/s).
    pub rel_speed: f64,
}

impl CollisionModel {
    /// Initialise for `num_cells` cells with an initial `(σg)_max`
    /// guess derived from the species' thermal speed at `t_init`.
    pub fn new(num_cells: usize, species: &SpeciesTable, t_init: f64) -> Self {
        let guess = species
            .iter()
            .map(|(_, s)| s.vhs_cross_section(s.thermal_speed(t_init)) * s.thermal_speed(t_init))
            .fold(0.0f64, f64::max)
            .max(1e-20);
        CollisionModel {
            sigma_g_max: vec![guess; num_cells],
            cell_lists: vec![Vec::new(); num_cells],
            buckets_ready: false,
        }
    }

    /// Bucket the neutrals of `buf` by cell ahead of the collide pass
    /// — the RNG-free half of the pass, safe to run while an exchange
    /// is in flight. Immigrants arriving after this call must be
    /// appended with [`CollisionModel::extend_bucket`]; the next
    /// collide pass then skips its own bucketing and consumes the
    /// prepared lists, bit-identically (buckets hold indices in
    /// ascending order either way).
    pub fn prebucket(&mut self, buf: &ParticleBuffer, neutral_id: u8) {
        for l in self.cell_lists.iter_mut() {
            l.clear();
        }
        for i in 0..buf.len() {
            if buf.species[i] == neutral_id {
                self.cell_lists[buf.cell[i] as usize].push(i as u32);
            }
        }
        self.buckets_ready = true;
    }

    /// Append the neutrals of `buf[from..]` (freshly unpacked
    /// immigrants) to the buckets prepared by
    /// [`CollisionModel::prebucket`].
    pub fn extend_bucket(&mut self, buf: &ParticleBuffer, from: usize, neutral_id: u8) {
        debug_assert!(self.buckets_ready, "extend_bucket without prebucket");
        for i in from..buf.len() {
            if buf.species[i] == neutral_id {
                self.cell_lists[buf.cell[i] as usize].push(i as u32);
            }
        }
    }

    /// Consume the prepared buckets, or (re)build them from `buf`.
    fn bucket(&mut self, buf: &ParticleBuffer, neutral_id: u8) {
        if self.buckets_ready {
            self.buckets_ready = false;
            return;
        }
        for l in self.cell_lists.iter_mut() {
            l.clear();
        }
        for i in 0..buf.len() {
            if buf.species[i] == neutral_id {
                self.cell_lists[buf.cell[i] as usize].push(i as u32);
            }
        }
    }

    /// The adaptive per-cell `(σg)_max` table (checkpoint state: it
    /// ratchets up over a run and gates the NTC candidate count, so a
    /// restored run must resume from the same table).
    pub fn sigma_g_max(&self) -> &[f64] {
        &self.sigma_g_max
    }

    /// Restore a [`CollisionModel::sigma_g_max`] snapshot.
    pub fn set_sigma_g_max(&mut self, table: &[f64]) {
        assert_eq!(table.len(), self.sigma_g_max.len(), "cell count mismatch");
        self.sigma_g_max.copy_from_slice(table);
    }

    /// Perform one NTC collision pass over the *neutral* particles of
    /// `buf` (species id `neutral_id`). Returns statistics and pushes
    /// every accepted collision into `events` for the chemistry step.
    #[allow(clippy::too_many_arguments)]
    pub fn collide<R: Rng>(
        &mut self,
        mesh: &TetMesh,
        buf: &mut ParticleBuffer,
        species: &SpeciesTable,
        neutral_id: u8,
        dt: f64,
        rng: &mut R,
        events: &mut Vec<CollisionEvent>,
    ) -> CollideStats {
        let sp = species.get(neutral_id);
        let f_n = sp.weight;
        let mass = sp.mass;

        // Bucket neutral particles by cell (or consume the buckets an
        // overlapped exchange already prepared).
        self.bucket(buf, neutral_id);

        let mut stats = CollideStats::default();
        // Per-cell scratch: the cell's velocities gathered into three
        // contiguous scalar lanes so the relative-speed / scattering
        // arithmetic runs on dense local arrays instead of striding
        // through the whole buffer. The candidate draw compares list
        // *positions* instead of buffer indices — equivalent (the cell
        // lists hold distinct indices) and identical RNG consumption.
        let mut lvx: Vec<f64> = Vec::new();
        let mut lvy: Vec<f64> = Vec::new();
        let mut lvz: Vec<f64> = Vec::new();
        let mut dirty: Vec<bool> = Vec::new();
        for (c, list) in self.cell_lists.iter().enumerate() {
            let n = list.len();
            if n < 2 {
                continue;
            }
            let vc = mesh.volumes[c];
            let sgm = self.sigma_g_max[c];
            let mut sgm_adapt = sgm;
            let n_cand = 0.5 * n as f64 * (n as f64 - 1.0) * f_n * sgm * dt / vc;
            // probabilistic rounding of the fractional candidate count
            let n_cand = n_cand.floor() as usize + usize::from(rng.gen::<f64>() < n_cand.fract());
            if n_cand == 0 {
                continue;
            }

            lvx.clear();
            lvx.extend(list.iter().map(|&i| buf.vx[i as usize]));
            lvy.clear();
            lvy.extend(list.iter().map(|&i| buf.vy[i as usize]));
            lvz.clear();
            lvz.extend(list.iter().map(|&i| buf.vz[i as usize]));
            dirty.clear();
            dirty.resize(n, false);

            for _ in 0..n_cand {
                stats.candidates += 1;
                let a = rng.gen_range(0..n);
                let b = loop {
                    let b = rng.gen_range(0..n);
                    if b != a {
                        break b;
                    }
                };
                let gx = lvx[a] - lvx[b];
                let gy = lvy[a] - lvy[b];
                let gz = lvz[a] - lvz[b];
                let g = (gx * gx + gy * gy + gz * gz).sqrt();
                let sigma_g = sp.vhs_cross_section(g) * g;
                if sigma_g > sgm_adapt {
                    sgm_adapt = sigma_g; // adaptive max
                }
                if rng.gen::<f64>() * sgm < sigma_g {
                    stats.collisions += 1;
                    // VHS isotropic scattering, equal masses here but
                    // written for the general two-mass case
                    let m1 = mass;
                    let m2 = mass;
                    let cmx = (lvx[a] * m1 + lvx[b] * m2) / (m1 + m2);
                    let cmy = (lvy[a] * m1 + lvy[b] * m2) / (m1 + m2);
                    let cmz = (lvz[a] * m1 + lvz[b] * m2) / (m1 + m2);
                    let cos_t = 2.0 * rng.gen::<f64>() - 1.0;
                    let sin_t = (1.0 - cos_t * cos_t).sqrt();
                    let phi = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
                    let (dx, dy, dz) = (sin_t * phi.cos(), sin_t * phi.sin(), cos_t);
                    let fa = g * m2 / (m1 + m2);
                    let fb = g * m1 / (m1 + m2);
                    lvx[a] = cmx + dx * fa;
                    lvy[a] = cmy + dy * fa;
                    lvz[a] = cmz + dz * fa;
                    lvx[b] = cmx - dx * fb;
                    lvy[b] = cmy - dy * fb;
                    lvz[b] = cmz - dz * fb;
                    dirty[a] = true;
                    dirty[b] = true;
                    events.push(CollisionEvent {
                        i: list[a],
                        j: list[b],
                        rel_speed: g,
                    });
                }
            }

            // Scatter modified velocities back and commit the ratchet
            // (deferral is value-identical: acceptance compares against
            // the pre-pass `sgm` snapshot, the ratchet only grows).
            for (k, &d) in dirty.iter().enumerate() {
                if d {
                    let i = list[k] as usize;
                    buf.vx[i] = lvx[k];
                    buf.vy[i] = lvy[k];
                    buf.vz[i] = lvz[k];
                }
            }
            if sgm_adapt > sgm {
                self.sigma_g_max[c] = sgm_adapt;
            }
        }
        stats
    }

    /// Pooled NTC pass: cells are striped across workers (cell `c`
    /// goes to lane `c mod workers`, which spreads the spatially
    /// clustered plume cells evenly) and each lane collides its cells
    /// with an RNG stream forked off one draw from `rng`. Lanes write
    /// velocity updates for disjoint particle sets (cell lists
    /// partition the neutrals), applied on the caller thread along
    /// with the adaptive `(σg)_max` updates, so no synchronisation on
    /// the buffer is needed.
    ///
    /// With a serial pool this delegates to [`CollisionModel::collide`]
    /// with the caller's `rng` — bit-identical to the serial kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn collide_pooled<R: Rng>(
        &mut self,
        mesh: &TetMesh,
        buf: &mut ParticleBuffer,
        species: &SpeciesTable,
        neutral_id: u8,
        dt: f64,
        rng: &mut R,
        events: &mut Vec<CollisionEvent>,
        pool: &Pool,
    ) -> CollideStats {
        if pool.is_serial() {
            return self.collide(mesh, buf, species, neutral_id, dt, rng, events);
        }
        let base: u64 = rng.gen();
        let sp = species.get(neutral_id);
        let f_n = sp.weight;
        let mass = sp.mass;

        // Bucket neutral particles by cell (serial: O(n) with no
        // contention worth parallelising), or consume prepared buckets.
        self.bucket(buf, neutral_id);

        let workers = pool.workers();
        let parts: Vec<Vec<usize>> = (0..workers)
            .map(|lane| {
                (lane..self.cell_lists.len())
                    .step_by(workers)
                    .filter(|&c| self.cell_lists[c].len() >= 2)
                    .collect()
            })
            .collect();
        let cell_lists = &self.cell_lists;
        let sigma_g_max = &self.sigma_g_max;
        let (bvx, bvy, bvz) = (&buf.vx, &buf.vy, &buf.vz);

        type LaneOut = (
            CollideStats,
            Vec<CollisionEvent>,
            Vec<(u32, mesh::Vec3)>,
            Vec<(usize, f64)>,
        );
        let results: Vec<LaneOut> = pool.run_parts(parts, |lane, cells| {
            let mut rng = fork_rng(base, lane as u64);
            let mut stats = CollideStats::default();
            let mut ev: Vec<CollisionEvent> = Vec::new();
            let mut vel_updates: Vec<(u32, mesh::Vec3)> = Vec::new();
            let mut sigma_updates: Vec<(usize, f64)> = Vec::new();
            let mut lvx: Vec<f64> = Vec::new();
            let mut lvy: Vec<f64> = Vec::new();
            let mut lvz: Vec<f64> = Vec::new();
            let mut dirty: Vec<bool> = Vec::new();
            for c in cells {
                let list = &cell_lists[c];
                let n = list.len();
                let vc = mesh.volumes[c];
                let sgm = sigma_g_max[c];
                let mut sgm_adapt = sgm;
                let n_cand = 0.5 * n as f64 * (n as f64 - 1.0) * f_n * sgm * dt / vc;
                let n_cand =
                    n_cand.floor() as usize + usize::from(rng.gen::<f64>() < n_cand.fract());
                if n_cand == 0 {
                    continue;
                }
                lvx.clear();
                lvx.extend(list.iter().map(|&i| bvx[i as usize]));
                lvy.clear();
                lvy.extend(list.iter().map(|&i| bvy[i as usize]));
                lvz.clear();
                lvz.extend(list.iter().map(|&i| bvz[i as usize]));
                dirty.clear();
                dirty.resize(n, false);
                for _ in 0..n_cand {
                    stats.candidates += 1;
                    let a = rng.gen_range(0..n);
                    let b = loop {
                        let b = rng.gen_range(0..n);
                        if b != a {
                            break b;
                        }
                    };
                    let gx = lvx[a] - lvx[b];
                    let gy = lvy[a] - lvy[b];
                    let gz = lvz[a] - lvz[b];
                    let g = (gx * gx + gy * gy + gz * gz).sqrt();
                    let sigma_g = sp.vhs_cross_section(g) * g;
                    if sigma_g > sgm_adapt {
                        sgm_adapt = sigma_g; // adaptive max
                    }
                    if rng.gen::<f64>() * sgm < sigma_g {
                        stats.collisions += 1;
                        let m1 = mass;
                        let m2 = mass;
                        let cmx = (lvx[a] * m1 + lvx[b] * m2) / (m1 + m2);
                        let cmy = (lvy[a] * m1 + lvy[b] * m2) / (m1 + m2);
                        let cmz = (lvz[a] * m1 + lvz[b] * m2) / (m1 + m2);
                        let cos_t = 2.0 * rng.gen::<f64>() - 1.0;
                        let sin_t = (1.0 - cos_t * cos_t).sqrt();
                        let phi = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
                        let (dx, dy, dz) = (sin_t * phi.cos(), sin_t * phi.sin(), cos_t);
                        let fa = g * m2 / (m1 + m2);
                        let fb = g * m1 / (m1 + m2);
                        lvx[a] = cmx + dx * fa;
                        lvy[a] = cmy + dy * fa;
                        lvz[a] = cmz + dz * fa;
                        lvx[b] = cmx - dx * fb;
                        lvy[b] = cmy - dy * fb;
                        lvz[b] = cmz - dz * fb;
                        dirty[a] = true;
                        dirty[b] = true;
                        ev.push(CollisionEvent {
                            i: list[a],
                            j: list[b],
                            rel_speed: g,
                        });
                    }
                }
                for (k, &d) in dirty.iter().enumerate() {
                    if d {
                        vel_updates.push((list[k], mesh::Vec3::new(lvx[k], lvy[k], lvz[k])));
                    }
                }
                if sgm_adapt > sgm {
                    sigma_updates.push((c, sgm_adapt));
                }
            }
            (stats, ev, vel_updates, sigma_updates)
        });

        let mut stats = CollideStats::default();
        for (s, ev, vel_updates, sigma_updates) in results {
            stats.candidates += s.candidates;
            stats.collisions += s.collisions;
            events.extend(ev);
            for (i, v) in vel_updates {
                buf.set_vel(i as usize, v);
            }
            for (c, sg) in sigma_updates {
                self.sigma_g_max[c] = sg;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::{NozzleSpec, Vec3};
    use particles::Particle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(weight: f64) -> (TetMesh, SpeciesTable, ParticleBuffer) {
        let m = NozzleSpec {
            nd: 4,
            nz: 4,
            ..NozzleSpec::default()
        }
        .generate();
        let (table, h, _) = SpeciesTable::hydrogen_plasma(weight, weight);
        let mut buf = ParticleBuffer::new();
        let mut rng = StdRng::seed_from_u64(9);
        // fill cell 0 with thermal particles
        for k in 0..200u64 {
            let pos = particles::sample::point_in_tet(
                &mut rng,
                m.tet_pos(0)[0],
                m.tet_pos(0)[1],
                m.tet_pos(0)[2],
                m.tet_pos(0)[3],
            );
            buf.push(Particle {
                pos,
                vel: particles::sample::maxwellian(&mut rng, 300.0, particles::MASS_H, Vec3::ZERO),
                cell: 0,
                species: h,
                id: k,
            });
        }
        (m, table, buf)
    }

    #[test]
    fn momentum_and_energy_conserved() {
        let (m, table, mut buf) = setup(1e12);
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
        let mom_before: Vec3 = buf.iter().fold(Vec3::ZERO, |acc, p| acc + p.vel);
        let en_before: f64 = buf.iter().map(|p| p.vel.norm2()).sum();
        let mut events = Vec::new();
        let stats = model.collide(&m, &mut buf, &table, 0, 1e-5, &mut rng, &mut events);
        assert!(stats.collisions > 0, "no collisions happened: {stats:?}");
        let mom_after: Vec3 = buf.iter().fold(Vec3::ZERO, |acc, p| acc + p.vel);
        let en_after: f64 = buf.iter().map(|p| p.vel.norm2()).sum();
        assert!((mom_before - mom_after).norm() < 1e-6 * mom_before.norm().max(1.0));
        assert!((en_before - en_after).abs() < 1e-9 * en_before);
    }

    #[test]
    fn pooled_conserves_momentum_energy_and_matches_serial_rates() {
        let (m, table, base_buf) = setup(1e12);
        // serial reference collision count
        let serial_collisions = {
            let mut buf = base_buf.clone();
            let mut rng = StdRng::seed_from_u64(21);
            let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
            let mut ev = Vec::new();
            model
                .collide(&m, &mut buf, &table, 0, 1e-5, &mut rng, &mut ev)
                .collisions
        };
        for workers in [2usize, 4] {
            let mut buf = base_buf.clone();
            let mut rng = StdRng::seed_from_u64(21);
            let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
            let mut ev = Vec::new();
            let mom_before: Vec3 = buf.iter().fold(Vec3::ZERO, |acc, p| acc + p.vel);
            let en_before: f64 = buf.iter().map(|p| p.vel.norm2()).sum();
            let stats = model.collide_pooled(
                &m,
                &mut buf,
                &table,
                0,
                1e-5,
                &mut rng,
                &mut ev,
                &kernels::Pool::new(workers),
            );
            assert!(stats.collisions > 0, "workers={workers}: {stats:?}");
            assert_eq!(stats.collisions, ev.len());
            let mom_after: Vec3 = buf.iter().fold(Vec3::ZERO, |acc, p| acc + p.vel);
            let en_after: f64 = buf.iter().map(|p| p.vel.norm2()).sum();
            assert!((mom_before - mom_after).norm() < 1e-6 * mom_before.norm().max(1.0));
            assert!((en_before - en_after).abs() < 1e-9 * en_before);
            // statistically equivalent rate (different stream, same physics)
            let ratio = stats.collisions as f64 / serial_collisions.max(1) as f64;
            assert!(
                (0.3..3.0).contains(&ratio),
                "workers={workers}: pooled {} vs serial {serial_collisions}",
                stats.collisions
            );
        }
    }

    #[test]
    fn pooled_with_serial_pool_is_bit_identical() {
        let (m, table, base_buf) = setup(1e12);
        let run = |pooled: bool| {
            let mut buf = base_buf.clone();
            let mut rng = StdRng::seed_from_u64(5);
            let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
            let mut ev = Vec::new();
            let stats = if pooled {
                model.collide_pooled(
                    &m,
                    &mut buf,
                    &table,
                    0,
                    1e-5,
                    &mut rng,
                    &mut ev,
                    &kernels::Pool::serial(),
                )
            } else {
                model.collide(&m, &mut buf, &table, 0, 1e-5, &mut rng, &mut ev)
            };
            (stats, (buf.vx.clone(), buf.vy.clone(), buf.vz.clone()), ev)
        };
        let (sa, va, ea) = run(false);
        let (sb, vb, eb) = run(true);
        assert_eq!(sa, sb);
        assert_eq!(va, vb);
        assert_eq!(ea, eb);
    }

    #[test]
    fn prebucket_then_extend_is_bit_identical_to_plain_collide() {
        let (m, table, base_buf) = setup(1e12);
        // simulate an overlapped exchange: 150 residents are bucketed
        // early, the last 50 "immigrants" are appended afterwards
        let run = |prebucketed: bool| {
            let mut buf = base_buf.clone();
            let mut rng = StdRng::seed_from_u64(13);
            let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
            let mut ev = Vec::new();
            if prebucketed {
                let mut residents = base_buf.clone();
                residents.truncate(150);
                model.prebucket(&residents, 0);
                model.extend_bucket(&buf, 150, 0);
            }
            let stats = model.collide(&m, &mut buf, &table, 0, 1e-5, &mut rng, &mut ev);
            (stats, (buf.vx.clone(), buf.vy.clone(), buf.vz.clone()), ev)
        };
        let (sa, va, ea) = run(false);
        let (sb, vb, eb) = run(true);
        assert!(sa.collisions > 0);
        assert_eq!(sa, sb);
        assert_eq!(va, vb);
        assert_eq!(ea, eb);
    }

    #[test]
    fn collision_count_scales_with_dt() {
        let (m, table, buf) = setup(1e12);
        let mut total_short = 0usize;
        let mut total_long = 0usize;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = buf.clone();
            let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
            let mut ev = Vec::new();
            total_short += model
                .collide(&m, &mut b, &table, 0, 1e-6, &mut rng, &mut ev)
                .candidates;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = buf.clone();
            let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
            total_long += model
                .collide(&m, &mut b, &table, 0, 4e-6, &mut rng, &mut ev)
                .candidates;
        }
        // 4x dt => ~4x candidates
        let ratio = total_long as f64 / total_short.max(1) as f64;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn no_collisions_with_single_particle_cells() {
        let (m, table, _) = setup(1e12);
        let mut buf = ParticleBuffer::new();
        buf.push(Particle {
            pos: m.centroids[0],
            vel: Vec3::new(100.0, 0.0, 0.0),
            cell: 0,
            species: 0,
            id: 0,
        });
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
        let mut ev = Vec::new();
        let stats = model.collide(&m, &mut buf, &table, 0, 1e-5, &mut rng, &mut ev);
        assert_eq!(stats, CollideStats::default());
        assert!(ev.is_empty());
    }

    #[test]
    fn charged_particles_ignored_by_neutral_collisions() {
        let (m, table, mut buf) = setup(1e12);
        // turn every particle into an ion
        for s in buf.species.iter_mut() {
            *s = 1;
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
        let mut ev = Vec::new();
        let stats = model.collide(&m, &mut buf, &table, 0, 1e-5, &mut rng, &mut ev);
        assert_eq!(stats.candidates, 0);
    }

    #[test]
    fn events_reference_valid_particles() {
        let (m, table, mut buf) = setup(1e12);
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = CollisionModel::new(m.num_cells(), &table, 300.0);
        let mut ev = Vec::new();
        model.collide(&m, &mut buf, &table, 0, 1e-5, &mut rng, &mut ev);
        for e in &ev {
            assert!((e.i as usize) < buf.len());
            assert!((e.j as usize) < buf.len());
            assert_ne!(e.i, e.j);
            assert!(e.rel_speed >= 0.0);
        }
    }
}
