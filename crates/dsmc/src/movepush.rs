//! Ballistic particle movement with exact cell tracking (the paper's
//! *DSMC_Move* component; also reused by *PIC_Move* for the advection
//! half of the charged-particle push).
//!
//! Particles move in straight lines within a timestep, crossing cell
//! faces (possibly many), reflecting diffusely off walls at the wall
//! temperature, and leaving the domain through the outlet (or back
//! through the inlet).

use kernels::{fork_rng, Pool};
use mesh::{first_exit, BoundaryKind, FaceTag, TetMesh, Vec3};
use particles::sample::{flux_normal_speed, maxwellian};
use particles::{ParticleBuffer, SpeciesTable};
use rand::rngs::StdRng;
use rand::Rng;

/// Statistics of one move pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveStats {
    /// Particles that left through the outlet or inlet and were
    /// removed.
    pub exited: usize,
    /// Diffuse wall reflections performed.
    pub wall_hits: usize,
    /// Total cell-boundary crossings.
    pub crossings: usize,
    /// Particles absorbed by the partial pump at a wall hit (not
    /// counted in `exited` or `wall_hits`).
    pub pumped: usize,
}

/// Partial-pump absorption at wall hits (scenario `pump_prob`:
/// `0 = full pump, 1 = no pump`). Each wall hit first decides
/// survival on the dedicated `rng` stream — a survivor reflects
/// diffusely exactly as without pumping, an absorbed particle is
/// removed. Because the decision never touches the mover's main RNG,
/// `prob == 1.0` is bitwise identical to running with no pump at all.
pub struct Pump<'a> {
    /// Survival probability per wall hit, in `[0, 1]`.
    pub prob: f64,
    /// Dedicated decision stream (never the mover's main RNG).
    pub rng: &'a mut StdRng,
}

/// Fraction of the cell size used to nudge particles off faces after
/// a crossing (avoids re-intersecting the same plane).
const NUDGE: f64 = 1e-9;

/// Move every particle in `buf` for `dt`, updating positions and cell
/// ids in place and removing exited particles (order NOT preserved —
/// removal is swap-based).
///
/// `wall_temp` drives diffuse reflection. Deterministic given `rng`.
pub fn move_particles<R: Rng>(
    mesh: &TetMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    dt: f64,
    wall_temp: f64,
    rng: &mut R,
) -> MoveStats {
    move_particles_filtered(mesh, buf, species, dt, wall_temp, rng, |_| true)
}

/// As [`move_particles`], but only particles whose species id
/// satisfies `pred` are moved (PIC timesteps move charged particles
/// only; DSMC timesteps move neutrals — paper §III-B).
pub fn move_particles_filtered<R: Rng, P: Fn(u8) -> bool>(
    mesh: &TetMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    dt: f64,
    wall_temp: f64,
    rng: &mut R,
    pred: P,
) -> MoveStats {
    move_particles_tracked(mesh, buf, species, dt, wall_temp, rng, pred, None, None)
}

/// Sentinel `new_cell` value in a transition record meaning "left the
/// domain".
pub const EXITED: u32 = u32::MAX;

/// Full-featured mover: as [`move_particles_filtered`], additionally
/// appending one `(old_cell, new_cell)` record per moved particle to
/// `transitions` (with `new_cell == EXITED` for particles that left).
/// The cluster driver uses these records to attribute per-rank work
/// and to build the migration byte matrix for the exchange cost
/// model.
#[allow(clippy::too_many_arguments)]
pub fn move_particles_tracked<R: Rng, P: Fn(u8) -> bool>(
    mesh: &TetMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    dt: f64,
    wall_temp: f64,
    rng: &mut R,
    pred: P,
    mut transitions: Option<&mut Vec<(u32, u32)>>,
    mut pump: Option<Pump<'_>>,
) -> MoveStats {
    let mut stats = MoveStats::default();
    let nudge_len = mesh.mean_cell_size() * NUDGE;

    // Lane sweep: precompute the straight-line candidate `p + v*dt`
    // for every particle over the scalar SoA lanes. The expression
    // `px + vx*dt` is exactly what the no-crossing branch of
    // `advance_one` evaluates (`r += v * remaining` with
    // `remaining == dt`), so accepting a candidate is bitwise
    // identical to the scalar path. The candidates live in three
    // plain `Vec<f64>` kept in lockstep with `buf` via `swap_remove`.
    let mut cx: Vec<f64> = buf
        .px
        .iter()
        .zip(&buf.vx)
        .map(|(&p, &v)| p + v * dt)
        .collect();
    let mut cy: Vec<f64> = buf
        .py
        .iter()
        .zip(&buf.vy)
        .map(|(&p, &v)| p + v * dt)
        .collect();
    let mut cz: Vec<f64> = buf
        .pz
        .iter()
        .zip(&buf.vz)
        .map(|(&p, &v)| p + v * dt)
        .collect();

    let mut i = 0usize;
    while i < buf.len() {
        if !pred(buf.species[i]) {
            i += 1;
            continue;
        }
        let old_cell = buf.cell[i];
        let r = buf.pos(i);
        let v = buf.vel(i);
        // One scalar face-crossing test decides fast vs. slow path.
        let outcome = match first_exit(mesh, old_cell as usize, r, v, dt) {
            // Common case: no face crossed within dt — accept the
            // precomputed candidate, velocity and cell unchanged.
            None => Some((Vec3::new(cx[i], cy[i], cz[i]), v, old_cell)),
            Some(fx) => advance_one(
                mesh,
                species,
                buf.species[i],
                dt,
                wall_temp,
                nudge_len,
                rng,
                r,
                v,
                old_cell as usize,
                &mut stats,
                fx,
                pump.as_mut(),
            ),
        };
        match outcome {
            None => {
                // outlet (or inlet, flying backwards): particle left
                buf.swap_remove(i);
                cx.swap_remove(i);
                cy.swap_remove(i);
                cz.swap_remove(i);
                if let Some(tr) = transitions.as_deref_mut() {
                    tr.push((old_cell, EXITED));
                }
            }
            Some((r, v, cell)) => {
                buf.set_pos(i, r);
                buf.set_vel(i, v);
                buf.cell[i] = cell;
                if let Some(tr) = transitions.as_deref_mut() {
                    tr.push((old_cell, cell));
                }
                i += 1;
            }
        }
    }
    stats
}

/// Advance a single particle for `dt`: straight flight with face
/// crossings, diffuse wall reflection, loop capped to guard against
/// degenerate geometry. Returns the final `(pos, vel, cell)` or
/// `None` if the particle left the domain.
///
/// `first` is the caller's already-computed `first_exit` result for
/// the initial `(cell, r, v, dt)` state — the caller tests it to
/// route no-crossing particles down the lane-sweep fast path, so this
/// slow path consumes it instead of re-intersecting.
#[allow(clippy::too_many_arguments)]
#[inline]
fn advance_one<R: Rng>(
    mesh: &TetMesh,
    species: &SpeciesTable,
    sp_id: u8,
    dt: f64,
    wall_temp: f64,
    nudge_len: f64,
    rng: &mut R,
    mut r: Vec3,
    mut v: Vec3,
    mut cell: usize,
    stats: &mut MoveStats,
    first: (f64, usize),
    mut pump: Option<&mut Pump<'_>>,
) -> Option<(Vec3, Vec3, u32)> {
    let mut remaining = dt;
    let mut first = Some(first);
    // A particle can cross many faces per step; cap the loop.
    for _ in 0..10_000 {
        if remaining <= 0.0 {
            break;
        }
        let exit = match first.take() {
            Some(fx) => Some(fx),
            None => first_exit(mesh, cell, r, v, remaining),
        };
        match exit {
            None => {
                r += v * remaining;
                remaining = 0.0;
            }
            Some((tc, face)) => {
                r += v * tc;
                remaining -= tc;
                stats.crossings += 1;
                match mesh.neighbors[cell][face] {
                    FaceTag::Interior(o) => {
                        cell = o as usize;
                        // nudge across the face so the new cell's
                        // containment holds numerically
                        r += v.normalized() * nudge_len;
                    }
                    FaceTag::Boundary(BoundaryKind::Wall) => {
                        // Partial pump: the survival decision draws
                        // from its dedicated stream BEFORE any
                        // reflection sampling, so the main stream is
                        // untouched for absorbed particles and
                        // `prob == 1.0` never diverges from no-pump.
                        if let Some(p) = pump.as_deref_mut() {
                            if p.rng.gen::<f64>() >= p.prob {
                                stats.pumped += 1;
                                return None;
                            }
                        }
                        stats.wall_hits += 1;
                        let (_fc, n) = mesh.face_centroid_normal(cell, face);
                        let inward = -n.normalized();
                        let sp = species.get(sp_id);
                        // diffuse reflection: fresh Maxwellian at
                        // wall temperature, with a flux-weighted
                        // inward normal component
                        let mut vnew = maxwellian(rng, wall_temp, sp.mass, Vec3::ZERO);
                        let vn = vnew.dot(inward);
                        vnew -= inward * vn; // tangential part
                        vnew += inward * flux_normal_speed(rng, wall_temp, sp.mass);
                        v = vnew;
                        r += inward * nudge_len;
                    }
                    FaceTag::Boundary(_) => {
                        stats.exited += 1;
                        return None;
                    }
                }
            }
        }
    }
    Some((r, v, cell as u32))
}

/// Chunked parallel mover. Particles are partitioned into one
/// contiguous chunk per pool worker; each chunk walks its particles
/// with an independent RNG stream forked off one draw from `rng`
/// (wall reflections therefore differ from the serial path, exactly
/// like particles on different MPI ranks use different streams).
/// Exited particles are marked per-chunk and removed in a single
/// order-preserving compaction afterwards.
///
/// With a serial pool this delegates to [`move_particles_tracked`]
/// with the caller's `rng` — bit-identical to the serial kernel.
#[allow(clippy::too_many_arguments)]
pub fn move_particles_pooled<R: Rng, P: Fn(u8) -> bool + Sync>(
    mesh: &TetMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    dt: f64,
    wall_temp: f64,
    rng: &mut R,
    pool: &Pool,
    pred: P,
    mut transitions: Option<&mut Vec<(u32, u32)>>,
    mut pump: Option<Pump<'_>>,
) -> MoveStats {
    if pool.is_serial() || buf.len() < 2 {
        return move_particles_tracked(
            mesh,
            buf,
            species,
            dt,
            wall_temp,
            rng,
            pred,
            transitions,
            pump,
        );
    }
    let base: u64 = rng.gen();
    // The pump decision stream forks per chunk exactly like the main
    // stream, off one draw from its own RNG — never from `rng`.
    let pump_cfg: Option<(f64, u64)> = pump.as_mut().map(|p| (p.prob, p.rng.gen()));
    let nudge_len = mesh.mean_cell_size() * NUDGE;
    let n = buf.len();
    let ranges = kernels::chunk_ranges(n, pool.workers());

    // Carve the six scalar lanes + cell ids into disjoint per-chunk
    // mutable slices: (chunk offset, [px py pz vx vy vz], cells).
    type SoaChunk<'a> = (usize, [&'a mut [f64]; 6], &'a mut [u32]);
    let species_arr: &[u8] = &buf.species;
    let px = kernels::carve_mut(&ranges, &mut buf.px);
    let py = kernels::carve_mut(&ranges, &mut buf.py);
    let pz = kernels::carve_mut(&ranges, &mut buf.pz);
    let vx = kernels::carve_mut(&ranges, &mut buf.vx);
    let vy = kernels::carve_mut(&ranges, &mut buf.vy);
    let vz = kernels::carve_mut(&ranges, &mut buf.vz);
    let cells = kernels::carve_mut(&ranges, &mut buf.cell);
    let mut parts: Vec<SoaChunk<'_>> = Vec::with_capacity(ranges.len());
    let mut off = 0usize;
    let lanes = px
        .into_iter()
        .zip(py)
        .zip(pz)
        .zip(vx)
        .zip(vy)
        .zip(vz)
        .zip(cells);
    for ((((((cpx, cpy), cpz), cvx), cvy), cvz), cc) in lanes {
        let len = cc.len();
        parts.push((off, [cpx, cpy, cpz, cvx, cvy, cvz], cc));
        off += len;
    }

    let pred = &pred;
    let results = pool.run_parts(parts, |ci, (off, [px, py, pz, vx, vy, vz], cell)| {
        let mut rng = fork_rng(base, ci as u64);
        let mut chunk_pump_rng = pump_cfg.map(|(_, pb)| fork_rng(pb, ci as u64));
        let mut chunk_pump = match (&pump_cfg, &mut chunk_pump_rng) {
            (Some((prob, _)), Some(r)) => Some(Pump {
                prob: *prob,
                rng: r,
            }),
            _ => None,
        };
        let mut stats = MoveStats::default();
        let mut exited: Vec<u32> = Vec::new();
        let mut trans: Vec<(u32, u32)> = Vec::new();
        // Per-chunk straight-line candidate sweep (see the serial
        // mover for the bitwise-identity argument).
        let cx: Vec<f64> = px
            .iter()
            .zip(vx.iter())
            .map(|(&p, &v)| p + v * dt)
            .collect();
        let cy: Vec<f64> = py
            .iter()
            .zip(vy.iter())
            .map(|(&p, &v)| p + v * dt)
            .collect();
        let cz: Vec<f64> = pz
            .iter()
            .zip(vz.iter())
            .map(|(&p, &v)| p + v * dt)
            .collect();
        for k in 0..px.len() {
            let gi = off + k;
            if !pred(species_arr[gi]) {
                continue;
            }
            let old_cell = cell[k];
            let r = Vec3::new(px[k], py[k], pz[k]);
            let v = Vec3::new(vx[k], vy[k], vz[k]);
            let outcome = match first_exit(mesh, old_cell as usize, r, v, dt) {
                None => Some((Vec3::new(cx[k], cy[k], cz[k]), v, old_cell)),
                Some(fx) => advance_one(
                    mesh,
                    species,
                    species_arr[gi],
                    dt,
                    wall_temp,
                    nudge_len,
                    &mut rng,
                    r,
                    v,
                    old_cell as usize,
                    &mut stats,
                    fx,
                    chunk_pump.as_mut(),
                ),
            };
            match outcome {
                None => {
                    exited.push(gi as u32);
                    trans.push((old_cell, EXITED));
                }
                Some((r, v, c)) => {
                    px[k] = r.x;
                    py[k] = r.y;
                    pz[k] = r.z;
                    vx[k] = v.x;
                    vy[k] = v.y;
                    vz[k] = v.z;
                    cell[k] = c;
                    trans.push((old_cell, c));
                }
            }
        }
        (stats, exited, trans)
    });

    let mut stats = MoveStats::default();
    let mut keep = vec![true; n];
    let mut any_exit = false;
    for (s, exited, trans) in results {
        stats.exited += s.exited;
        stats.wall_hits += s.wall_hits;
        stats.crossings += s.crossings;
        stats.pumped += s.pumped;
        for gi in exited {
            keep[gi as usize] = false;
            any_exit = true;
        }
        if let Some(tr) = transitions.as_deref_mut() {
            tr.extend(trans);
        }
    }
    if any_exit {
        buf.compact(&keep);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::NozzleSpec;
    use particles::Particle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TetMesh, SpeciesTable) {
        let m = NozzleSpec {
            nd: 6,
            nz: 10,
            ..NozzleSpec::default()
        }
        .generate();
        let (table, _h, _hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        (m, table)
    }

    fn particle_at(m: &TetMesh, cell: usize, vel: Vec3) -> Particle {
        Particle {
            pos: m.centroids[cell],
            vel,
            cell: cell as u32,
            species: 0,
            id: 1,
        }
    }

    #[test]
    fn stationary_particles_stay_put() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = ParticleBuffer::new();
        buf.push(particle_at(&m, 0, Vec3::ZERO));
        let before = buf.get(0);
        let stats = move_particles(&m, &mut buf, &sp, 1e-6, 300.0, &mut rng);
        assert_eq!(stats, MoveStats::default());
        assert_eq!(buf.get(0), before);
    }

    #[test]
    fn slow_particle_moves_within_cell() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = ParticleBuffer::new();
        let cell = m.num_cells() / 2;
        let v = Vec3::new(0.0, 0.0, 1.0); // 1 m/s: moves 1e-9 m in 1 ns
        buf.push(particle_at(&m, cell, v));
        move_particles(&m, &mut buf, &sp, 1e-9, 300.0, &mut rng);
        let p = buf.get(0);
        assert_eq!(p.cell as usize, cell);
        assert!((p.pos.z - (m.centroids[cell].z + 1e-9)).abs() < 1e-15);
        assert!(m.contains(cell, p.pos, 1e-9));
    }

    #[test]
    fn fast_particle_exits_through_outlet() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = ParticleBuffer::new();
        // near-axis cell, huge +z velocity: must fly out the outlet
        let cell = mesh::locate::locate_brute(&m, Vec3::new(0.0012, 0.0012, 0.001)).unwrap();
        buf.push(particle_at(&m, cell, Vec3::new(0.0, 0.0, 1e6)));
        let stats = move_particles(&m, &mut buf, &sp, 1e-3, 300.0, &mut rng);
        assert_eq!(stats.exited, 1);
        assert!(buf.is_empty());
        assert!(stats.crossings > 1);
    }

    #[test]
    fn wall_hit_reflects_and_keeps_particle_inside() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = ParticleBuffer::new();
        // radial velocity towards the cylinder wall from mid-domain
        let cell = mesh::locate::locate_brute(&m, Vec3::new(0.0012, 0.0, 0.01)).unwrap();
        buf.push(particle_at(&m, cell, Vec3::new(5e4, 0.0, 0.0)));
        let stats = move_particles(&m, &mut buf, &sp, 2e-7, 300.0, &mut rng);
        assert!(stats.wall_hits >= 1, "{stats:?}");
        assert_eq!(buf.len(), 1);
        let p = buf.get(0);
        assert!(
            m.contains(p.cell as usize, p.pos, 1e-6),
            "reflected particle must stay in the domain"
        );
        // diffuse reflection thermalizes: speed should be of thermal
        // order, far below the 50 km/s impact speed
        assert!(p.vel.norm() < 2e4, "{}", p.vel.norm());
    }

    #[test]
    fn cell_ids_track_positions() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = ParticleBuffer::new();
        for k in 0..50 {
            let cell = (k * 37) % m.num_cells();
            let v = Vec3::new(
                (k as f64 - 25.0) * 300.0,
                (k as f64 % 7.0 - 3.0) * 500.0,
                8e3,
            );
            buf.push(particle_at(&m, cell, v));
        }
        move_particles(&m, &mut buf, &sp, 2e-7, 300.0, &mut rng);
        for p in buf.iter() {
            assert!(
                m.contains(p.cell as usize, p.pos, 1e-5),
                "cell id out of sync with position"
            );
        }
    }

    #[test]
    fn pooled_matches_serial_without_wall_hits() {
        // interior-only flight draws no random numbers, so the pooled
        // mover must reproduce the serial result bitwise for every
        // worker count
        let (m, sp) = setup();
        let make = || {
            let mut buf = ParticleBuffer::new();
            for k in 0..200 {
                let cell = (k * 13) % m.num_cells();
                let v = Vec3::new(
                    ((k % 11) as f64 - 5.0) * 40.0,
                    ((k % 5) as f64 - 2.0) * 40.0,
                    (k % 7) as f64 * 50.0,
                );
                buf.push(particle_at(&m, cell, v));
            }
            buf
        };
        let mut serial = make();
        let mut rng = StdRng::seed_from_u64(7);
        let s_serial = move_particles(&m, &mut serial, &sp, 2e-8, 300.0, &mut rng);
        assert_eq!(s_serial.wall_hits, 0, "test premise: no RNG used");
        assert_eq!(s_serial.exited, 0);
        for workers in [2usize, 4, 7] {
            let mut par = make();
            let mut rng = StdRng::seed_from_u64(7);
            let s_par = move_particles_pooled(
                &m,
                &mut par,
                &sp,
                2e-8,
                300.0,
                &mut rng,
                &kernels::Pool::new(workers),
                |_| true,
                None,
                None,
            );
            assert_eq!(s_serial, s_par);
            assert_eq!(par.len(), serial.len());
            for i in 0..par.len() {
                assert_eq!(par.get(i), serial.get(i), "workers={workers} i={i}");
            }
        }
    }

    #[test]
    fn pooled_serial_pool_is_bit_identical_path() {
        let (m, sp) = setup();
        let mut a = ParticleBuffer::new();
        let mut b = ParticleBuffer::new();
        for k in 0..60 {
            let cell = (k * 31) % m.num_cells();
            let p = particle_at(&m, cell, Vec3::new(4e4, 1e3, 2e3));
            a.push(p);
            b.push(p);
        }
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let sa = move_particles(&m, &mut a, &sp, 2e-7, 300.0, &mut rng_a);
        let sb = move_particles_pooled(
            &m,
            &mut b,
            &sp,
            2e-7,
            300.0,
            &mut rng_b,
            &kernels::Pool::serial(),
            |_| true,
            None,
            None,
        );
        assert_eq!(sa, sb);
        assert_eq!(
            rng_a, rng_b,
            "serial pool must consume the caller RNG identically"
        );
        for i in 0..a.len() {
            assert_eq!(a.get(i), b.get(i));
        }
    }

    #[test]
    fn pooled_removes_exited_and_keeps_rest_valid() {
        let (m, sp) = setup();
        let mut buf = ParticleBuffer::new();
        let near_outlet = mesh::locate::locate_brute(&m, Vec3::new(0.0012, 0.0012, 0.001)).unwrap();
        for k in 0..120u64 {
            // half fast exiting, half slow staying; ids distinguish
            let (cell, vel) = if k % 2 == 0 {
                (near_outlet, Vec3::new(0.0, 0.0, 1e6))
            } else {
                // stationary: guaranteed survivors
                ((k as usize * 17) % m.num_cells(), Vec3::ZERO)
            };
            let mut p = particle_at(&m, cell, vel);
            p.id = k;
            buf.push(p);
        }
        let mut rng = StdRng::seed_from_u64(13);
        let mut transitions = Vec::new();
        let stats = move_particles_pooled(
            &m,
            &mut buf,
            &sp,
            1e-3,
            300.0,
            &mut rng,
            &kernels::Pool::new(4),
            |_| true,
            Some(&mut transitions),
            None,
        );
        assert_eq!(stats.exited, 60, "{stats:?}");
        assert_eq!(buf.len(), 60);
        assert_eq!(transitions.len(), 120);
        assert_eq!(
            transitions.iter().filter(|&&(_, c)| c == EXITED).count(),
            60
        );
        // survivors are exactly the odd ids, still inside the domain
        let mut ids: Vec<u64> = buf.id.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..120).filter(|k| k % 2 == 1).collect::<Vec<_>>());
        for p in buf.iter() {
            assert!(m.contains(p.cell as usize, p.pos, 1e-5));
        }
    }

    #[test]
    fn full_pump_absorbs_every_wall_hit() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut pump_rng = StdRng::seed_from_u64(99);
        let mut buf = ParticleBuffer::new();
        // radial velocity towards the cylinder wall from mid-domain
        let cell = mesh::locate::locate_brute(&m, Vec3::new(0.0012, 0.0, 0.01)).unwrap();
        buf.push(particle_at(&m, cell, Vec3::new(5e4, 0.0, 0.0)));
        let stats = move_particles_tracked(
            &m,
            &mut buf,
            &sp,
            2e-7,
            300.0,
            &mut rng,
            |_| true,
            None,
            Some(Pump {
                prob: 0.0,
                rng: &mut pump_rng,
            }),
        );
        assert_eq!(stats.pumped, 1, "{stats:?}");
        assert_eq!(stats.wall_hits, 0, "absorbed before reflecting");
        assert!(buf.is_empty(), "pumped particle must be removed");
    }

    #[test]
    fn no_pump_prob_one_is_bitwise_identical_to_disabled() {
        // prob = 1.0 exercises the pump decision path on its own
        // stream but must never touch the main stream: positions,
        // velocities and the caller RNG state match the disabled run
        // bit for bit, serial and pooled.
        let (m, sp) = setup();
        let fill = |buf: &mut ParticleBuffer| {
            for k in 0..80 {
                let cell = (k * 23) % m.num_cells();
                let mut p = particle_at(&m, cell, Vec3::new(4e4, -1e3, 3e3));
                p.id = k as u64;
                buf.push(p);
            }
        };
        let run = |pump_on: bool, pool: &kernels::Pool| {
            let mut buf = ParticleBuffer::new();
            fill(&mut buf);
            let mut rng = StdRng::seed_from_u64(21);
            let mut pump_rng = StdRng::seed_from_u64(77);
            let pump = pump_on.then_some(Pump {
                prob: 1.0,
                rng: &mut pump_rng,
            });
            let stats = move_particles_pooled(
                &m,
                &mut buf,
                &sp,
                2e-7,
                300.0,
                &mut rng,
                pool,
                |_| true,
                None,
                pump,
            );
            (buf, stats, rng)
        };
        for pool in [kernels::Pool::serial(), kernels::Pool::new(3)] {
            let (a, sa, rng_a) = run(false, &pool);
            let (b, sb, rng_b) = run(true, &pool);
            assert!(sa.wall_hits > 0, "test premise: walls were hit");
            assert_eq!(sa, sb);
            assert_eq!(sb.pumped, 0);
            assert_eq!(rng_a, rng_b, "main stream must be untouched");
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(a.get(i), b.get(i));
            }
        }
    }

    #[test]
    fn partial_pump_is_deterministic_and_between_extremes() {
        let (m, sp) = setup();
        let run = |prob: f64, seed: u64| {
            let mut buf = ParticleBuffer::new();
            for k in 0..120 {
                let cell = (k * 23) % m.num_cells();
                let mut p = particle_at(&m, cell, Vec3::new(5e4, 0.0, 0.0));
                p.id = k as u64;
                buf.push(p);
            }
            let mut rng = StdRng::seed_from_u64(31);
            let mut pump_rng = StdRng::seed_from_u64(seed);
            let stats = move_particles_tracked(
                &m,
                &mut buf,
                &sp,
                4e-7,
                300.0,
                &mut rng,
                |_| true,
                None,
                Some(Pump {
                    prob,
                    rng: &mut pump_rng,
                }),
            );
            (buf.len(), stats)
        };
        let (n_half_a, s_half) = run(0.5, 5);
        let (n_half_b, _) = run(0.5, 5);
        assert_eq!(n_half_a, n_half_b, "seeded pump must be deterministic");
        assert!(s_half.pumped > 0, "{s_half:?}");
        let (n_full, s_full) = run(0.0, 5);
        let (n_none, s_none) = run(1.0, 5);
        assert_eq!(s_none.pumped, 0);
        assert!(s_full.pumped >= s_half.pumped);
        assert!(n_full <= n_half_a && n_half_a <= n_none);
    }

    #[test]
    fn energy_preserved_in_pure_interior_flight() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = ParticleBuffer::new();
        let cell = mesh::locate::locate_brute(&m, Vec3::new(0.0, 0.0012, 0.005)).unwrap();
        let v = Vec3::new(0.0, 0.0, 9e3);
        buf.push(particle_at(&m, cell, v));
        let stats = move_particles(&m, &mut buf, &sp, 1e-7, 300.0, &mut rng);
        assert_eq!(stats.wall_hits, 0);
        // velocity unchanged by pure advection
        assert_eq!(buf.get(0).vel, v);
    }
}
