//! Ballistic particle movement with exact cell tracking (the paper's
//! *DSMC_Move* component; also reused by *PIC_Move* for the advection
//! half of the charged-particle push).
//!
//! Particles move in straight lines within a timestep, crossing cell
//! faces (possibly many), reflecting diffusely off walls at the wall
//! temperature, and leaving the domain through the outlet (or back
//! through the inlet).

use mesh::{first_exit, BoundaryKind, FaceTag, TetMesh, Vec3};
use particles::sample::{flux_normal_speed, maxwellian};
use particles::{ParticleBuffer, SpeciesTable};
use rand::Rng;

/// Statistics of one move pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoveStats {
    /// Particles that left through the outlet or inlet and were
    /// removed.
    pub exited: usize,
    /// Diffuse wall reflections performed.
    pub wall_hits: usize,
    /// Total cell-boundary crossings.
    pub crossings: usize,
}

/// Fraction of the cell size used to nudge particles off faces after
/// a crossing (avoids re-intersecting the same plane).
const NUDGE: f64 = 1e-9;

/// Move every particle in `buf` for `dt`, updating positions and cell
/// ids in place and removing exited particles (order NOT preserved —
/// removal is swap-based).
///
/// `wall_temp` drives diffuse reflection. Deterministic given `rng`.
pub fn move_particles<R: Rng>(
    mesh: &TetMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    dt: f64,
    wall_temp: f64,
    rng: &mut R,
) -> MoveStats {
    move_particles_filtered(mesh, buf, species, dt, wall_temp, rng, |_| true)
}

/// As [`move_particles`], but only particles whose species id
/// satisfies `pred` are moved (PIC timesteps move charged particles
/// only; DSMC timesteps move neutrals — paper §III-B).
pub fn move_particles_filtered<R: Rng, P: Fn(u8) -> bool>(
    mesh: &TetMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    dt: f64,
    wall_temp: f64,
    rng: &mut R,
    pred: P,
) -> MoveStats {
    move_particles_tracked(mesh, buf, species, dt, wall_temp, rng, pred, None)
}

/// Sentinel `new_cell` value in a transition record meaning "left the
/// domain".
pub const EXITED: u32 = u32::MAX;

/// Full-featured mover: as [`move_particles_filtered`], additionally
/// appending one `(old_cell, new_cell)` record per moved particle to
/// `transitions` (with `new_cell == EXITED` for particles that left).
/// The cluster driver uses these records to attribute per-rank work
/// and to build the migration byte matrix for the exchange cost
/// model.
#[allow(clippy::too_many_arguments)]
pub fn move_particles_tracked<R: Rng, P: Fn(u8) -> bool>(
    mesh: &TetMesh,
    buf: &mut ParticleBuffer,
    species: &SpeciesTable,
    dt: f64,
    wall_temp: f64,
    rng: &mut R,
    pred: P,
    mut transitions: Option<&mut Vec<(u32, u32)>>,
) -> MoveStats {
    let mut stats = MoveStats::default();
    let nudge_len = mesh.mean_cell_size() * NUDGE;

    let mut i = 0usize;
    'particles: while i < buf.len() {
        if !pred(buf.species[i]) {
            i += 1;
            continue;
        }
        let old_cell = buf.cell[i];
        let mut r = buf.pos[i];
        let mut v = buf.vel[i];
        let mut cell = buf.cell[i] as usize;
        let mut remaining = dt;

        // A particle can cross many faces per step; cap the loop to
        // guard against degenerate geometry.
        for _ in 0..10_000 {
            if remaining <= 0.0 {
                break;
            }
            match first_exit(mesh, cell, r, v, remaining) {
                None => {
                    r += v * remaining;
                    remaining = 0.0;
                }
                Some((tc, face)) => {
                    r += v * tc;
                    remaining -= tc;
                    stats.crossings += 1;
                    match mesh.neighbors[cell][face] {
                        FaceTag::Interior(o) => {
                            cell = o as usize;
                            // nudge across the face so the new cell's
                            // containment holds numerically
                            r += v.normalized() * nudge_len;
                        }
                        FaceTag::Boundary(BoundaryKind::Wall) => {
                            stats.wall_hits += 1;
                            let (_fc, n) = mesh.face_centroid_normal(cell, face);
                            let inward = -n.normalized();
                            let sp = species.get(buf.species[i]);
                            // diffuse reflection: fresh Maxwellian at
                            // wall temperature, with a flux-weighted
                            // inward normal component
                            let mut vnew = maxwellian(rng, wall_temp, sp.mass, Vec3::ZERO);
                            let vn = vnew.dot(inward);
                            vnew -= inward * vn; // tangential part
                            vnew += inward * flux_normal_speed(rng, wall_temp, sp.mass);
                            v = vnew;
                            r += inward * nudge_len;
                        }
                        FaceTag::Boundary(_) => {
                            // outlet (or inlet, flying backwards):
                            // particle leaves the domain
                            stats.exited += 1;
                            buf.swap_remove(i);
                            if let Some(tr) = transitions.as_deref_mut() {
                                tr.push((old_cell, EXITED));
                            }
                            continue 'particles;
                        }
                    }
                }
            }
        }

        buf.pos[i] = r;
        buf.vel[i] = v;
        buf.cell[i] = cell as u32;
        if let Some(tr) = transitions.as_deref_mut() {
            tr.push((old_cell, cell as u32));
        }
        i += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::NozzleSpec;
    use particles::Particle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TetMesh, SpeciesTable) {
        let m = NozzleSpec {
            nd: 6,
            nz: 10,
            ..NozzleSpec::default()
        }
        .generate();
        let (table, _h, _hp) = SpeciesTable::hydrogen_plasma(1.0, 1.0);
        (m, table)
    }

    fn particle_at(m: &TetMesh, cell: usize, vel: Vec3) -> Particle {
        Particle {
            pos: m.centroids[cell],
            vel,
            cell: cell as u32,
            species: 0,
            id: 1,
        }
    }

    #[test]
    fn stationary_particles_stay_put() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = ParticleBuffer::new();
        buf.push(particle_at(&m, 0, Vec3::ZERO));
        let before = buf.get(0);
        let stats = move_particles(&m, &mut buf, &sp, 1e-6, 300.0, &mut rng);
        assert_eq!(stats, MoveStats::default());
        assert_eq!(buf.get(0), before);
    }

    #[test]
    fn slow_particle_moves_within_cell() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = ParticleBuffer::new();
        let cell = m.num_cells() / 2;
        let v = Vec3::new(0.0, 0.0, 1.0); // 1 m/s: moves 1e-9 m in 1 ns
        buf.push(particle_at(&m, cell, v));
        move_particles(&m, &mut buf, &sp, 1e-9, 300.0, &mut rng);
        let p = buf.get(0);
        assert_eq!(p.cell as usize, cell);
        assert!((p.pos.z - (m.centroids[cell].z + 1e-9)).abs() < 1e-15);
        assert!(m.contains(cell, p.pos, 1e-9));
    }

    #[test]
    fn fast_particle_exits_through_outlet() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = ParticleBuffer::new();
        // near-axis cell, huge +z velocity: must fly out the outlet
        let cell = mesh::locate::locate_brute(&m, Vec3::new(0.0012, 0.0012, 0.001)).unwrap();
        buf.push(particle_at(&m, cell, Vec3::new(0.0, 0.0, 1e6)));
        let stats = move_particles(&m, &mut buf, &sp, 1e-3, 300.0, &mut rng);
        assert_eq!(stats.exited, 1);
        assert!(buf.is_empty());
        assert!(stats.crossings > 1);
    }

    #[test]
    fn wall_hit_reflects_and_keeps_particle_inside() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = ParticleBuffer::new();
        // radial velocity towards the cylinder wall from mid-domain
        let cell = mesh::locate::locate_brute(&m, Vec3::new(0.0012, 0.0, 0.01)).unwrap();
        buf.push(particle_at(&m, cell, Vec3::new(5e4, 0.0, 0.0)));
        let stats = move_particles(&m, &mut buf, &sp, 2e-7, 300.0, &mut rng);
        assert!(stats.wall_hits >= 1, "{stats:?}");
        assert_eq!(buf.len(), 1);
        let p = buf.get(0);
        assert!(
            m.contains(p.cell as usize, p.pos, 1e-6),
            "reflected particle must stay in the domain"
        );
        // diffuse reflection thermalizes: speed should be of thermal
        // order, far below the 50 km/s impact speed
        assert!(p.vel.norm() < 2e4, "{}", p.vel.norm());
    }

    #[test]
    fn cell_ids_track_positions() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = ParticleBuffer::new();
        for k in 0..50 {
            let cell = (k * 37) % m.num_cells();
            let v = Vec3::new(
                (k as f64 - 25.0) * 300.0,
                (k as f64 % 7.0 - 3.0) * 500.0,
                8e3,
            );
            buf.push(particle_at(&m, cell, v));
        }
        move_particles(&m, &mut buf, &sp, 2e-7, 300.0, &mut rng);
        for p in buf.iter() {
            assert!(
                m.contains(p.cell as usize, p.pos, 1e-5),
                "cell id out of sync with position"
            );
        }
    }

    #[test]
    fn energy_preserved_in_pure_interior_flight() {
        let (m, sp) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = ParticleBuffer::new();
        let cell = mesh::locate::locate_brute(&m, Vec3::new(0.0, 0.0012, 0.005)).unwrap();
        let v = Vec3::new(0.0, 0.0, 9e3);
        buf.push(particle_at(&m, cell, v));
        let stats = move_particles(&m, &mut buf, &sp, 1e-7, 300.0, &mut rng);
        assert_eq!(stats.wall_hits, 0);
        // velocity unchanged by pure advection
        assert_eq!(buf.get(0).vel, v);
    }
}
