//! Result cache keyed by the canonical config hash
//! ([`coupled::RunConfig::config_hash`]). Sound because the engine is
//! bitwise-deterministic for a fixed configuration — two submissions
//! with equal canonical hashes would produce identical reports, so
//! serving the stored one is indistinguishable from re-running.

use coupled::RunReport;
use std::sync::Arc;

/// LRU cache of completed reports. Stored reports are *unstamped*
/// (`report.job == None`); the server stamps a per-job [`JobMeta`]
/// onto a clone when serving, so cached bytes never leak one job's
/// provenance into another's report.
///
/// [`JobMeta`]: coupled::JobMeta
#[derive(Debug)]
pub struct ResultCache {
    /// Most-recently-used last.
    entries: Vec<(u64, Arc<RunReport>)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a report by canonical config hash, refreshing its LRU
    /// position on a hit.
    pub fn get(&mut self, hash: u64) -> Option<Arc<RunReport>> {
        match self.entries.iter().position(|(h, _)| *h == hash) {
            Some(pos) => {
                let entry = self.entries.remove(pos);
                let report = entry.1.clone();
                self.entries.push(entry);
                self.hits += 1;
                Some(report)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a completed (unstamped) report, evicting the least
    /// recently used entry when full. Re-inserting an existing hash
    /// replaces the stored report.
    pub fn put(&mut self, hash: u64, report: Arc<RunReport>) {
        debug_assert!(report.job.is_none(), "cache stores unstamped reports");
        self.entries.retain(|(h, _)| *h != hash);
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((hash, report));
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(population: usize) -> Arc<RunReport> {
        Arc::new(RunReport {
            population,
            ..RunReport::default()
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.put(1, report(1));
        c.put(2, report(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.get(1).unwrap().population, 1);
        c.put(3, report(3));
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1).unwrap().population, 1);
        assert_eq!(c.get(3).unwrap().population, 3);
        assert_eq!(c.len(), 2);
        let (hits, misses) = c.stats();
        assert_eq!((hits, misses), (3, 1));
    }

    #[test]
    fn reinsert_replaces_without_growing() {
        let mut c = ResultCache::new(2);
        c.put(1, report(1));
        c.put(1, report(10));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).unwrap().population, 10);
    }
}
