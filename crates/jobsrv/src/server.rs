//! The job server: worker threads draining a [`FairQueue`] of
//! [`JobSpec`] submissions under a shared kernel-pool thread budget,
//! with result caching by canonical config hash, in-flight
//! coalescing of identical submissions, live trace fan-out to
//! subscribers, and checkpoint-replay recovery when a worker dies
//! mid-job (DESIGN.md §16).

use crate::cache::ResultCache;
use crate::queue::FairQueue;
use coupled::job::{JobId, JobMeta, JobSpec, JobStatus};
use coupled::{EngineSession, RunReport};
use obs::{FanoutSink, Registry, TraceEvent, TraceSpec};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tuning knobs. The defaults suit tests and demos; scale
/// `workers`/`thread_budget` to the machine for real service.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the queue — the maximum number of
    /// simulations in flight at once.
    pub workers: usize,
    /// Shared kernel-pool budget in threads. A job costs
    /// `ranks * threads_per_rank` (clamped to the budget), and jobs
    /// only start while the sum of running costs fits.
    pub thread_budget: usize,
    /// Completed reports kept for cache service (LRU).
    pub cache_capacity: usize,
    /// Engine attempts per job before it is failed: 1 clean try plus
    /// checkpoint replays after worker deaths.
    pub max_attempts: usize,
    /// Queue pass-overs before an entry jumps the schedule (see
    /// [`FairQueue`]).
    pub starvation_limit: usize,
    /// Server-side metrics registry. Jobs that bring no registry of
    /// their own get this one scoped to `"job-<id>."`, so one
    /// snapshot shows every job's engine counters side by side.
    pub metrics: Option<Registry>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            thread_budget: 8,
            cache_capacity: 32,
            max_attempts: 3,
            starvation_limit: 4,
            metrics: None,
        }
    }
}

impl ServerConfig {
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    pub fn thread_budget(mut self, n: usize) -> Self {
        self.thread_budget = n.max(1);
        self
    }

    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    pub fn max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    pub fn starvation_limit(mut self, n: usize) -> Self {
        self.starvation_limit = n;
        self
    }

    pub fn metrics(mut self, registry: Registry) -> Self {
        self.metrics = Some(registry);
        self
    }
}

/// Why [`JobHandle::wait`] returned without a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError(pub String);

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JobError {}

/// Counters of everything the server did so far (monotonic except
/// `queued`/`running`, which are gauges of the current state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    pub submitted: u64,
    /// Jobs that reached `Done` (leaders, followers and cache hits).
    pub completed: u64,
    pub failed: u64,
    /// Submissions served straight from the result cache.
    pub cache_hits: u64,
    /// Submissions coalesced onto an identical in-flight run.
    pub coalesced: u64,
    /// Engine attempts dispatched to workers (replays included).
    pub attempts: u64,
    pub queued: usize,
    pub running: usize,
}

/// One tracked job.
struct Job {
    spec: JobSpec,
    status: JobStatus,
    /// Live trace fan-out: every engine attempt emits through this,
    /// so subscribers follow the job across checkpoint replays.
    fanout: FanoutSink,
    hash: u64,
    /// The engine lifecycle, detached from any worker: stashed here
    /// between attempts so checkpoints and one-shot fault state
    /// survive the death of the thread that ran them.
    session: Option<EngineSession>,
    attempts: usize,
    submitted: Instant,
    first_started: Option<Instant>,
    run_seconds: f64,
    result: Option<Arc<RunReport>>,
    error: Option<String>,
    /// Identical submissions coalesced behind this leader.
    followers: Vec<JobId>,
}

struct State {
    jobs: HashMap<u64, Job>,
    queue: FairQueue,
    cache: ResultCache,
    /// Canonical hash → leader job currently queued or running.
    in_flight: HashMap<u64, JobId>,
    budget_in_use: usize,
    next_id: u64,
    shutdown: bool,
    stats: ServerStats,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    thread_budget: usize,
    max_attempts: usize,
    metrics: Option<Registry>,
}

/// A clone of the stored report stamped with one job's provenance.
fn stamp(report: &Arc<RunReport>, meta: JobMeta) -> Arc<RunReport> {
    let mut r = (**report).clone();
    r.job = Some(meta);
    Arc::new(r)
}

/// Client-side handle to one submitted job: poll its status, stream
/// its trace, or block for the report. Handles are cheap clones; the
/// job keeps running if every handle is dropped.
#[derive(Clone)]
pub struct JobHandle {
    id: JobId,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).finish()
    }
}

impl JobHandle {
    pub fn id(&self) -> JobId {
        self.id
    }

    pub fn status(&self) -> JobStatus {
        let st = self.shared.state.lock().unwrap();
        st.jobs[&self.id.0].status.clone()
    }

    /// Subscribe to the job's live trace stream ([`TraceEvent`]s from
    /// every engine attempt; a `Meta` event marks each (re)start).
    /// The channel closes when the job reaches a terminal state.
    pub fn subscribe(&self) -> mpsc::Receiver<TraceEvent> {
        let st = self.shared.state.lock().unwrap();
        st.jobs[&self.id.0].fanout.subscribe()
    }

    /// The stamped report if the job already finished: `Some(Ok)` when
    /// done, `Some(Err)` when failed, `None` while queued or running.
    pub fn try_result(&self) -> Option<Result<Arc<RunReport>, JobError>> {
        let st = self.shared.state.lock().unwrap();
        let job = &st.jobs[&self.id.0];
        match &job.status {
            JobStatus::Done { .. } => Some(Ok(job.result.clone().expect("done job has report"))),
            JobStatus::Failed { error } => Some(Err(JobError(error.clone()))),
            _ => None,
        }
    }

    /// Block until the job reaches a terminal state and return its
    /// stamped report (or failure).
    pub fn wait(&self) -> Result<Arc<RunReport>, JobError> {
        let mut st = self.shared.state.lock().unwrap();
        loop {
            let job = &st.jobs[&self.id.0];
            match &job.status {
                JobStatus::Done { .. } => {
                    return Ok(job.result.clone().expect("done job has report"))
                }
                JobStatus::Failed { error } => return Err(JobError(error.clone())),
                _ => st = self.shared.cv.wait(st).unwrap(),
            }
        }
    }
}

/// The simulation-as-a-service front end. See the module docs; build
/// with [`JobServer::start`], feed with [`JobServer::submit`].
pub struct JobServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for JobServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobServer")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl JobServer {
    /// Start `cfg.workers` worker threads over an empty queue.
    pub fn start(cfg: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: HashMap::new(),
                queue: FairQueue::new(cfg.starvation_limit),
                cache: ResultCache::new(cfg.cache_capacity),
                in_flight: HashMap::new(),
                budget_in_use: 0,
                next_id: 0,
                shutdown: false,
                stats: ServerStats::default(),
            }),
            cv: Condvar::new(),
            thread_budget: cfg.thread_budget.max(1),
            max_attempts: cfg.max_attempts.max(1),
            metrics: cfg.metrics,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        JobServer { shared, workers }
    }

    /// Submit a job. Returns immediately with a handle; the report is
    /// served from the cache (`Done{cache_hit: true}` at once),
    /// coalesced onto an identical in-flight run, or queued for a
    /// worker, in that order of preference.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        let hash = spec.run.config_hash();
        let cost = (spec.run.ranks * spec.run.threads_per_rank).clamp(1, self.shared.thread_budget);
        let mut st = self.shared.state.lock().unwrap();
        let id = JobId(st.next_id);
        st.next_id += 1;
        st.stats.submitted += 1;
        let mut job = Job {
            spec,
            status: JobStatus::Queued,
            fanout: FanoutSink::new(),
            hash,
            session: None,
            attempts: 0,
            submitted: Instant::now(),
            first_started: None,
            run_seconds: 0.0,
            result: None,
            error: None,
            followers: Vec::new(),
        };
        if st.shutdown {
            job.status = JobStatus::Failed {
                error: "server shut down".to_string(),
            };
            job.fanout.close();
            st.stats.failed += 1;
        } else if let Some(cached) = st.cache.get(hash) {
            st.stats.cache_hits += 1;
            st.stats.completed += 1;
            job.result = Some(stamp(
                &cached,
                JobMeta {
                    job_id: id.0,
                    config_hash: hash,
                    cache_hit: true,
                    queue_seconds: 0.0,
                    run_seconds: 0.0,
                    attempts: 0,
                },
            ));
            job.status = JobStatus::Done { cache_hit: true };
            job.fanout.close();
        } else if let Some(&leader) = st.in_flight.get(&hash) {
            st.stats.coalesced += 1;
            st.jobs
                .get_mut(&leader.0)
                .expect("in-flight leader is tracked")
                .followers
                .push(id);
        } else {
            st.in_flight.insert(hash, id);
            st.queue.push(id, &job.spec.tenant, job.spec.priority, cost);
        }
        st.jobs.insert(id.0, job);
        drop(st);
        self.shared.cv.notify_all();
        JobHandle {
            id,
            shared: self.shared.clone(),
        }
    }

    /// Handle to an earlier submission (any clone works the same).
    pub fn handle(&self, id: JobId) -> Option<JobHandle> {
        let st = self.shared.state.lock().unwrap();
        st.jobs.contains_key(&id.0).then(|| JobHandle {
            id,
            shared: self.shared.clone(),
        })
    }

    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.shared.state.lock().unwrap();
        st.jobs.get(&id.0).map(|j| j.status.clone())
    }

    /// Current counters (queue depth and running cost are snapshots).
    pub fn stats(&self) -> ServerStats {
        let st = self.shared.state.lock().unwrap();
        let mut s = st.stats;
        s.queued = st.queue.len();
        s.running = st.budget_in_use;
        s
    }

    /// Result-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shared.state.lock().unwrap().cache.stats()
    }

    /// Stop accepting work, fail everything still queued, finish the
    /// attempts currently running, and join the workers. Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            // Fail queued leaders (and their followers) so waiters wake.
            while let Some(entry) = st.queue.pop(usize::MAX) {
                fail_job(&mut st, entry.id, "server shut down".to_string());
            }
        }
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Mark `id` failed with `error`, cascade to its followers, release
/// its in-flight slot and close its trace stream.
fn fail_job(st: &mut State, id: JobId, error: String) {
    let followers = {
        let job = st.jobs.get_mut(&id.0).expect("failing a tracked job");
        job.status = JobStatus::Failed {
            error: error.clone(),
        };
        job.error = Some(error.clone());
        job.fanout.close();
        std::mem::take(&mut job.followers)
    };
    st.stats.failed += 1;
    st.in_flight.remove(&st.jobs[&id.0].hash);
    for f in followers {
        let job = st.jobs.get_mut(&f.0).expect("follower is tracked");
        job.status = JobStatus::Failed {
            error: format!("coalesced leader {id} failed: {error}"),
        };
        job.fanout.close();
        st.stats.failed += 1;
    }
}

/// One worker: claim the next job that fits the spare budget, run one
/// engine attempt outside the lock, then complete / requeue / fail.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Claim work and assemble the session under the lock.
        let (id, session, cost) = {
            let mut st = shared.state.lock().unwrap();
            let entry = loop {
                if st.shutdown {
                    return;
                }
                let spare = shared.thread_budget.saturating_sub(st.budget_in_use);
                if let Some(e) = st.queue.pop(spare) {
                    break e;
                }
                st = shared.cv.wait(st).unwrap();
            };
            let id = entry.id;
            st.budget_in_use += entry.cost;
            st.stats.attempts += 1;
            let job = st.jobs.get_mut(&id.0).expect("queued job is tracked");
            job.status = JobStatus::Running;
            job.attempts += 1;
            job.first_started.get_or_insert_with(Instant::now);
            let session = job.session.take().map(Ok).unwrap_or_else(|| {
                // First attempt: rebuild the run config for execution —
                // the engine traces into the job's fan-out (teeing the
                // submitter's own sink) and, when the submitter brought
                // no registry, meters into the server registry scoped
                // by job id.
                let mut run = job.spec.run.clone();
                let user_trace = std::mem::replace(&mut run.obs.trace, TraceSpec::Off);
                if !user_trace.is_off() {
                    match user_trace.make_sink() {
                        Ok(sink) => job.fanout.tee_into(sink),
                        Err(e) => return Err(format!("trace sink creation failed: {e}")),
                    }
                }
                run.obs.trace = TraceSpec::Fanout(job.fanout.clone());
                if run.obs.metrics.is_none() {
                    if let Some(reg) = &shared.metrics {
                        run.obs.metrics = Some(reg.scoped(&id.to_string()));
                    }
                }
                Ok(EngineSession::new(&run))
            });
            (id, session, entry.cost)
        };
        let mut session = match session {
            Ok(s) => s,
            Err(error) => {
                let mut guard = shared.state.lock().unwrap();
                guard.budget_in_use -= cost;
                fail_job(&mut guard, id, error);
                drop(guard);
                shared.cv.notify_all();
                continue;
            }
        };

        // Run the attempt with the lock released so other workers keep
        // scheduling. A panic here is this worker dying mid-job: the
        // session (with its checkpoints) is still ours to stash.
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| session.attempt()));
        let elapsed = t0.elapsed().as_secs_f64();

        let mut guard = shared.state.lock().unwrap();
        let st = &mut *guard;
        st.budget_in_use -= cost;
        let job = st.jobs.get_mut(&id.0).expect("running job is tracked");
        job.run_seconds += elapsed;
        match outcome {
            Ok(Ok(report)) => {
                let queue_seconds = job
                    .first_started
                    .map(|t| t.duration_since(job.submitted).as_secs_f64())
                    .unwrap_or(0.0);
                let run_seconds = job.run_seconds;
                let attempts = job.attempts;
                let followers = std::mem::take(&mut job.followers);
                let hash = job.hash;
                // The cache stores the unstamped report; every served
                // copy is a stamped clone of it.
                let cached = Arc::new(report);
                st.cache.put(hash, cached.clone());
                let job = st.jobs.get_mut(&id.0).expect("running job is tracked");
                job.result = Some(stamp(
                    &cached,
                    JobMeta {
                        job_id: id.0,
                        config_hash: hash,
                        cache_hit: false,
                        queue_seconds,
                        run_seconds,
                        attempts,
                    },
                ));
                job.status = JobStatus::Done { cache_hit: false };
                job.fanout.close();
                st.stats.completed += 1;
                st.in_flight.remove(&hash);
                for f in followers {
                    let now = Instant::now();
                    let fjob = st.jobs.get_mut(&f.0).expect("follower is tracked");
                    fjob.result = Some(stamp(
                        &cached,
                        JobMeta {
                            job_id: f.0,
                            config_hash: hash,
                            cache_hit: true,
                            queue_seconds: now.duration_since(fjob.submitted).as_secs_f64(),
                            run_seconds: 0.0,
                            attempts: 0,
                        },
                    ));
                    fjob.status = JobStatus::Done { cache_hit: true };
                    fjob.fanout.close();
                    st.stats.completed += 1;
                }
            }
            Ok(Err(e)) => {
                let retry = session.can_retry_after(&e)
                    && job.attempts < shared.max_attempts
                    && !st.shutdown;
                if retry {
                    session.prepare_retry();
                    job.session = Some(session);
                    job.status = JobStatus::Queued;
                    let (tenant, priority) = (job.spec.tenant.clone(), job.spec.priority);
                    st.queue.push(id, &tenant, priority, cost);
                } else {
                    fail_job(st, id, format!("engine attempt failed: {e}"));
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_string());
                fail_job(st, id, format!("worker died: {msg}"));
            }
        }
        drop(guard);
        shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coupled::prelude::*;

    fn tiny(seed: u64) -> RunConfig {
        RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(2)
            .seed(seed)
            .steps(2)
            .rebalance(None)
            .build()
            .unwrap()
    }

    #[test]
    fn second_identical_submission_is_served_without_a_second_run() {
        let srv = JobServer::start(ServerConfig::default().workers(1));
        let a = srv.submit(JobSpec::new(tiny(1)));
        let ra = a.wait().unwrap();
        // Now cached: the duplicate is Done before any worker touches it.
        let b = srv.submit(JobSpec::new(tiny(1)));
        assert_eq!(b.status(), JobStatus::Done { cache_hit: true });
        let rb = b.wait().unwrap();
        assert_eq!(ra.density_h, rb.density_h);
        assert_eq!(ra.population, rb.population);
        let (ma, mb) = (ra.job.as_ref().unwrap(), rb.job.as_ref().unwrap());
        assert!(!ma.cache_hit);
        assert!(mb.cache_hit);
        assert_eq!(ma.config_hash, mb.config_hash);
        assert_ne!(ma.job_id, mb.job_id);
        let stats = srv.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn different_configs_do_not_share_cache_entries() {
        let srv = JobServer::start(ServerConfig::default());
        let a = srv.submit(JobSpec::new(tiny(1))).wait().unwrap();
        let b = srv.submit(JobSpec::new(tiny(2))).wait().unwrap();
        assert_ne!(
            a.job.as_ref().unwrap().config_hash,
            b.job.as_ref().unwrap().config_hash
        );
        assert_ne!(a.density_h, b.density_h);
    }

    #[test]
    fn subscriber_streams_the_trace_to_completion() {
        // One worker: while it is busy with the first job, the second
        // is still queued, so subscribing to it before it starts is
        // race-free and the stream carries its complete trace.
        let srv = JobServer::start(ServerConfig::default().workers(1));
        let _first = srv.submit(JobSpec::new(tiny(3)));
        let h = srv.submit(JobSpec::new(tiny(30)));
        let rx = h.subscribe();
        let report = h.wait().unwrap();
        let events: Vec<TraceEvent> = rx.iter().collect(); // ends at close()
        let steps = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Step { .. }))
            .count();
        assert_eq!(steps, report.trace.len());
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Meta { .. })));
    }

    #[test]
    fn shutdown_fails_pending_jobs_instead_of_hanging_waiters() {
        let mut srv = JobServer::start(ServerConfig::default().workers(1));
        srv.shutdown(); // workers exit before any submission
        let h = srv.submit(JobSpec::new(tiny(4)));
        assert!(matches!(h.status(), JobStatus::Failed { .. }));
        assert!(h.wait().is_err());
        srv.shutdown(); // idempotent
        assert_eq!(srv.stats().failed, 1);
    }
}
