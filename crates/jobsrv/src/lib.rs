//! Simulation-as-a-service job server over the coupled DSMC/PIC
//! engine (DESIGN.md §16).
//!
//! Submit a [`coupled::RunConfig`] wrapped in a [`JobSpec`], get a
//! [`JobHandle`] back; the server queues it with tenant fair share and
//! priority aging, runs it on a worker under a shared kernel-pool
//! thread budget, streams its step trace to any number of
//! subscribers, and serves repeated submissions of the same canonical
//! configuration from a result cache — sound because the engine is
//! bitwise-deterministic per config (the cached report is
//! indistinguishable from a re-run). If a worker dies mid-job, the
//! job's [`coupled::EngineSession`] — which outlives any worker —
//! replays from the engine's periodic checkpoints on the next
//! dispatch.
//!
//! ```
//! use jobsrv::prelude::*;
//!
//! let srv = JobServer::start(ServerConfig::default());
//! let run = RunConfig::builder()
//!     .paper(Dataset::D1, 0.02)
//!     .ranks(2)
//!     .steps(2)
//!     .build()
//!     .unwrap();
//! let job = srv.submit(JobSpec::new(run).tenant("docs").label("quick start"));
//! let report = job.wait().unwrap();
//! assert_eq!(report.trace.len(), 2);
//! assert!(report.job.as_ref().is_some_and(|m| !m.cache_hit));
//! ```

pub mod cache;
pub mod queue;
pub mod server;

pub use cache::ResultCache;
pub use queue::{FairQueue, QueueEntry};
pub use server::{JobError, JobHandle, JobServer, ServerConfig, ServerStats};

// The job vocabulary is `coupled`'s (shared with report consumers);
// re-export it so `jobsrv` alone is a complete client surface.
pub use coupled::job::{JobId, JobMeta, JobPriority, JobSpec, JobStatus};

/// One-stop imports for job-server clients: everything from
/// [`coupled::prelude`] plus the server types.
pub mod prelude {
    pub use crate::{JobError, JobHandle, JobServer, ServerConfig, ServerStats};
    pub use coupled::prelude::*;
}
