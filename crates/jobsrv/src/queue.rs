//! Fair-share job queue: round-robin across tenants, priority with
//! anti-starvation aging within a tenant, and budget-aware popping so
//! wide jobs wait for kernel-pool capacity without blocking narrow
//! ones (DESIGN.md §16).

use coupled::job::{JobId, JobPriority};

/// One queued entry. `cost` is the job's kernel-pool demand in
/// threads (ranks × threads_per_rank, clamped to the pool size by the
/// server), so `pop` can skip entries the remaining budget can't run.
#[derive(Debug, Clone)]
pub struct QueueEntry {
    pub id: JobId,
    pub tenant: String,
    pub priority: JobPriority,
    pub cost: usize,
    /// Submission sequence number — the global FIFO tiebreak.
    pub seq: u64,
    /// Times this entry was eligible but passed over by `pop`. Once
    /// it reaches the starvation limit the entry jumps the entire
    /// schedule, bounding how long priority and round-robin skew can
    /// delay any single job.
    pub passed: usize,
}

/// Tenant-fair, priority-aware, budget-aware queue.
///
/// `pop(budget)` picks among entries with `cost <= budget`:
///
/// 1. Any entry passed over `starvation_limit`+ times runs first
///    (oldest such entry), regardless of tenant or priority.
/// 2. Otherwise tenants take turns in round-robin order (a cursor
///    advances past each served tenant), so a tenant submitting 10×
///    faster than another still gets at most alternate turns while
///    both have eligible work.
/// 3. Within the chosen tenant: highest [`JobPriority`], then lowest
///    sequence number (FIFO).
///
/// Every eligible entry that was *not* chosen gets its `passed`
/// counter bumped, which feeds rule 1.
#[derive(Debug)]
pub struct FairQueue {
    entries: Vec<QueueEntry>,
    /// Tenant round-robin ring, in first-appearance order. Tenants
    /// stay in the ring while queued entries remain.
    ring: Vec<String>,
    cursor: usize,
    starvation_limit: usize,
    next_seq: u64,
}

impl FairQueue {
    /// An empty queue whose anti-starvation rule fires after an entry
    /// has been passed over `starvation_limit` times.
    pub fn new(starvation_limit: usize) -> Self {
        FairQueue {
            entries: Vec::new(),
            ring: Vec::new(),
            cursor: 0,
            starvation_limit: starvation_limit.max(1),
            next_seq: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Enqueue a job; returns the sequence number assigned.
    pub fn push(&mut self, id: JobId, tenant: &str, priority: JobPriority, cost: usize) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if !self.ring.iter().any(|t| t == tenant) {
            self.ring.push(tenant.to_string());
        }
        self.entries.push(QueueEntry {
            id,
            tenant: tenant.to_string(),
            priority,
            cost,
            seq,
            passed: 0,
        });
        seq
    }

    /// Remove a queued entry by id (e.g. a follower whose leader
    /// failed). Returns true when something was removed.
    pub fn remove(&mut self, id: JobId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        self.entries.len() != before
    }

    /// Pick the next job runnable within `budget` spare threads, per
    /// the policy above. Returns `None` when nothing eligible fits.
    pub fn pop(&mut self, budget: usize) -> Option<QueueEntry> {
        let eligible: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.cost <= budget)
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }

        // Rule 1: starved entries jump the schedule, oldest first.
        let starved = eligible
            .iter()
            .copied()
            .filter(|&i| self.entries[i].passed >= self.starvation_limit)
            .min_by_key(|&i| self.entries[i].seq);

        let chosen = starved.unwrap_or_else(|| {
            // Rule 2: next tenant in the ring (from the cursor) that
            // has an eligible entry.
            let tenant = (0..self.ring.len())
                .map(|off| &self.ring[(self.cursor + off) % self.ring.len()])
                .find(|t| eligible.iter().any(|&i| &&self.entries[i].tenant == t))
                .cloned()
                .expect("eligible entry implies its tenant is in the ring");
            // Rule 3: within the tenant, max priority then FIFO.
            eligible
                .iter()
                .copied()
                .filter(|&i| self.entries[i].tenant == tenant)
                .max_by_key(|&i| (self.entries[i].priority.rank(), !self.entries[i].seq))
                .expect("tenant chosen from eligible set")
        });

        // Aging: every eligible entry not chosen was passed over.
        for &i in &eligible {
            if i != chosen {
                self.entries[i].passed += 1;
            }
        }

        let entry = self.entries.swap_remove(chosen);
        // Advance the cursor past the served tenant so the next pop
        // starts at the following ring position.
        if let Some(pos) = self.ring.iter().position(|t| *t == entry.tenant) {
            self.cursor = (pos + 1) % self.ring.len();
        }
        // Drop ring slots for tenants with no remaining work, keeping
        // cursor order for the survivors.
        let cursor_tenant = self.ring.get(self.cursor).cloned();
        self.ring
            .retain(|t| self.entries.iter().any(|e| &e.tenant == t));
        self.cursor = cursor_tenant
            .and_then(|t| self.ring.iter().position(|r| *r == t))
            .unwrap_or(0);
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(limit: usize) -> FairQueue {
        FairQueue::new(limit)
    }

    fn id(n: u64) -> JobId {
        JobId(n)
    }

    #[test]
    fn round_robin_bounds_skewed_tenants() {
        // Tenant a submits 10 jobs, tenant b only 2 — the classic
        // noisy-neighbour skew. Fair share must interleave b's jobs
        // near the front instead of draining a first.
        let mut fq = q(4);
        for n in 0..10 {
            fq.push(id(n), "a", JobPriority::Normal, 1);
        }
        fq.push(id(100), "b", JobPriority::Normal, 1);
        fq.push(id(101), "b", JobPriority::Normal, 1);
        let order: Vec<u64> = std::iter::from_fn(|| fq.pop(8)).map(|e| e.id.0).collect();
        assert_eq!(order.len(), 12);
        let pos_b0 = order.iter().position(|&j| j == 100).unwrap();
        let pos_b1 = order.iter().position(|&j| j == 101).unwrap();
        // While both tenants have work the schedule alternates, so b's
        // two jobs land within the first four slots — bounded by the
        // number of tenants, not by a's queue depth.
        assert!(pos_b0 < 4, "b's first job popped at {pos_b0}: {order:?}");
        assert!(pos_b1 < 4, "b's second job popped at {pos_b1}: {order:?}");
        // And a's jobs stay FIFO among themselves.
        let a_order: Vec<u64> = order.iter().copied().filter(|&j| j < 10).collect();
        let mut sorted = a_order.clone();
        sorted.sort_unstable();
        assert_eq!(a_order, sorted);
    }

    #[test]
    fn priority_wins_within_tenant_but_not_across() {
        let mut fq = q(8);
        fq.push(id(1), "a", JobPriority::Low, 1);
        fq.push(id(2), "a", JobPriority::High, 1);
        fq.push(id(3), "b", JobPriority::Low, 1);
        // Tenant a is first in the ring; its High job runs before its
        // Low one. Tenant b's Low job still gets the second turn —
        // a's High priority does not leak across tenants.
        assert_eq!(fq.pop(8).unwrap().id, id(2));
        assert_eq!(fq.pop(8).unwrap().id, id(3));
        assert_eq!(fq.pop(8).unwrap().id, id(1));
    }

    #[test]
    fn starved_low_priority_job_is_promoted() {
        // One tenant keeps submitting High jobs; its own early Low job
        // must still run after at most `limit` pass-overs.
        let limit = 3;
        let mut fq = q(limit);
        fq.push(id(0), "a", JobPriority::Low, 1);
        for n in 1..=10 {
            fq.push(id(n), "a", JobPriority::High, 1);
        }
        let mut popped = Vec::new();
        for _ in 0..=limit {
            popped.push(fq.pop(8).unwrap().id.0);
        }
        // Pops 1..limit are High jobs; pop limit+1 is the aged Low job.
        assert!(popped[..limit].iter().all(|&j| j != 0), "{popped:?}");
        assert_eq!(popped[limit], 0, "{popped:?}");
    }

    #[test]
    fn budget_filters_wide_jobs_without_blocking_narrow() {
        let mut fq = q(4);
        fq.push(id(1), "a", JobPriority::Normal, 6); // wide
        fq.push(id(2), "a", JobPriority::Normal, 2); // narrow
                                                     // Only 3 threads free: the wide head-of-line job must not
                                                     // block the narrow one.
        assert_eq!(fq.pop(3).unwrap().id, id(2));
        // Nothing fits in 3 now; the wide job waits...
        assert!(fq.pop(3).is_none());
        assert_eq!(fq.len(), 1);
        // ...and runs when capacity frees up.
        assert_eq!(fq.pop(6).unwrap().id, id(1));
        assert!(fq.is_empty());
    }

    #[test]
    fn remove_drops_entry_and_empty_tenants_leave_ring() {
        let mut fq = q(4);
        fq.push(id(1), "a", JobPriority::Normal, 1);
        fq.push(id(2), "b", JobPriority::Normal, 1);
        assert!(fq.remove(id(1)));
        assert!(!fq.remove(id(1)));
        assert_eq!(fq.pop(8).unwrap().id, id(2));
        assert!(fq.pop(8).is_none());
    }
}
