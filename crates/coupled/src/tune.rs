//! Auto-tuning of the load-balancer parameters (paper §V-A: "T and
//! Threshold can be selected according to specific simulation setups
//! ... using an auto-tuning technique").
//!
//! The tuner runs short pilot simulations of the modelled cluster for
//! every point of a small (T, Threshold) grid and picks the fastest —
//! the same "sampling script on a different dataset" methodology the
//! paper describes for choosing its defaults (T = 20, Threshold =
//! 2.0).

use crate::cluster::ClusterSim;
use crate::config::RunConfig;
use crate::machine::MachineProfile;
use balance::RebalanceConfig;
use vmpi::Strategy;

/// One evaluated tuning point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunePoint {
    pub t_interval: usize,
    pub threshold: f64,
    /// Modelled total time of the pilot run (s).
    pub total_time: f64,
    /// Rebalances the pilot performed.
    pub rebalances: usize,
}

/// Result of a tuning sweep: every point plus the winner.
#[derive(Debug, Clone)]
pub struct TuneReport {
    pub points: Vec<TunePoint>,
    pub best: TunePoint,
}

/// Default grids mirroring the paper's sensitivity study.
pub const DEFAULT_T_GRID: [usize; 3] = [10, 20, 30];
pub const DEFAULT_THRESHOLD_GRID: [f64; 3] = [1.5, 2.0, 3.0];

/// Sweep `(T, Threshold)` with pilot runs of `pilot_steps` DSMC
/// iterations each and return the full report. The run's own
/// rebalance settings (other than T/Threshold) are kept.
pub fn tune_balancer(
    run: &RunConfig,
    profile: MachineProfile,
    pilot_steps: usize,
    t_grid: &[usize],
    threshold_grid: &[f64],
) -> TuneReport {
    assert!(!t_grid.is_empty() && !threshold_grid.is_empty());
    let base_rb = run.rebalance.unwrap_or_default();
    let mut points = Vec::with_capacity(t_grid.len() * threshold_grid.len());
    for &t in t_grid {
        for &threshold in threshold_grid {
            let mut pilot = run.clone();
            pilot.rebalance = Some(RebalanceConfig {
                t_interval: t,
                threshold,
                ..base_rb
            });
            let mut sim = ClusterSim::new(&pilot, profile);
            let rep = sim.run(pilot_steps);
            points.push(TunePoint {
                t_interval: t,
                threshold,
                total_time: rep.total_time,
                rebalances: rep.rebalances,
            });
        }
    }
    let best = *points
        .iter()
        .min_by(|a, b| a.total_time.partial_cmp(&b.total_time).unwrap())
        .unwrap();
    TuneReport { points, best }
}

/// One evaluated strategy pilot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyPoint {
    pub strategy: Strategy,
    /// Modelled total time of the pilot run (s).
    pub total_time: f64,
    /// Exchanges tallied per concrete strategy during the pilot.
    pub strategy_uses: [u64; 4],
}

/// Result of a strategy sweep: every concrete strategy plus Auto,
/// and the fastest of them.
#[derive(Debug, Clone)]
pub struct StrategyTuneReport {
    pub points: Vec<StrategyPoint>,
    pub best: StrategyPoint,
}

/// Offline counterpart of [`Strategy::Auto`]: run one pilot per
/// concrete strategy (plus Auto itself) and report the fastest
/// whole-run choice. Useful when the production run must commit to a
/// fixed schedule; the per-step Auto rule adapts within a run instead.
pub fn tune_strategy(
    run: &RunConfig,
    profile: MachineProfile,
    pilot_steps: usize,
) -> StrategyTuneReport {
    let candidates = Strategy::CONCRETE.into_iter().chain([Strategy::Auto]);
    let mut points = Vec::with_capacity(Strategy::CONCRETE.len() + 1);
    for strategy in candidates {
        let mut pilot = run.clone();
        pilot.strategy = strategy;
        let mut sim = ClusterSim::new(&pilot, profile);
        let rep = sim.run(pilot_steps);
        points.push(StrategyPoint {
            strategy,
            total_time: rep.total_time,
            strategy_uses: rep.strategy_uses,
        });
    }
    let best = *points
        .iter()
        .min_by(|a, b| a.total_time.partial_cmp(&b.total_time).unwrap())
        .unwrap();
    StrategyTuneReport { points, best }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataset, RunConfig};

    #[test]
    fn tuner_covers_grid_and_picks_minimum() {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(4)
            .seed(21)
            .build()
            .unwrap();
        let report = tune_balancer(&run, MachineProfile::tianhe2(), 8, &[4, 8], &[1.5, 3.0]);
        assert_eq!(report.points.len(), 4);
        for p in &report.points {
            assert!(p.total_time > 0.0);
            assert!(report.best.total_time <= p.total_time);
        }
        assert!(report.points.contains(&report.best));
    }

    #[test]
    fn strategy_tuner_covers_all_candidates() {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(4)
            .seed(21)
            .build()
            .unwrap();
        let report = tune_strategy(&run, MachineProfile::tianhe2(), 8);
        assert_eq!(report.points.len(), 5);
        for p in &report.points {
            assert!(p.total_time > 0.0, "{:?}", p.strategy);
            assert!(report.best.total_time <= p.total_time);
            assert!(p.strategy_uses.iter().sum::<u64>() > 0, "{:?}", p.strategy);
        }
        // Auto picks the per-exchange argmin of the same model, so it
        // can only tie or beat every fixed strategy
        let auto = report
            .points
            .iter()
            .find(|p| p.strategy == Strategy::Auto)
            .unwrap();
        for p in &report.points {
            assert!(auto.total_time <= p.total_time * (1.0 + 1e-12));
        }
    }

    #[test]
    fn tuner_is_deterministic() {
        let run = RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .ranks(3)
            .seed(5)
            .build()
            .unwrap();
        let a = tune_balancer(&run, MachineProfile::tianhe2(), 5, &[5], &[2.0]);
        let b = tune_balancer(&run, MachineProfile::tianhe2(), 5, &[5], &[2.0]);
        assert_eq!(a.points, b.points);
    }
}
