//! Analytic machine profiles and the cluster cost model.
//!
//! The paper runs on Tianhe-2, BSCC and the ARM Tianhe-3 prototype;
//! none of those is available here, so scale experiments run the real
//! decomposed algorithm while *time* is charged by this α–β model
//! (documented substitution, DESIGN.md §2):
//!
//! * compute phases: work units ÷ per-core rate, maximised over ranks
//!   (work units are counted by actually running the algorithm);
//! * particle exchange: per-rank message latency + serialized byte
//!   transfer, specialised per strategy so the centralized root
//!   bottleneck and the distributed N(N−1) transaction growth both
//!   appear, as in the paper's §IV-B.3 analysis;
//! * Poisson solve: per-iteration SpMV compute that shrinks with
//!   ranks plus log-depth reduction latency that grows with ranks —
//!   reproducing the paper's non-scaling `Poisson_Solve` (Table IV).

use serde::{Deserialize, Serialize};
use vmpi::{NodeMap, Strategy, TrafficSummary};

/// Per-core processing rates and network parameters of one platform.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachineProfile {
    pub name: &'static str,
    /// CPU cores per node (Tianhe-2: 24, BSCC: 96, Tianhe-3: 64).
    pub cores_per_node: usize,
    /// Neutral/charged particle moves per second per core.
    pub move_rate: f64,
    /// Particle injections per second per core (RNG + placement).
    pub inject_rate: f64,
    /// NTC collision candidates per second per core.
    pub collide_rate: f64,
    /// Particle renumber operations per second per core.
    pub reindex_rate: f64,
    /// SpMV throughput, non-zeros per second per core.
    pub spmv_rate: f64,
    /// Graph-partitioner vertex throughput (vertices/s, serial).
    pub partition_rate: f64,
    /// Point-to-point message latency (s).
    pub alpha: f64,
    /// Point-to-point bandwidth (bytes/s).
    pub beta: f64,
}

impl MachineProfile {
    /// Intel Xeon E5-2692v2 nodes, 160 Gb/s custom fat-tree.
    pub fn tianhe2() -> Self {
        MachineProfile {
            name: "Tianhe-2",
            cores_per_node: 24,
            move_rate: 5.0e6,
            inject_rate: 5.0e4,
            collide_rate: 1.2e7,
            reindex_rate: 6.0e7,
            spmv_rate: 4.0e8,
            partition_rate: 2.0e6,
            alpha: 2.0e-6,
            beta: 2.0e10,
        }
    }

    /// Xeon Platinum 9242 nodes, 100 Gb/s InfiniBand.
    pub fn bscc() -> Self {
        MachineProfile {
            name: "BSCC",
            cores_per_node: 96,
            move_rate: 8.0e6,
            inject_rate: 7.5e4,
            collide_rate: 1.8e7,
            reindex_rate: 9.0e7,
            spmv_rate: 6.0e8,
            partition_rate: 3.0e6,
            alpha: 1.6e-6,
            beta: 1.25e10,
        }
    }

    /// Phytium 2000+ ARMv8 nodes, 200 Gb/s custom interconnect.
    pub fn tianhe3() -> Self {
        MachineProfile {
            name: "Tianhe-3",
            cores_per_node: 64,
            move_rate: 3.0e6,
            inject_rate: 3.0e4,
            collide_rate: 0.8e7,
            reindex_rate: 4.0e7,
            spmv_rate: 2.5e8,
            partition_rate: 1.2e6,
            alpha: 2.4e-6,
            beta: 2.5e10,
        }
    }
}

/// MPI rank placement on the fat-tree (paper §VII-D.2): longer routes
/// cost slightly more latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// All ranks within one 32-node frame.
    InnerFrame,
    /// Spanning frames within one rack.
    InnerRack,
    /// Spanning racks.
    InterRack,
}

impl Placement {
    /// Multiplier on message latency.
    pub fn latency_factor(self) -> f64 {
        match self {
            Placement::InnerFrame => 1.0,
            Placement::InnerRack => 1.35,
            Placement::InterRack => 1.8,
        }
    }

    /// Divisor on effective bandwidth.
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            Placement::InnerFrame => 1.0,
            Placement::InnerRack => 1.04,
            Placement::InterRack => 1.09,
        }
    }
}

/// The cost model for one run: profile + placement + rank count.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    pub profile: MachineProfile,
    pub placement: Placement,
    pub ranks: usize,
}

impl CostModel {
    pub fn new(profile: MachineProfile, ranks: usize) -> Self {
        CostModel {
            profile,
            placement: Placement::InnerFrame,
            ranks,
        }
    }

    /// Effective message latency (s).
    pub fn alpha(&self) -> f64 {
        self.profile.alpha * self.placement.latency_factor()
    }

    /// Effective bandwidth (bytes/s).
    pub fn beta(&self) -> f64 {
        self.profile.beta / self.placement.bandwidth_factor()
    }

    /// Time for `units` of work at `rate` units/s/core on one core.
    #[inline]
    pub fn compute(&self, units: f64, rate: f64) -> f64 {
        units / rate
    }

    /// Wall time of one particle exchange with the given traffic.
    ///
    /// Distributed: every rank performs 2(N−1) *synchronized*
    /// send/recv rounds (the paper's two-round ordered protocol), so
    /// the latency term grows linearly in N with a synchronization
    /// penalty; bytes move once, bounded by the busiest rank.
    ///
    /// Centralized: the root serializes 2(N−1) messages and every
    /// migrated byte crosses the wire twice through it.
    ///
    /// Sparse: two barrier fences bracket the counts round, then only
    /// the busiest rank's nonzero pairs pay per-operation latency
    /// (one count message + one payload message per partner) — the
    /// latency bill scales with actual migration, not with N².
    ///
    /// Hier: four log-depth fences (three phases plus the trailing
    /// one) and the busiest rank — a node leader — pays per-operation
    /// latency for its funnel fan-in, trunk frames and scatter fan-out
    /// plus its aggregated bytes. The leader drains members in strict
    /// rank order, so skew accumulates exactly like the flat ordered
    /// protocols and the contended `per_op` applies.
    pub fn exchange_time(&self, strategy: Strategy, t: &TrafficSummary) -> f64 {
        let n = self.ranks as f64;
        let a = self.alpha();
        let b = self.beta();
        // NIC contention: the paper's two-round ordered protocols make
        // every rank block in strict source order, so skew accumulates
        // and each node's link is contended by all `cores_per_node`
        // ranks simultaneously — the N(N−1)-transaction cost §IV-B.3
        // predicts. Calibrated so the DC/CC crossover appears near 768
        // ranks on BSCC (Fig. 11) while DC stays ahead on Tianhe-2's
        // particle-heavy runs (Table II).
        let contention = n * self.profile.cores_per_node as f64 / 1536.0;
        let per_op = a * (2.0 + contention);
        match strategy {
            Strategy::Distributed => 2.0 * (n - 1.0) * per_op + t.max_rank_bytes as f64 / b,
            Strategy::Centralized => {
                // root serializes 2(N−1) eager messages; all migrated
                // bytes cross its single link twice
                2.0 * (n - 1.0) * a + t.max_rank_bytes as f64 / b
            }
            Strategy::Sparse => {
                // log-depth barrier fences + the busiest rank's
                // serialized nonzero operations + its payload bytes
                let fences = 2.0 * n.log2().max(1.0) * a;
                fences + t.max_rank_msgs as f64 * per_op + t.max_rank_bytes as f64 / b
            }
            Strategy::Hier => {
                // three phase fences + the trailing fence, then the
                // leader's serialized frame operations and its share of
                // the aggregated inter-node bytes
                let fences = 8.0 * n.log2().max(1.0) * a;
                fences + t.max_rank_msgs as f64 * per_op + t.max_rank_bytes as f64 / b
            }
            Strategy::Auto => panic!(
                "Strategy::Auto has no cost of its own — resolve it with \
                 CostModel::pick_strategy first"
            ),
        }
    }

    /// The rank → node grouping this machine implies for the
    /// hierarchical strategy: contiguous blocks of `cores_per_node`
    /// ranks per node, the way schedulers hand out rank ranges.
    pub fn node_map_for(&self, ranks: usize) -> NodeMap {
        NodeMap::grouped(ranks, self.profile.cores_per_node)
    }

    /// Modelled wall time of one exchange of the migration byte matrix
    /// `m` under `strategy` (traffic prediction + α–β charge). The
    /// hierarchical strategy is priced with this machine's
    /// [`CostModel::node_map_for`] grouping, not the two-node default.
    pub fn exchange_time_for(&self, strategy: Strategy, m: &[Vec<u64>]) -> f64 {
        let t = match strategy {
            Strategy::Hier => vmpi::traffic_hier(&self.node_map_for(m.len()), m),
            _ => vmpi::traffic(strategy, m),
        };
        self.exchange_time(strategy, &t)
    }

    /// The per-step Auto decision rule (§IV-B addendum): score the
    /// concrete strategies on the rank-0-reduced migration byte
    /// matrix with this machine's α/β parameters and return the
    /// cheapest. Ties break toward the earlier entry of
    /// [`Strategy::CONCRETE`], so the rule is deterministic.
    pub fn pick_strategy(&self, m: &[Vec<u64>]) -> Strategy {
        Strategy::CONCRETE
            .into_iter()
            .min_by(|&x, &y| {
                self.exchange_time_for(x, m)
                    .partial_cmp(&self.exchange_time_for(y, m))
                    .expect("exchange times are finite")
            })
            .expect("CONCRETE is non-empty")
    }

    /// Wall time of one distributed Poisson solve: `iters` CG
    /// iterations over a matrix of `nnz` non-zeros and `nodes`
    /// unknowns split across ranks.
    pub fn poisson_time(&self, iters: usize, nnz: usize, nodes: usize) -> f64 {
        let k = self.ranks as f64;
        let local_nnz = nnz as f64 / k;
        // Per iteration: local SpMV + two log-depth dot-product
        // allreduces + halo exchange of surface nodes. Collectives pay
        // MPI software overhead well above the raw link latency
        // (~10×); this is what makes the fixed-size Poisson solve stop
        // scaling (paper Table IV).
        let collective_alpha = 10.0 * self.alpha();
        let halo_nodes = ((nodes as f64 / k).powf(2.0 / 3.0)).max(1.0) * 6.0;
        let per_iter = local_nnz / self.profile.spmv_rate
            + 2.0 * (k.log2().max(1.0)) * collective_alpha
            + halo_nodes * 8.0 / self.beta();
        iters as f64 * per_iter
    }

    /// Wall time of the Eulerian/Lagrangian gather/scatter charge
    /// reduction (DESIGN.md §15): each static field owner gathers
    /// every rank's contribution to its `nodes/k` block, reduces it,
    /// and broadcasts the reduced block back. Both rounds serialize
    /// k−1 block-sized messages through each owner.
    pub fn eullag_halo_time(&self, nodes: usize) -> f64 {
        let k = self.ranks as f64;
        let block = (nodes as f64 / k).max(1.0);
        2.0 * (k - 1.0).max(0.0) * (self.alpha() + block * 8.0 / self.beta())
    }

    /// Cost of one rebalance: serial partition on rank 0 + mapping
    /// broadcast + particle migration under `strategy`.
    pub fn rebalance_time(
        &self,
        cells: usize,
        migration: &TrafficSummary,
        strategy: Strategy,
        use_km: bool,
    ) -> f64 {
        let n = self.ranks as f64;
        let partition = cells as f64 * (cells as f64).log2().max(1.0) / self.profile.partition_rate;
        let km = if use_km {
            // O(k³) Hungarian, tiny next to everything else
            n.powi(3) * 2e-10
        } else {
            0.0
        };
        let bcast = (n.log2().max(1.0)) * self.alpha() + cells as f64 * 4.0 / self.beta();
        partition + km + bcast + self.exchange_time(strategy, migration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_matrix(n: usize, bytes: u64) -> Vec<Vec<u64>> {
        (0..n)
            .map(|s| (0..n).map(|d| if s == d { 0 } else { bytes }).collect())
            .collect()
    }

    #[test]
    fn profiles_are_distinct() {
        let t2 = MachineProfile::tianhe2();
        let bs = MachineProfile::bscc();
        let t3 = MachineProfile::tianhe3();
        assert!(t3.move_rate < t2.move_rate, "ARM cores slower");
        assert!(bs.beta < t2.beta, "IB 100G slower than TH-2 custom");
        assert!(t3.beta > t2.beta, "TH-3 has the fastest links");
    }

    #[test]
    fn placement_ordering() {
        assert!(Placement::InnerFrame.latency_factor() < Placement::InnerRack.latency_factor());
        assert!(Placement::InnerRack.latency_factor() < Placement::InterRack.latency_factor());
    }

    #[test]
    fn dc_wins_with_many_bytes_cc_wins_with_many_ranks() {
        // many particles, few ranks: distributed faster
        let few = CostModel::new(MachineProfile::tianhe2(), 16);
        let m = uniform_matrix(16, 2_000_000);
        let dc = few.exchange_time(
            Strategy::Distributed,
            &vmpi::traffic(Strategy::Distributed, &m),
        );
        let cc = few.exchange_time(
            Strategy::Centralized,
            &vmpi::traffic(Strategy::Centralized, &m),
        );
        assert!(dc < cc, "dc {dc} cc {cc}");

        // few particles, many ranks: centralized faster
        let many = CostModel::new(MachineProfile::bscc(), 768);
        let m = uniform_matrix(768, 20);
        let dc = many.exchange_time(
            Strategy::Distributed,
            &vmpi::traffic(Strategy::Distributed, &m),
        );
        let cc = many.exchange_time(
            Strategy::Centralized,
            &vmpi::traffic(Strategy::Centralized, &m),
        );
        assert!(cc < dc, "cc {cc} dc {dc}");
    }

    fn pair_matrix(n: usize, pairs: &[(usize, usize, u64)]) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; n]; n];
        for &(s, d, b) in pairs {
            m[s][d] = b;
        }
        m
    }

    #[test]
    fn sparse_wins_quiet_steps_dc_wins_dense_ones() {
        let cm = CostModel::new(MachineProfile::tianhe2(), 96);

        // quiet step: two migrating pairs out of 96·95 — the sparse
        // protocol's 4-message bill beats both all-pairs schedules
        let quiet = pair_matrix(96, &[(3, 7, 4_000), (40, 12, 2_000)]);
        let sp = cm.exchange_time_for(Strategy::Sparse, &quiet);
        let dc = cm.exchange_time_for(Strategy::Distributed, &quiet);
        let cc = cm.exchange_time_for(Strategy::Centralized, &quiet);
        assert!(sp < dc, "sparse {sp} dc {dc}");
        assert!(sp < cc, "sparse {sp} cc {cc}");

        // dense step: every pair migrates, so sparse pays the same
        // payload plus count messages and fences — distributed wins
        let dense = uniform_matrix(96, 50_000);
        let sp = cm.exchange_time_for(Strategy::Sparse, &dense);
        let dc = cm.exchange_time_for(Strategy::Distributed, &dense);
        assert!(dc < sp, "dc {dc} sparse {sp}");
    }

    #[test]
    fn pick_strategy_follows_the_matrix() {
        let cm = CostModel::new(MachineProfile::tianhe2(), 96);
        let quiet = pair_matrix(96, &[(3, 7, 4_000)]);
        assert_eq!(cm.pick_strategy(&quiet), Strategy::Sparse);
        let dense = uniform_matrix(96, 50_000);
        assert_eq!(cm.pick_strategy(&dense), Strategy::Distributed);

        // tiny dense traffic at high rank counts: root serialization
        // is cheaper than either all-pairs schedule (Fig. 11 regime)
        let many = CostModel::new(MachineProfile::bscc(), 768);
        let trickle = uniform_matrix(768, 20);
        assert_eq!(many.pick_strategy(&trickle), Strategy::Centralized);
    }

    #[test]
    fn hier_wins_dense_heavy_traffic_at_scale() {
        // 1536 ranks, every pair migrating ~1 KB: the centralized
        // root chokes on 2M bytes through one link, the all-pairs
        // schedules choke on per-rank message latency — only the
        // node-aggregated strategy keeps both bills bounded by the
        // node fan-in. This is the crossover the fig-style experiment
        // records.
        let cm = CostModel::new(MachineProfile::tianhe3(), 1536);
        let dense = uniform_matrix(1536, 1_000);
        let hier = cm.exchange_time_for(Strategy::Hier, &dense);
        let cc = cm.exchange_time_for(Strategy::Centralized, &dense);
        let dc = cm.exchange_time_for(Strategy::Distributed, &dense);
        let sp = cm.exchange_time_for(Strategy::Sparse, &dense);
        assert!(hier < cc, "hier {hier} cc {cc}");
        assert!(hier < dc, "hier {hier} dc {dc}");
        assert!(hier < sp, "hier {hier} sparse {sp}");
        assert_eq!(cm.pick_strategy(&dense), Strategy::Hier);

        // but on a quiet step that crosses nodes, the three-hop relay
        // and the four fences make it lose to Sparse
        let quiet = pair_matrix(1536, &[(3, 1000, 4_000)]);
        assert_eq!(cm.pick_strategy(&quiet), Strategy::Sparse);
    }

    #[test]
    #[should_panic(expected = "pick_strategy")]
    fn auto_has_no_cost_of_its_own() {
        let cm = CostModel::new(MachineProfile::tianhe2(), 8);
        let m = uniform_matrix(8, 100);
        cm.exchange_time(Strategy::Auto, &vmpi::traffic(Strategy::Distributed, &m));
    }

    #[test]
    fn poisson_stops_scaling() {
        // fixed-size problem: time should *increase* from 96 to 1536
        // ranks (latency-bound), mirroring Table IV
        let nnz = 4_000_000usize;
        let nodes = 600_000usize;
        let t =
            |k: usize| CostModel::new(MachineProfile::tianhe2(), k).poisson_time(200, nnz, nodes);
        assert!(t(24) > t(96) * 0.5, "some speedup early is fine");
        assert!(t(1536) > t(96), "latency must dominate at scale");
    }

    #[test]
    fn placement_effect_is_percent_level() {
        // paper Fig. 14: inner-frame vs inter-rack differs by ~1-2%
        let mk = |p: Placement| {
            let mut cm = CostModel::new(MachineProfile::tianhe2(), 96);
            cm.placement = p;
            let m = uniform_matrix(96, 10_000);
            // a step dominated by compute with some exchange
            1.0 + cm.exchange_time(
                Strategy::Distributed,
                &vmpi::traffic(Strategy::Distributed, &m),
            )
        };
        let inner = mk(Placement::InnerFrame);
        let inter = mk(Placement::InterRack);
        assert!(inter > inner);
        assert!(
            (inter - inner) / inner < 0.05,
            "{}",
            (inter - inner) / inner
        );
    }

    #[test]
    fn rebalance_km_overhead_is_small() {
        let cm = CostModel::new(MachineProfile::tianhe2(), 96);
        let m = uniform_matrix(96, 1000);
        let tr = vmpi::traffic(Strategy::Distributed, &m);
        let with = cm.rebalance_time(100_000, &tr, Strategy::Distributed, true);
        let without = cm.rebalance_time(100_000, &tr, Strategy::Distributed, false);
        // KM itself adds well under 10% here
        assert!((with - without) / without < 0.1);
    }
}
