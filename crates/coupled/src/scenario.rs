//! Scenario files: a declarative TOML front-end for [`RunConfig`].
//!
//! A scenario is a small, hand-editable description of one simulation
//! setup — domain geometry, species and injection flux, timestepping
//! (including the DSMC subcycling factor `k_sub_dsmc`), partial-pump
//! boundaries and run/diagnostic settings — that lowers into the
//! validating [`RunConfig::builder`]. The parser is a hand-rolled
//! TOML subset in the spirit of [`obs::json`] (no external
//! dependency): `[section]` tables, `key = value` scalars (strings,
//! integers, floats, booleans) and `#` comments. Exactly the subset
//! the format needs, parsed strictly — unknown sections or keys are
//! typed errors, not silent no-ops.
//!
//! Three canned scenarios ship embedded in the crate (so binaries
//! resolve them from any working directory) and as editable files
//! under `scenarios/`:
//!
//! | name | file | character |
//! |------|------|-----------|
//! | `freestream`  | `scenarios/freestream.toml`  | hypersonic-style uniform inflow |
//! | `thermal_box` | `scenarios/thermal_box.toml` | quiescent thermalization, weak pump, subcycled |
//! | `jet`         | `scenarios/jet.toml`         | narrow high-density jet, strong pump, high imbalance |
//!
//! Because the lowered config participates in
//! [`RunConfig::canonical_json`] / [`RunConfig::config_hash`] like
//! any hand-built one, scenario-submitted jobs hit the job server's
//! result cache exactly when their lowered physics agrees — key
//! order, whitespace and comments in the TOML never matter.

use crate::config::{ConfigError, RunConfig, SimConfig};
use mesh::NozzleSpec;
use std::collections::BTreeMap;

/// The canned scenarios, embedded at compile time: `(name, TOML)`.
pub const CANNED: &[(&str, &str)] = &[
    (
        "freestream",
        include_str!("../../../scenarios/freestream.toml"),
    ),
    (
        "thermal_box",
        include_str!("../../../scenarios/thermal_box.toml"),
    ),
    ("jet", include_str!("../../../scenarios/jet.toml")),
];

/// Names of the canned scenarios, in [`CANNED`] order.
pub fn names() -> Vec<&'static str> {
    CANNED.iter().map(|&(n, _)| n).collect()
}

/// One scalar value of the TOML subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
        }
    }
}

/// Why a scenario failed to parse or lower.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// Malformed TOML at this 1-based line.
    Parse { line: usize, msg: String },
    /// A `[section]` the format does not define.
    UnknownSection(String),
    /// A key the section does not define (typo guard).
    UnknownKey { section: String, key: String },
    /// A key held a value of the wrong type.
    Type {
        section: String,
        key: String,
        expected: &'static str,
        got: &'static str,
    },
    /// A value was out of its physical range (negative weight,
    /// degenerate mesh, non-positive timestep, ...).
    Invalid {
        section: String,
        key: String,
        msg: String,
    },
    /// The injection flux would be negative: a species density or the
    /// drift speed was below zero.
    NegativeFlux { key: String },
    /// [`canned`] was asked for a name that is not shipped.
    UnknownScenario(String),
    /// The lowered config failed [`RunConfig::builder`] validation
    /// (`k_sub_dsmc = 0`, pump probability outside `[0, 1]`, zero
    /// ranks, ...).
    Config(ConfigError),
    /// [`from_file`] could not read the path.
    Io(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            ScenarioError::UnknownSection(s) => write!(f, "unknown section [{s}]"),
            ScenarioError::UnknownKey { section, key } => {
                write!(f, "unknown key `{key}` in [{section}]")
            }
            ScenarioError::Type {
                section,
                key,
                expected,
                got,
            } => write!(f, "[{section}] {key}: expected {expected}, got {got}"),
            ScenarioError::Invalid { section, key, msg } => {
                write!(f, "[{section}] {key}: {msg}")
            }
            ScenarioError::NegativeFlux { key } => {
                write!(f, "negative injection flux: `{key}` is below zero")
            }
            ScenarioError::UnknownScenario(name) => {
                write!(
                    f,
                    "unknown scenario `{name}` (canned: {})",
                    names().join(", ")
                )
            }
            ScenarioError::Config(e) => write!(f, "invalid lowered config: {e}"),
            ScenarioError::Io(msg) => write!(f, "cannot read scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ConfigError> for ScenarioError {
    fn from(e: ConfigError) -> Self {
        ScenarioError::Config(e)
    }
}

/// A parsed and lowered scenario: identity plus the validated run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// `[scenario] name` (empty when absent).
    pub name: String,
    /// `[scenario] description` (empty when absent).
    pub description: String,
    /// The lowered, builder-validated configuration.
    pub run: RunConfig,
}

/// Parse scenario TOML and lower it into a validated [`RunConfig`].
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    lower(&parse_toml(text)?)
}

/// Load a canned scenario by name (see [`CANNED`]).
pub fn canned(name: &str) -> Result<Scenario, ScenarioError> {
    match CANNED.iter().find(|&&(n, _)| n == name) {
        Some(&(_, text)) => parse(text),
        None => Err(ScenarioError::UnknownScenario(name.to_string())),
    }
}

/// Read and parse a scenario file from disk.
pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Scenario, ScenarioError> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.as_ref().display())))?;
    parse(&text)
}

// ---------------------------------------------------------------------
// TOML-subset parser (line-oriented, strict)
// ---------------------------------------------------------------------

type Table = BTreeMap<String, BTreeMap<String, Value>>;

fn is_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Strip a trailing `#` comment, respecting `"..."` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_value(raw: &str, line_no: usize) -> Result<Value, ScenarioError> {
    let err = |msg: String| ScenarioError::Parse { line: line_no, msg };
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(err("missing value".to_string()));
    }
    if let Some(body) = raw.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = body.chars();
        loop {
            match chars.next() {
                None => return Err(err("unterminated string".to_string())),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => return Err(err(format!("bad escape \\{other:?}"))),
                },
                Some(c) => out.push(c),
            }
        }
        if chars.next().is_some() {
            return Err(err("trailing characters after string".to_string()));
        }
        return Ok(Value::Str(out));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // number: integer unless it carries a fraction or exponent
    if raw.contains(['.', 'e', 'E']) {
        raw.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(format!("not a number: `{raw}`")))
    } else {
        raw.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(format!("not a number: `{raw}`")))
    }
}

/// Parse the TOML subset into `section -> key -> value` tables.
/// Duplicate sections or keys are errors, as is a key before the
/// first section header.
pub fn parse_toml(text: &str) -> Result<Table, ScenarioError> {
    let mut table = Table::new();
    let mut current: Option<String> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |msg: String| ScenarioError::Parse { line: line_no, msg };
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(body) = line.strip_prefix('[') {
            let name = body
                .strip_suffix(']')
                .ok_or_else(|| err("unclosed section header".to_string()))?
                .trim();
            if name.is_empty() || !name.chars().all(is_key_char) {
                return Err(err(format!("bad section name `{name}`")));
            }
            if table.contains_key(name) {
                return Err(err(format!("duplicate section [{name}]")));
            }
            table.insert(name.to_string(), BTreeMap::new());
            current = Some(name.to_string());
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(format!("expected `key = value`, got `{line}`")))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| is_key_char(c) && c != '.') {
            return Err(err(format!("bad key `{key}`")));
        }
        let section = current
            .as_ref()
            .ok_or_else(|| err(format!("key `{key}` before any [section]")))?;
        let value = parse_value(value, line_no)?;
        let entries = table.get_mut(section).expect("section exists");
        if entries.insert(key.to_string(), value).is_some() {
            return Err(err(format!("duplicate key `{key}` in [{section}]")));
        }
    }
    Ok(table)
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Typed accessors over one parsed section.
struct Section<'a> {
    name: &'a str,
    map: Option<&'a BTreeMap<String, Value>>,
}

impl<'a> Section<'a> {
    fn get(&self, key: &str) -> Option<&'a Value> {
        self.map.and_then(|m| m.get(key))
    }

    fn check_keys(&self, allowed: &[&str]) -> Result<(), ScenarioError> {
        if let Some(m) = self.map {
            for key in m.keys() {
                if !allowed.contains(&key.as_str()) {
                    return Err(ScenarioError::UnknownKey {
                        section: self.name.to_string(),
                        key: key.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    fn type_err(&self, key: &str, expected: &'static str, got: &Value) -> ScenarioError {
        ScenarioError::Type {
            section: self.name.to_string(),
            key: key.to_string(),
            expected,
            got: got.type_name(),
        }
    }

    /// Float-valued key; integers coerce (TOML writers often drop the
    /// decimal point).
    fn f64_of(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Float(v)) => Ok(Some(*v)),
            Some(Value::Int(v)) => Ok(Some(*v as f64)),
            Some(other) => Err(self.type_err(key, "float", other)),
        }
    }

    fn usize_of(&self, key: &str) -> Result<Option<usize>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Int(v)) if *v >= 0 => Ok(Some(*v as usize)),
            Some(other) => Err(self.type_err(key, "non-negative integer", other)),
        }
    }

    fn u64_of(&self, key: &str) -> Result<Option<u64>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Int(v)) if *v >= 0 => Ok(Some(*v as u64)),
            Some(other) => Err(self.type_err(key, "non-negative integer", other)),
        }
    }

    fn bool_of(&self, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Bool(v)) => Ok(Some(*v)),
            Some(other) => Err(self.type_err(key, "boolean", other)),
        }
    }

    fn str_of(&self, key: &str) -> Result<Option<String>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Str(v)) => Ok(Some(v.clone())),
            Some(other) => Err(self.type_err(key, "string", other)),
        }
    }

    /// A float that must be strictly positive when present.
    fn positive_f64(&self, key: &str) -> Result<Option<f64>, ScenarioError> {
        match self.f64_of(key)? {
            Some(v) if !(v.is_finite() && v > 0.0) => Err(ScenarioError::Invalid {
                section: self.name.to_string(),
                key: key.to_string(),
                msg: format!("must be a positive finite number, got {v}"),
            }),
            other => Ok(other),
        }
    }
}

const SECTIONS: &[&str] = &[
    "scenario",
    "domain",
    "species.h",
    "species.hplus",
    "injection",
    "time",
    "walls",
    "run",
    "diagnostics",
];

/// Lower parsed tables into a [`Scenario`]. Every key is optional —
/// absent keys keep the [`SimConfig::default`] / builder defaults —
/// but present keys are validated strictly.
pub fn lower(table: &Table) -> Result<Scenario, ScenarioError> {
    for section in table.keys() {
        if !SECTIONS.contains(&section.as_str()) {
            return Err(ScenarioError::UnknownSection(section.clone()));
        }
    }
    let section = |name: &'static str| Section {
        name,
        map: table.get(name),
    };

    let meta = section("scenario");
    meta.check_keys(&["name", "description"])?;
    let name = meta.str_of("name")?.unwrap_or_default();
    let description = meta.str_of("description")?.unwrap_or_default();

    let mut sim = SimConfig::default();

    let domain = section("domain");
    domain.check_keys(&["radius", "length", "inlet_radius", "nd", "nz"])?;
    let mut nozzle = NozzleSpec::default();
    if let Some(v) = domain.positive_f64("radius")? {
        nozzle.radius = v;
    }
    if let Some(v) = domain.positive_f64("length")? {
        nozzle.length = v;
    }
    if let Some(v) = domain.positive_f64("inlet_radius")? {
        nozzle.inlet_radius = v;
    }
    if let Some(v) = domain.usize_of("nd")? {
        nozzle.nd = v;
    }
    if let Some(v) = domain.usize_of("nz")? {
        nozzle.nz = v;
    }
    if nozzle.nd < 2 || nozzle.nz < 1 {
        return Err(ScenarioError::Invalid {
            section: "domain".to_string(),
            key: "nd".to_string(),
            msg: format!(
                "mesh needs nd >= 2 and nz >= 1, got {}x{}",
                nozzle.nd, nozzle.nz
            ),
        });
    }
    if nozzle.inlet_radius > nozzle.radius {
        return Err(ScenarioError::Invalid {
            section: "domain".to_string(),
            key: "inlet_radius".to_string(),
            msg: format!(
                "inlet radius {} exceeds the domain radius {}",
                nozzle.inlet_radius, nozzle.radius
            ),
        });
    }
    sim.nozzle = nozzle;

    let h = section("species.h");
    h.check_keys(&["density", "weight"])?;
    if let Some(v) = h.f64_of("density")? {
        if !(v.is_finite() && v >= 0.0) {
            return Err(ScenarioError::NegativeFlux {
                key: "species.h.density".to_string(),
            });
        }
        sim.density_h = v;
    }
    if let Some(v) = h.positive_f64("weight")? {
        sim.weight_h = v;
    }

    let hp = section("species.hplus");
    hp.check_keys(&["density", "weight"])?;
    if let Some(v) = hp.f64_of("density")? {
        if !(v.is_finite() && v >= 0.0) {
            return Err(ScenarioError::NegativeFlux {
                key: "species.hplus.density".to_string(),
            });
        }
        sim.density_hplus = v;
    }
    if let Some(v) = hp.positive_f64("weight")? {
        sim.weight_hplus = v;
    }

    let inj = section("injection");
    inj.check_keys(&["v_drift", "t_inject"])?;
    if let Some(v) = inj.f64_of("v_drift")? {
        if !(v.is_finite() && v >= 0.0) {
            return Err(ScenarioError::NegativeFlux {
                key: "injection.v_drift".to_string(),
            });
        }
        sim.v_drift = v;
    }
    if let Some(v) = inj.positive_f64("t_inject")? {
        sim.t_inject = v;
    }

    let time = section("time");
    time.check_keys(&["dt_dsmc", "pic_per_dsmc", "k_sub_dsmc", "steps"])?;
    if let Some(v) = time.positive_f64("dt_dsmc")? {
        sim.dt_dsmc = v;
    }
    if let Some(v) = time.usize_of("pic_per_dsmc")? {
        if v == 0 {
            return Err(ScenarioError::Invalid {
                section: "time".to_string(),
                key: "pic_per_dsmc".to_string(),
                msg: "must be >= 1".to_string(),
            });
        }
        sim.pic_per_dsmc = v;
    }
    if let Some(v) = time.usize_of("k_sub_dsmc")? {
        // 0 is rejected by the builder (ConfigError::ZeroDsmcSubcycle)
        sim.k_sub_dsmc = v;
    }
    let steps = time.usize_of("steps")?;

    let walls = section("walls");
    walls.check_keys(&["t_wall", "pump_prob"])?;
    if let Some(v) = walls.positive_f64("t_wall")? {
        sim.t_wall = v;
    }
    if let Some(v) = walls.f64_of("pump_prob")? {
        // range check is the builder's (ConfigError::InvalidPumpProb)
        sim.pump_prob = Some(v);
    }

    let run_s = section("run");
    run_s.check_keys(&["seed", "ranks", "cross_collisions", "threads_per_rank"])?;
    if let Some(v) = run_s.u64_of("seed")? {
        sim.seed = v;
    }
    if let Some(v) = run_s.bool_of("cross_collisions")? {
        sim.cross_collisions = v;
    }

    let diag = section("diagnostics");
    diag.check_keys(&["avg_window"])?;
    let avg_window = diag.usize_of("avg_window")?;

    let mut builder = RunConfig::builder().sim(sim);
    if let Some(v) = run_s.usize_of("ranks")? {
        builder = builder.ranks(v);
    }
    if let Some(v) = run_s.usize_of("threads_per_rank")? {
        builder = builder.threads_per_rank(v);
    }
    if let Some(v) = steps {
        builder = builder.steps(v);
    }
    if let Some(w) = avg_window {
        builder = builder.avg_window(w);
    }
    let run = builder.build()?;
    Ok(Scenario {
        name,
        description,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        [scenario]
        name = "mini"
        description = "tiny test scenario"

        [domain]
        nd = 4
        nz = 6

        [time]
        steps = 3
        k_sub_dsmc = 2

        [walls]
        pump_prob = 0.5  # half of the wall hits survive

        [run]
        seed = 9
        ranks = 2
    "#;

    #[test]
    fn minimal_scenario_lowers() {
        let sc = parse(MINIMAL).unwrap();
        assert_eq!(sc.name, "mini");
        assert_eq!(sc.run.sim.nozzle.nd, 4);
        assert_eq!(sc.run.sim.k_sub_dsmc, 2);
        assert_eq!(sc.run.sim.pump_prob, Some(0.5));
        assert_eq!(sc.run.sim.seed, 9);
        assert_eq!(sc.run.ranks, 2);
        assert_eq!(sc.run.steps, 3);
    }

    #[test]
    fn canned_scenarios_all_lower_and_differ() {
        let mut hashes = Vec::new();
        for &(name, _) in CANNED {
            let sc = canned(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(sc.name, name, "embedded name must match the registry");
            assert!(!sc.description.is_empty(), "{name} needs a description");
            hashes.push(sc.run.config_hash());
        }
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), CANNED.len(), "scenarios must be distinct");
        assert!(matches!(
            canned("no-such"),
            Err(ScenarioError::UnknownScenario(_))
        ));
    }

    #[test]
    fn comments_whitespace_and_key_order_do_not_matter() {
        let reordered = r#"
            [run]
            ranks = 2
            seed = 9
            [walls]
            pump_prob   =   0.5
            [time]
            k_sub_dsmc = 2   # subcycled
            steps = 3
            [domain]
            nz = 6
            nd = 4
            [scenario]
            description = "tiny test scenario"
            name = "mini"
        "#;
        let a = parse(MINIMAL).unwrap();
        let b = parse(reordered).unwrap();
        assert_eq!(a.run.canonical_string(), b.run.canonical_string());
        assert_eq!(a.run.config_hash(), b.run.config_hash());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(matches!(
            parse_toml("[unclosed\n"),
            Err(ScenarioError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            parse_toml("key = 1\n"),
            Err(ScenarioError::Parse { .. })
        ));
        assert!(matches!(
            parse_toml("[a]\nx = \"unterminated\n"),
            Err(ScenarioError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_toml("[a]\nx = 1\nx = 2\n"),
            Err(ScenarioError::Parse { line: 3, .. })
        ));
        assert!(matches!(
            parse_toml("[a]\n[a]\n"),
            Err(ScenarioError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_toml("[a]\nx = what\n"),
            Err(ScenarioError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn typed_errors_surface() {
        let neg_flux = "[species.h]\ndensity = -1e18\n";
        assert!(matches!(
            parse(neg_flux),
            Err(ScenarioError::NegativeFlux { .. })
        ));
        let neg_drift = "[injection]\nv_drift = -10.0\n";
        assert!(matches!(
            parse(neg_drift),
            Err(ScenarioError::NegativeFlux { .. })
        ));
        let zero_sub = "[time]\nk_sub_dsmc = 0\n";
        assert_eq!(
            parse(zero_sub).unwrap_err(),
            ScenarioError::Config(ConfigError::ZeroDsmcSubcycle)
        );
        let bad_pump = "[walls]\npump_prob = 1.5\n";
        assert_eq!(
            parse(bad_pump).unwrap_err(),
            ScenarioError::Config(ConfigError::InvalidPumpProb)
        );
        let unknown_key = "[walls]\nt_wal = 300.0\n";
        assert!(matches!(
            parse(unknown_key),
            Err(ScenarioError::UnknownKey { .. })
        ));
        let unknown_section = "[wallz]\nt_wall = 300.0\n";
        assert!(matches!(
            parse(unknown_section),
            Err(ScenarioError::UnknownSection(_))
        ));
        let wrong_type = "[run]\nseed = \"nine\"\n";
        assert!(matches!(parse(wrong_type), Err(ScenarioError::Type { .. })));
    }

    #[test]
    fn strings_support_escapes() {
        let t = parse_toml("[scenario]\nname = \"a \\\"b\\\" \\\\ c\"\n").unwrap();
        assert_eq!(
            t["scenario"]["name"],
            Value::Str("a \"b\" \\ c".to_string())
        );
    }

    #[test]
    fn from_file_reads_the_shipped_scenarios() {
        // only meaningful when run from the workspace root (cargo test
        // does); the embedded copy is the fallback everywhere else
        let path = std::path::Path::new("../../scenarios/freestream.toml");
        if path.exists() {
            let sc = from_file(path).unwrap();
            assert_eq!(sc.name, "freestream");
            assert_eq!(
                sc.run.config_hash(),
                canned("freestream").unwrap().run.config_hash(),
                "file and embedded copy must agree"
            );
        }
        assert!(matches!(
            from_file("/nonexistent/path.toml"),
            Err(ScenarioError::Io(_))
        ));
    }
}
