//! Diagnostics used by the validation experiments: axis density
//! profiles (paper Fig. 9), r–z contour slices (Fig. 8) and per-rank
//! particle shares (Fig. 5).

use mesh::{locate, TetMesh, Vec3};

/// Real number density per cell from per-cell simulation-particle
/// counts: `count · weight / volume`. The end-of-run `density_h`
/// diagnostic of every driver (counts arrive as f64 because the
/// threaded backend reduces them across ranks).
pub fn number_density(counts: &[f64], volumes: &[f64], weight: f64) -> Vec<f64> {
    assert_eq!(counts.len(), volumes.len());
    counts
        .iter()
        .zip(volumes)
        .map(|(&c, &v)| c * weight / v)
        .collect()
}

/// Sample a per-cell field at `n` evenly spaced points on the
//  cylinder's central axis. Returns `(z, value)` pairs; points whose
/// cell cannot be located (outside the voxelised boundary) are
/// skipped.
pub fn axis_profile(mesh: &TetMesh, field: &[f64], length: f64, n: usize) -> Vec<(f64, f64)> {
    assert_eq!(field.len(), mesh.num_cells());
    let loc = locate::CellLocator::new(mesh, 512);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let z = (k as f64 + 0.5) / n as f64 * length;
        let p = Vec3::new(0.0, 0.0, z);
        if let Some(c) = loc.locate(mesh, p) {
            out.push((z, field[c]));
        }
    }
    out
}

/// Average a per-cell field onto an `nr × nz` grid in (radius, z) —
/// a text-friendly rendering of the paper's contour plots.
pub fn rz_slice(
    mesh: &TetMesh,
    field: &[f64],
    radius: f64,
    length: f64,
    nr: usize,
    nz: usize,
) -> Vec<Vec<f64>> {
    assert_eq!(field.len(), mesh.num_cells());
    let mut acc = vec![vec![0.0f64; nz]; nr];
    let mut cnt = vec![vec![0u32; nz]; nr];
    for (c, &v) in field.iter().enumerate() {
        let p = mesh.centroids[c];
        let r = (p.x * p.x + p.y * p.y).sqrt();
        let ir = ((r / radius * nr as f64) as usize).min(nr - 1);
        let iz = ((p.z / length * nz as f64) as usize).min(nz - 1);
        acc[ir][iz] += v;
        cnt[ir][iz] += 1;
    }
    for ir in 0..nr {
        for iz in 0..nz {
            if cnt[ir][iz] > 0 {
                acc[ir][iz] /= cnt[ir][iz] as f64;
            }
        }
    }
    acc
}

/// Mean relative error between two sampled profiles, ignoring points
/// where the reference is (near) zero — the same convention the paper
/// uses ("relative errors become larger when the number density is
/// close to 0").
pub fn mean_relative_error(reference: &[(f64, f64)], test: &[(f64, f64)]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for ((_, a), (_, b)) in reference.iter().zip(test) {
        if a.abs() > 0.0 {
            sum += (b - a).abs() / a.abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Render an r–z slice as a coarse ASCII contour (density scaled to
/// 0–9, '.' for empty). Rows = radius (axis at top), cols = z.
pub fn ascii_contour(slice: &[Vec<f64>]) -> String {
    let max = slice
        .iter()
        .flatten()
        .copied()
        .fold(0.0f64, f64::max)
        .max(1e-300);
    let mut s = String::new();
    for row in slice {
        for &v in row {
            if v <= 0.0 {
                s.push('.');
            } else {
                let level = ((v / max) * 9.0).round().min(9.0) as u32;
                s.push(char::from_digit(level, 10).unwrap());
            }
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::NozzleSpec;

    fn mesh() -> (NozzleSpec, TetMesh) {
        let spec = NozzleSpec {
            nd: 6,
            nz: 10,
            ..NozzleSpec::default()
        };
        let m = spec.generate();
        (spec, m)
    }

    #[test]
    fn number_density_scales_counts_by_weight_over_volume() {
        let d = number_density(&[2.0, 0.0, 6.0], &[0.5, 1.0, 3.0], 1.5e14);
        assert_eq!(d, vec![2.0 * 1.5e14 / 0.5, 0.0, 6.0 * 1.5e14 / 3.0]);
    }

    #[test]
    fn axis_profile_tracks_field() {
        let (spec, m) = mesh();
        // field = z of centroid: profile should increase along axis
        let field: Vec<f64> = m.centroids.iter().map(|p| p.z).collect();
        let prof = axis_profile(&m, &field, spec.length, 12);
        assert!(prof.len() >= 8, "most axis points must be locatable");
        // centroid-z of the containing cell tracks z up to one cell
        // height of jitter (tets within a layer have different
        // centroids)
        let hz = spec.hz();
        for w in prof.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - hz,
                "profile must track z: {} then {}",
                w[0].1,
                w[1].1
            );
        }
        // end-to-end it must rise
        assert!(prof.last().unwrap().1 > prof.first().unwrap().1);
    }

    #[test]
    fn rz_slice_partitions_all_cells() {
        let (spec, m) = mesh();
        let field = vec![1.0; m.num_cells()];
        let slice = rz_slice(&m, &field, spec.radius, spec.length, 4, 8);
        // every non-empty bin of a constant field holds exactly 1.0
        for row in &slice {
            for &v in row {
                assert!(v == 0.0 || (v - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn relative_error_basics() {
        let a = vec![(0.0, 2.0), (1.0, 4.0)];
        let b = vec![(0.0, 2.2), (1.0, 3.6)];
        let e = mean_relative_error(&a, &b);
        assert!((e - 0.1).abs() < 1e-12);
        // zero reference points ignored
        let a0 = vec![(0.0, 0.0), (1.0, 1.0)];
        let b0 = vec![(0.0, 5.0), (1.0, 1.1)];
        assert!((mean_relative_error(&a0, &b0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ascii_contour_shape() {
        let slice = vec![vec![0.0, 0.5, 1.0], vec![0.0, 0.0, 0.25]];
        let art = ascii_contour(&slice);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 3);
        assert!(lines[0].ends_with('9'));
        assert!(lines[1].starts_with('.'));
    }
}
