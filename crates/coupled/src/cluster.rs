//! The modelled-scale cluster driver (see DESIGN.md §2).
//!
//! Runs the *real* coupled DSMC/PIC algorithm over a real domain
//! decomposition while charging wall time with the analytic
//! [`CostModel`]: per-rank work counts come from actually executing
//! every phase and attributing each unit of work to the rank that
//! owns the cell it happens in; communication is charged from the
//! exact migration byte matrices the exchange protocols would move.
//! This reproduces the paper's scaling experiments (Tables II–VI,
//! Figs 10–15) at rank counts far beyond the local core count.
//!
//! The step itself is the one [`StepPipeline`]; this module only
//! supplies [`ModelledBackend`] — cost-model attribution in the `lap`
//! hooks instead of a stopwatch, no real communication — and the
//! [`ClusterSim`] wrapper around a whole-domain [`RankEngine`].

use crate::config::RunConfig;
use crate::engine::{
    Backend, BackendStats, ExchangeInfo, NoProbe, RankEngine, StepComm, StepOutcome, StepPipeline,
};
use crate::machine::{CostModel, MachineProfile, Placement};
use crate::report::{ReportBuilder, RunReport};
use crate::state::{CoupledState, StepRecord};
use crate::timers::{Breakdown, Phase};
use balance::{load_imbalance_indicator, CostSample, RebalanceOutcome, Rebalancer};
use dsmc::EXITED;
use obs::Observer as _;
use particles::PACKED_SIZE;
use partition::Decomposition;
use partition::{part_graph_kway, Graph, KwayOptions};
use vmpi::{traffic, Strategy, TrafficSummary};

pub use crate::report::StepTrace;

/// Aggregate outcome of a cluster run — the shared [`RunReport`].
pub type ClusterReport = RunReport;

/// Attribution backend: no real communication, modelled per-rank
/// costs. Each `lap` charges the phase's work to the virtual rank
/// owning the cell it happened in; `end_step` collapses the per-rank
/// breakdowns bulk-synchronously (per phase, the slowest rank holds
/// everyone up).
pub struct ModelledBackend {
    /// Coarse-cell ownership: cell → rank.
    owner: Vec<u32>,
    strategy: Strategy,
    cost: CostModel,
    /// Unified particle/field ownership (default) or the split
    /// Eulerian/Lagrangian mode (statically block-partitioned field
    /// grid, gather/scatter charge halo priced in the Poisson lap).
    decomp: Decomposition,
    rebalancer: Option<Rebalancer>,
    xadj: Vec<u32>,
    adjncy: Vec<u32>,
    ranks: usize,
    /// Cost-model work multiplier per simulation particle (see
    /// `Dataset::work_boost`).
    boost: f64,
    /// Cost-model multiplier for grid work: paper fine cells / our
    /// fine cells. Restores the paper-scale magnitude of the Poisson
    /// solve and the partitioner (their inputs are mesh-sized, which
    /// the dataset `scale` shrinks).
    grid_boost: f64,
    /// Exchanges carried per concrete strategy (CONCRETE order).
    strategy_uses: [u64; 4],
    rebalance_migrated: u64,
    /// Modelled per-rank phase times of the step in flight.
    per_rank: Vec<Breakdown>,
    /// Attribution of the exchange in flight (exact — the protocol
    /// prediction is the modelled backend's ground truth).
    pending_exchange: Option<ExchangeInfo>,
    /// Protocol-predicted traffic of the step in flight.
    step_tx: u64,
    step_bytes: u64,
    /// Accumulated per-step traffic = run totals for the report.
    total_tx: u64,
    total_bytes: u64,
    uses_mark: [u64; 4],
    /// Subcycle watermarks: [`StepRecord`] accumulates neutral
    /// transitions and collision candidates across DSMC subcycles, so
    /// each lap must charge only the delta since the previous subcycle
    /// (at `k_sub_dsmc = 1` the marks are always 0 and the laps see
    /// the whole record, bitwise identical to before).
    neutral_mark: usize,
    cand_mark: usize,
}

impl ModelledBackend {
    fn new(
        run: &RunConfig,
        profile: MachineProfile,
        ncoarse: usize,
        owner: Vec<u32>,
        xadj: Vec<u32>,
        adjncy: Vec<u32>,
    ) -> Self {
        ModelledBackend {
            owner,
            strategy: run.strategy,
            cost: CostModel::new(profile, run.ranks),
            decomp: run.decomposition,
            rebalancer: run.rebalance.map(|mut rc| {
                if run.decomposition == Decomposition::EulLag {
                    // the field grid is statically block-partitioned
                    // under the split mode, so the balancer weighs
                    // particle work only
                    rc.wlm.w_cell = 0;
                }
                Rebalancer::new(rc)
            }),
            xadj,
            adjncy,
            ranks: run.ranks,
            boost: run.work_boost.max(1.0),
            grid_boost: run
                .paper_cells
                .map(|pc| (pc as f64 / (8.0 * ncoarse as f64)).max(1.0))
                .unwrap_or(1.0),
            strategy_uses: [0; 4],
            rebalance_migrated: 0,
            per_rank: Vec::new(),
            pending_exchange: None,
            step_tx: 0,
            step_bytes: 0,
            total_tx: 0,
            total_bytes: 0,
            uses_mark: [0; 4],
            neutral_mark: 0,
            cand_mark: 0,
        }
    }

    /// The strategy that carries this exchange: the configured one,
    /// or — under [`Strategy::Auto`] — the cost model's pick for this
    /// migration matrix. Tallies the choice for the report and returns
    /// it with its CONCRETE index.
    fn resolve(&mut self, m: &[Vec<u64>]) -> (Strategy, usize) {
        let s = if self.strategy == Strategy::Auto {
            self.cost.pick_strategy(m)
        } else {
            self.strategy
        };
        let idx = Strategy::CONCRETE
            .iter()
            .position(|&c| c == s)
            .expect("resolved strategy is concrete");
        self.strategy_uses[idx] += 1;
        (s, idx)
    }

    /// Record one carried exchange's protocol-predicted traffic for
    /// the step trace and the pipeline's exchange events.
    fn note_exchange(&mut self, strategy: usize, tf: &TrafficSummary) {
        self.step_tx += tf.transactions;
        self.step_bytes += tf.total_bytes;
        self.pending_exchange = Some(ExchangeInfo {
            strategy,
            transactions: tf.transactions,
            bytes: tf.total_bytes,
            max_rank_msgs: tf.max_rank_msgs,
            node_pairs: tf.node_pairs,
            aggregated_bytes: tf.aggregated_bytes,
        });
    }

    /// Protocol traffic for `s` over matrix `m`. Hier aggregates over
    /// the machine's node map (ranks grouped by `cores_per_node`), the
    /// same grouping [`CostModel::pick_strategy`] evaluated.
    fn traffic_for(&self, s: Strategy, m: &[Vec<u64>]) -> TrafficSummary {
        if s == Strategy::Hier {
            vmpi::traffic_hier(&self.cost.node_map_for(self.ranks), m)
        } else {
            traffic(s, m)
        }
    }

    /// Migration byte matrix from `(old_cell, new_cell)` transitions.
    fn migration_matrix(&self, transitions: &[(u32, u32)]) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; self.ranks]; self.ranks];
        for &(oc, nc) in transitions {
            if nc == EXITED {
                continue;
            }
            let (o, n) = (
                self.owner[oc as usize] as usize,
                self.owner[nc as usize] as usize,
            );
            if o != n {
                m[o][n] += (PACKED_SIZE as f64 * self.boost) as u64;
            }
        }
        m
    }
}

impl Backend for ModelledBackend {
    fn track(&self) -> bool {
        true
    }

    fn begin_step(&mut self, _eng: &RankEngine) {
        self.per_rank = vec![Breakdown::new(); self.ranks];
        self.neutral_mark = 0;
        self.cand_mark = 0;
    }

    fn lap(
        &mut self,
        phase: Phase,
        sub: usize,
        eng: &RankEngine,
        rec: &StepRecord,
        _bd: &mut Breakdown,
    ) {
        let k = self.ranks;
        let prof = self.cost.profile;
        match phase {
            // Inject: embarrassingly parallel. The production solver
            // generates the inflow cooperatively — every rank creates
            // an equal share of the new particles and ships misplaced
            // ones with the regular exchange — which is what lets the
            // paper's Inject scale near-linearly to 1536 ranks
            // (Table IV: 1622 s -> 31 s).
            Phase::Inject => {
                let each = rec.injected_cells.len() as f64 * self.boost / k as f64;
                let t = self.cost.compute(each, prof.inject_rate);
                for bd in self.per_rank.iter_mut() {
                    bd[Phase::Inject] += t;
                }
            }
            // DSMC_Move: each move is charged to the owner of the
            // particle's start-of-step cell.
            Phase::DsmcMove => {
                let mut moves = vec![0u64; k];
                for &(oc, _) in &rec.neutral_transitions[self.neutral_mark..] {
                    moves[self.owner[oc as usize] as usize] += 1;
                }
                for (bd, &mv) in self.per_rank.iter_mut().zip(&moves) {
                    bd[Phase::DsmcMove] +=
                        self.cost.compute(mv as f64 * self.boost, prof.move_rate);
                }
            }
            // Exchanges: synchronized phases, same cost on all ranks,
            // charged from the exact byte matrix the protocol would
            // move.
            Phase::DsmcExchange | Phase::PicExchange => {
                let tr: &[(u32, u32)] = if phase == Phase::DsmcExchange {
                    let mark = self.neutral_mark;
                    self.neutral_mark = rec.neutral_transitions.len();
                    &rec.neutral_transitions[mark..]
                } else {
                    &rec.charged_transitions[sub]
                };
                let m = self.migration_matrix(tr);
                let (s, idx) = self.resolve(&m);
                let tf = self.traffic_for(s, &m);
                let t = self.cost.exchange_time(s, &tf);
                for bd in self.per_rank.iter_mut() {
                    bd[phase] += t;
                }
                self.note_exchange(idx, &tf);
            }
            // Colli_React: candidates distributed ∝ n_c(n_c−1) over
            // owned cells. (Neutral counts are stable from here to the
            // end of the step: PIC moves only the charged species.)
            Phase::ColliReact => {
                let (neutral, _) = eng.counts_per_cell();
                let mut pairs = vec![0f64; k];
                let mut total_pairs = 0f64;
                for (c, &n) in neutral.iter().enumerate() {
                    let w = n as f64 * (n as f64 - 1.0);
                    pairs[self.owner[c] as usize] += w;
                    total_pairs += w;
                }
                let cand = rec.collision_candidates - self.cand_mark;
                self.cand_mark = rec.collision_candidates;
                if total_pairs > 0.0 {
                    for (bd, &p) in self.per_rank.iter_mut().zip(&pairs) {
                        let share = p / total_pairs * cand as f64 * self.boost;
                        bd[Phase::ColliReact] += self.cost.compute(share, prof.collide_rate);
                    }
                }
            }
            Phase::PicMove => {
                let mut moves = vec![0u64; k];
                for &(oc, _) in &rec.charged_transitions[sub] {
                    moves[self.owner[oc as usize] as usize] += 1;
                }
                for (bd, &mv) in self.per_rank.iter_mut().zip(&moves) {
                    bd[Phase::PicMove] += self.cost.compute(mv as f64 * self.boost, prof.move_rate);
                }
            }
            // Poisson_Solve: grid work at paper scale — more cells
            // mean proportionally more non-zeros and (for CG on a 3-D
            // Laplacian) iterations growing with the 1-D resolution
            // ratio.
            Phase::PoissonSolve => {
                let gb = self.grid_boost;
                let nnz = (eng.poisson.matrix.nnz() as f64 * gb) as usize;
                let nodes = (eng.poisson.num_nodes() as f64 * gb) as usize;
                let iters = (rec.poisson_iters[sub] as f64 * gb.cbrt()).ceil() as usize;
                let mut t = self.cost.poisson_time(iters, nnz, nodes);
                if self.decomp == Decomposition::EulLag {
                    // split mode: the charge reduction preceding the
                    // solve is the gather/scatter halo over the static
                    // field blocks, not the flat allreduce
                    t += self.cost.eullag_halo_time(nodes);
                }
                for bd in self.per_rank.iter_mut() {
                    bd[Phase::PoissonSolve] += t;
                }
            }
            // Reindex: prefix-scan of counts + local renumber.
            Phase::Reindex => {
                let mut owned = vec![0u64; k];
                for &c in &eng.particles.cell {
                    owned[self.owner[c as usize] as usize] += 1;
                }
                let scan_latency = (k as f64).log2().max(1.0) * self.cost.alpha();
                for (bd, &ow) in self.per_rank.iter_mut().zip(&owned) {
                    bd[Phase::Reindex] +=
                        self.cost.compute(ow as f64 * self.boost, prof.reindex_rate) + scan_latency;
                }
            }
            // Rebalance time is attributed inside the rebalance hook
            // (it needs the re-decomposition's own byte matrix).
            Phase::Rebalance => {}
        }
    }

    /// No real decomposition: the one engine owns every particle.
    fn exchange(&mut self, _eng: &mut RankEngine, _phase: Phase, _sub: usize) {}

    fn take_exchange_info(&mut self) -> Option<ExchangeInfo> {
        self.pending_exchange.take()
    }

    fn step_comm(&mut self) -> StepComm {
        let tx = std::mem::take(&mut self.step_tx);
        let bytes = std::mem::take(&mut self.step_bytes);
        self.total_tx += tx;
        self.total_bytes += bytes;
        let mut uses = [0u64; 4];
        for (u, (&cur, &mark)) in uses
            .iter_mut()
            .zip(self.strategy_uses.iter().zip(&self.uses_mark))
        {
            *u = cur - mark;
        }
        self.uses_mark = self.strategy_uses;
        StepComm {
            transactions: tx,
            bytes,
            strategy_uses: uses,
        }
    }

    fn reduce_charge(&mut self, _eng: &RankEngine, node_charge: Vec<f64>) -> Vec<f64> {
        node_charge
    }

    fn reindex_base(&mut self, _eng: &RankEngine) -> u64 {
        0
    }

    fn rebalance(
        &mut self,
        eng: &mut RankEngine,
        _bd: &Breakdown,
        _rec: &StepRecord,
    ) -> StepOutcome {
        // lii (paper eq. 6) subtracts the components that are "largely
        // constant" across ranks. In this model Inject is cooperative
        // and rank-constant (like the exchanges and the Poisson
        // solve), so it is excluded from the adjusted compute time as
        // well.
        let times: Vec<balance::RankTimes> = self
            .per_rank
            .iter()
            .map(|bd| balance::RankTimes {
                total: bd.total() - bd[Phase::Inject],
                migration: bd.migration(),
                poisson: bd.poisson(),
            })
            .collect();
        let lii = load_imbalance_indicator(&times);
        let mut outcome = StepOutcome {
            lii,
            ..StepOutcome::default()
        };
        if let Some(rb) = self.rebalancer.as_mut() {
            let use_km = rb.config.use_km;
            let (neutral, charged) = eng.counts_per_cell();
            if rb.wants_samples() {
                // feed the modelled kernel seconds (deterministic, so
                // the timer-augmented source stays reproducible here)
                // and the global work units they covered
                let sum = |p: Phase| self.per_rank.iter().map(|bd| bd[p]).sum::<f64>();
                rb.observe(&CostSample {
                    dsmc_move_seconds: sum(Phase::DsmcMove),
                    colli_react_seconds: sum(Phase::ColliReact),
                    pic_move_seconds: sum(Phase::PicMove),
                    neutral_total: neutral.iter().sum(),
                    pair_total: neutral.iter().map(|&n| n * n.saturating_sub(1)).sum(),
                    charged_total: charged.iter().sum(),
                });
            }
            outcome.cost_source = rb.cost_source_name();
            outcome.decomposition = self.decomp.name();
            outcome.cost_rates = rb.cost_rates();
            match rb.step(
                lii,
                &self.xadj,
                &self.adjncy,
                &neutral,
                &charged,
                &self.owner,
                self.ranks,
            ) {
                RebalanceOutcome::Remapped {
                    new_owner,
                    migration_volume,
                    ..
                } => {
                    // migration byte matrix: every particle in a cell
                    // changing hands moves once
                    let k = self.ranks;
                    let mut m = vec![vec![0u64; k]; k];
                    for c in 0..self.owner.len() {
                        let (o, n) = (self.owner[c] as usize, new_owner[c] as usize);
                        if o != n {
                            let load = neutral[c] + charged[c];
                            m[o][n] += (load as f64 * PACKED_SIZE as f64 * self.boost) as u64;
                        }
                    }
                    let cells_eff = (self.owner.len() as f64 * self.grid_boost) as usize;
                    let (s, idx) = self.resolve(&m);
                    let tf = self.traffic_for(s, &m);
                    let t_reb = self.cost.rebalance_time(cells_eff, &tf, s, use_km);
                    for bd in self.per_rank.iter_mut() {
                        bd[Phase::Rebalance] += t_reb;
                    }
                    self.note_exchange(idx, &tf);
                    self.owner = new_owner;
                    self.rebalance_migrated += migration_volume;
                    outcome.rebalanced = true;
                    outcome.migrated = migration_volume;
                    outcome.remap_seconds = t_reb;
                }
                RebalanceOutcome::TooSoon | RebalanceOutcome::Balanced { .. } => {}
            }
        }
        outcome
    }

    /// Step wall time: per phase, the slowest rank holds everyone up
    /// (bulk-synchronous execution).
    fn end_step(&mut self, _eng: &RankEngine, bd: &mut Breakdown) {
        for p in Phase::ALL {
            bd[p] = self.per_rank.iter().map(|r| r[p]).fold(0.0f64, f64::max);
        }
    }

    fn share(&self, eng: &RankEngine) -> Vec<f64> {
        let mut counts = vec![0u64; self.ranks];
        for &c in &eng.particles.cell {
            counts[self.owner[c as usize] as usize] += 1;
        }
        let total = eng.particles.len().max(1) as f64;
        counts.iter().map(|&c| c as f64 / total).collect()
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            strategy_uses: self.strategy_uses,
            rebalances: self.rebalancer.as_ref().map_or(0, |r| r.rebalance_count),
            rebalance_migrated: self.rebalance_migrated,
            transactions: self.total_tx,
            bytes: self.total_bytes,
        }
    }
}

/// Domain-decomposed coupled simulation with modelled timing: one
/// whole-domain [`RankEngine`] plus the [`ModelledBackend`] running
/// through the shared [`StepPipeline`].
pub struct ClusterSim {
    pub state: CoupledState,
    backend: ModelledBackend,
    pipeline: StepPipeline,
    /// Observability config carried from the [`RunConfig`]; honored
    /// by [`ClusterSim::run`] exactly like the other drivers.
    obs: crate::config::ObsConfig,
}

impl ClusterSim {
    /// Build from a [`RunConfig`] on a machine profile. The initial
    /// decomposition is unweighted k-way partitioning (paper §V-B:
    /// "we use METIS to decompose the grid ... solely according to
    /// the number of grid cells").
    pub fn new(run: &RunConfig, profile: MachineProfile) -> Self {
        let state = CoupledState::new(run.sim.clone());
        let (xadj, adjncy) = state.nm.coarse.cell_graph();
        let g = Graph::new(xadj.clone(), adjncy.clone(), vec![1; state.nm.num_coarse()]);
        let ncoarse = state.nm.num_coarse();
        let owner = part_graph_kway(&g, run.ranks, KwayOptions::default());
        let backend = ModelledBackend::new(run, profile, ncoarse, owner, xadj, adjncy);
        ClusterSim {
            state,
            backend,
            pipeline: StepPipeline::default(),
            obs: run.obs.clone(),
        }
    }

    /// Set the MPI rank placement (Fig. 14 experiment).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.backend.cost.placement = placement;
        self
    }

    /// Current coarse-cell ownership: cell → rank.
    pub fn owner(&self) -> &[u32] {
        &self.backend.owner
    }

    /// Fraction of the particle population owned by each rank.
    pub fn particle_share(&self) -> Vec<f64> {
        self.backend.share(&self.state)
    }

    /// Run one DSMC iteration and return the per-step trace.
    pub fn step(&mut self) -> (StepTrace, Breakdown) {
        let idx = self.state.step_count;
        let (_, trace, bd) =
            self.pipeline
                .run_step(&mut self.state, &mut self.backend, &mut NoProbe, idx);
        (trace, bd)
    }

    /// Run `steps` DSMC iterations, returning the aggregate report.
    pub fn run(&mut self, steps: usize) -> ClusterReport {
        let mut builder = ReportBuilder::new();
        let sink = self.obs.trace.make_sink().expect("open trace sink");
        let mut rec = obs::Recorder::new(self.obs.metrics.as_ref(), sink)
            .with_time_average(self.obs.avg_window);
        rec.meta(self.backend.ranks, steps);
        for _ in 0..steps {
            let idx = self.state.step_count;
            {
                let mut observer = obs::Tee(&mut builder, &mut rec);
                self.pipeline
                    .run_step(&mut self.state, &mut self.backend, &mut observer, idx);
            }
            // read-only diagnostic tap, identical to run_serial's: with
            // avg_window == 0 no sample is ever computed
            if self.obs.avg_window > 0 {
                let (neutral, _) = self.state.counts_per_cell();
                let counts: Vec<f64> = neutral.iter().map(|&c| c as f64).collect();
                let density = crate::diag::number_density(
                    &counts,
                    &self.state.nm.coarse.volumes,
                    self.state.species.get(self.state.h_id).weight,
                );
                rec.field_sample("density_h", &density);
                rec.field_sample("phi", self.state.poisson.phi());
            }
        }
        rec.finish();
        let stats = self.backend.stats();
        let mut report = builder.finish();
        report.population = self.state.particles.len();
        report.strategy_uses = stats.strategy_uses;
        report.rebalances = stats.rebalances;
        report.rebalance_migrated = stats.rebalance_migrated;
        report.transactions = stats.transactions;
        report.bytes = stats.bytes;
        let (neutral, _) = self.state.counts_per_cell();
        let counts: Vec<f64> = neutral.iter().map(|&c| c as f64).collect();
        report.density_h = crate::diag::number_density(
            &counts,
            &self.state.nm.coarse.volumes,
            self.state.species.get(self.state.h_id).weight,
        );
        if let Some(avg) = rec.time_average() {
            report.density_h_avg = avg.mean("density_h").unwrap_or_default();
            report.phi_avg = avg.mean("phi").unwrap_or_default();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataset, RunConfig};
    use balance::RebalanceConfig;

    fn run_cfg(ranks: usize, lb: bool, strategy: Strategy) -> RunConfig {
        RunConfig::builder()
            .paper(Dataset::D1, 0.02)
            .seed(11)
            .strategy(strategy)
            .rebalance(lb.then(|| RebalanceConfig {
                t_interval: 5,
                ..RebalanceConfig::default()
            }))
            .ranks(ranks)
            .steps(20)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn initial_partition_covers_all_ranks() {
        let cs = ClusterSim::new(
            &run_cfg(4, true, Strategy::Distributed),
            MachineProfile::tianhe2(),
        );
        for r in 0..4u32 {
            assert!(cs.owner().contains(&r), "rank {r} owns nothing");
        }
    }

    #[test]
    fn imbalance_appears_without_lb() {
        let mut cs = ClusterSim::new(
            &run_cfg(4, false, Strategy::Distributed),
            MachineProfile::tianhe2(),
        );
        let report = cs.run(15);
        // plume fills from the inlet: early steps should show one rank
        // holding the bulk of the particles (paper Fig. 5)
        let max_share = report.trace[5..]
            .iter()
            .map(|t| t.share.iter().copied().fold(0.0f64, f64::max))
            .fold(0.0f64, f64::max);
        assert!(max_share > 0.5, "expected concentration, got {max_share}");
        assert_eq!(report.rebalances, 0);
    }

    #[test]
    fn lb_reduces_total_time() {
        let profile = MachineProfile::tianhe2();
        let t_no = ClusterSim::new(&run_cfg(4, false, Strategy::Distributed), profile)
            .run(20)
            .total_time;
        let t_lb = ClusterSim::new(&run_cfg(4, true, Strategy::Distributed), profile)
            .run(20)
            .total_time;
        assert!(
            t_lb < t_no,
            "load balancing must help on the skewed plume: {t_lb} !< {t_no}"
        );
    }

    #[test]
    fn rebalance_fires_and_improves_share() {
        let mut cs = ClusterSim::new(
            &run_cfg(4, true, Strategy::Distributed),
            MachineProfile::tianhe2(),
        );
        let report = cs.run(25);
        assert!(report.rebalances >= 1, "balancer never fired");
        // after rebalance the worst share should drop well below the
        // no-LB concentration
        let last = report.trace.last().unwrap();
        let max_share = last.share.iter().copied().fold(0.0f64, f64::max);
        assert!(max_share < 0.9, "{max_share}");
    }

    #[test]
    fn breakdown_phases_all_populated() {
        let mut cs = ClusterSim::new(
            &run_cfg(3, true, Strategy::Distributed),
            MachineProfile::tianhe2(),
        );
        let report = cs.run(12);
        assert!(report.breakdown[Phase::Inject] > 0.0);
        assert!(report.breakdown[Phase::DsmcMove] > 0.0);
        assert!(report.breakdown[Phase::PoissonSolve] > 0.0);
        assert!(report.breakdown[Phase::Reindex] > 0.0);
        assert!(report.total_time > 0.0);
        assert_eq!(report.trace.len(), 12);
        // the unified report now carries the density diagnostic too
        assert!(report.density_h.iter().any(|&d| d > 0.0));
    }

    #[test]
    fn fixed_strategy_tallies_every_exchange() {
        let mut cs = ClusterSim::new(
            &run_cfg(4, false, Strategy::Distributed),
            MachineProfile::tianhe2(),
        );
        let report = cs.run(10);
        let [cc, dc, sparse, hier] = report.strategy_uses;
        assert_eq!(cc, 0);
        assert_eq!(sparse, 0);
        assert_eq!(hier, 0);
        // one DSMC exchange plus one per PIC substep, every step
        assert!(dc >= 20, "expected >= 2 exchanges/step, got {dc}");
    }

    #[test]
    fn auto_is_never_slower_than_a_fixed_strategy() {
        let profile = MachineProfile::tianhe2();
        let auto = ClusterSim::new(&run_cfg(4, false, Strategy::Auto), profile).run(15);
        let used: u64 = auto.strategy_uses.iter().sum();
        assert!(used > 0, "auto never resolved a strategy");
        // physics is strategy-independent, and auto picks the argmin
        // of the same per-exchange model, so it can only tie or win
        for s in Strategy::CONCRETE {
            let fixed = ClusterSim::new(&run_cfg(4, false, s), profile).run(15);
            assert_eq!(
                fixed.population, auto.population,
                "physics drifted under {s:?}"
            );
            assert!(
                auto.total_time <= fixed.total_time * (1.0 + 1e-12),
                "auto {} slower than {s:?} {}",
                auto.total_time,
                fixed.total_time
            );
        }
    }

    #[test]
    fn more_ranks_do_not_slow_down_compute_phases() {
        let profile = MachineProfile::tianhe2();
        let r4 = ClusterSim::new(&run_cfg(4, true, Strategy::Distributed), profile).run(15);
        let r16 = ClusterSim::new(&run_cfg(16, true, Strategy::Distributed), profile).run(15);
        // DSMC_Move (pure compute) must speed up with more ranks
        assert!(
            r16.breakdown[Phase::DsmcMove] < r4.breakdown[Phase::DsmcMove],
            "{} !< {}",
            r16.breakdown[Phase::DsmcMove],
            r4.breakdown[Phase::DsmcMove]
        );
    }
}
