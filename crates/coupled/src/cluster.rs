//! The modelled-scale cluster driver (see DESIGN.md §2).
//!
//! Runs the *real* coupled DSMC/PIC algorithm over a real domain
//! decomposition while charging wall time with the analytic
//! [`CostModel`]: per-rank work counts come from actually executing
//! every phase and attributing each unit of work to the rank that
//! owns the cell it happens in; communication is charged from the
//! exact migration byte matrices the exchange protocols would move.
//! This reproduces the paper's scaling experiments (Tables II–VI,
//! Figs 10–15) at rank counts far beyond the local core count.

use crate::config::RunConfig;
use crate::machine::{CostModel, MachineProfile, Placement};
use crate::state::{CoupledState, StepRecord};
use crate::timers::{Breakdown, Phase};
use balance::{load_imbalance_indicator, RebalanceOutcome, Rebalancer};
use dsmc::EXITED;
use partition::{part_graph_kway, Graph, KwayOptions};
use particles::PACKED_SIZE;
use vmpi::{traffic, Strategy};

/// Per-step scalar history of a cluster run.
#[derive(Debug, Clone, Default)]
pub struct StepTrace {
    /// Modelled wall time of this step (max over ranks per phase).
    pub step_time: f64,
    /// Load-imbalance indicator measured this step.
    pub lii: f64,
    /// Particle share per rank (fraction of the population).
    pub share: Vec<f64>,
    /// Whether a rebalance happened this step.
    pub rebalanced: bool,
}

/// Aggregate outcome of a cluster run.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Total modelled wall time (s).
    pub total_time: f64,
    /// Accumulated per-phase times (max over ranks per step, summed).
    pub breakdown: Breakdown,
    /// Number of re-decompositions performed.
    pub rebalances: usize,
    /// Total particles migrated by rebalancing.
    pub rebalance_migrated: u64,
    /// Per-step traces.
    pub trace: Vec<StepTrace>,
    /// Final particle population.
    pub population: usize,
    /// How often each concrete strategy carried an exchange, indexed
    /// by [`Strategy::CONCRETE`] order (CC, DC, Sparse). A fixed
    /// strategy puts every exchange in one bucket; `Strategy::Auto`
    /// spreads them according to the per-step decision rule.
    pub strategy_uses: [u64; 3],
}

/// Domain-decomposed coupled simulation with modelled timing.
pub struct ClusterSim {
    pub state: CoupledState,
    /// Coarse-cell ownership: cell → rank.
    pub owner: Vec<u32>,
    pub strategy: Strategy,
    pub cost: CostModel,
    pub rebalancer: Option<Rebalancer>,
    xadj: Vec<u32>,
    adjncy: Vec<u32>,
    ranks: usize,
    /// Cost-model work multiplier per simulation particle (see
    /// `Dataset::work_boost`).
    boost: f64,
    /// Cost-model multiplier for grid work: paper fine cells / our
    /// fine cells. Restores the paper-scale magnitude of the Poisson
    /// solve and the partitioner (their inputs are mesh-sized, which
    /// the dataset `scale` shrinks).
    grid_boost: f64,
    /// Exchanges carried per concrete strategy (CONCRETE order).
    strategy_uses: [u64; 3],
}

impl ClusterSim {
    /// Build from a [`RunConfig`] on a machine profile. The initial
    /// decomposition is unweighted k-way partitioning (paper §V-B:
    /// "we use METIS to decompose the grid ... solely according to
    /// the number of grid cells").
    pub fn new(run: &RunConfig, profile: MachineProfile) -> Self {
        let state = CoupledState::new(run.sim.clone());
        let (xadj, adjncy) = state.nm.coarse.cell_graph();
        let g = Graph::new(
            xadj.clone(),
            adjncy.clone(),
            vec![1; state.nm.num_coarse()],
        );
        let ncoarse = state.nm.num_coarse();
        let owner = part_graph_kway(&g, run.ranks, KwayOptions::default());
        ClusterSim {
            state,
            owner,
            strategy: run.strategy,
            cost: CostModel::new(profile, run.ranks),
            rebalancer: run.rebalance.map(Rebalancer::new),
            xadj,
            adjncy,
            ranks: run.ranks,
            boost: run.work_boost.max(1.0),
            grid_boost: run
                .paper_cells
                .map(|pc| (pc as f64 / (8.0 * ncoarse as f64)).max(1.0))
                .unwrap_or(1.0),
            strategy_uses: [0; 3],
        }
    }

    /// The strategy that carries this exchange: the configured one,
    /// or — under [`Strategy::Auto`] — the cost model's pick for this
    /// migration matrix. Tallies the choice for the report.
    fn resolve(&mut self, m: &[Vec<u64>]) -> Strategy {
        let s = if self.strategy == Strategy::Auto {
            self.cost.pick_strategy(m)
        } else {
            self.strategy
        };
        let idx = Strategy::CONCRETE
            .iter()
            .position(|&c| c == s)
            .expect("resolved strategy is concrete");
        self.strategy_uses[idx] += 1;
        s
    }

    /// Set the MPI rank placement (Fig. 14 experiment).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.cost.placement = placement;
        self
    }

    /// Fraction of the particle population owned by each rank.
    pub fn particle_share(&self) -> Vec<f64> {
        let mut counts = vec![0u64; self.ranks];
        for &c in &self.state.particles.cell {
            counts[self.owner[c as usize] as usize] += 1;
        }
        let total = self.state.particles.len().max(1) as f64;
        counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Migration byte matrix from `(old_cell, new_cell)` transitions.
    fn migration_matrix(&self, transitions: &[(u32, u32)]) -> Vec<Vec<u64>> {
        let mut m = vec![vec![0u64; self.ranks]; self.ranks];
        for &(oc, nc) in transitions {
            if nc == EXITED {
                continue;
            }
            let (o, n) = (
                self.owner[oc as usize] as usize,
                self.owner[nc as usize] as usize,
            );
            if o != n {
                m[o][n] += (PACKED_SIZE as f64 * self.boost) as u64;
            }
        }
        m
    }

    /// Run one DSMC iteration and return the per-step trace.
    pub fn step(&mut self) -> (StepTrace, Breakdown) {
        let rec: StepRecord = self.state.dsmc_step();
        let k = self.ranks;
        let prof = self.cost.profile;
        let mut per_rank = vec![Breakdown::new(); k];

        // --- Inject: embarrassingly parallel. The production solver
        // generates the inflow cooperatively — every rank creates an
        // equal share of the new particles and ships misplaced ones
        // with the regular exchange — which is what lets the paper's
        // Inject scale near-linearly to 1536 ranks (Table IV:
        // 1622 s -> 31 s).
        let inject_each = rec.injected_cells.len() as f64 * self.boost / k as f64;
        for bd in per_rank.iter_mut() {
            bd[Phase::Inject] += self.cost.compute(inject_each, prof.inject_rate);
        }

        // --- DSMC_Move: each move is charged to the owner of the
        // particle's start-of-step cell.
        let mut moves = vec![0u64; k];
        for &(oc, _) in &rec.neutral_transitions {
            moves[self.owner[oc as usize] as usize] += 1;
        }
        for r in 0..k {
            per_rank[r][Phase::DsmcMove] +=
                self.cost.compute(moves[r] as f64 * self.boost, prof.move_rate);
        }

        // --- DSMC_Exchange: synchronized phase, same cost on all ranks.
        let m = self.migration_matrix(&rec.neutral_transitions);
        let s = self.resolve(&m);
        let t_exc = self.cost.exchange_time(s, &traffic(s, &m));
        for bd in per_rank.iter_mut() {
            bd[Phase::DsmcExchange] += t_exc;
        }

        // --- Colli_React: candidates distributed ∝ n_c(n_c−1) over
        // owned cells.
        let (neutral, charged) = self.state.counts_per_cell();
        let mut pairs = vec![0f64; k];
        let mut total_pairs = 0f64;
        for (c, &n) in neutral.iter().enumerate() {
            let w = n as f64 * (n as f64 - 1.0);
            pairs[self.owner[c] as usize] += w;
            total_pairs += w;
        }
        if total_pairs > 0.0 {
            for r in 0..k {
                let share =
                    pairs[r] / total_pairs * rec.collision_candidates as f64 * self.boost;
                per_rank[r][Phase::ColliReact] +=
                    self.cost.compute(share, prof.collide_rate);
            }
        }

        // --- PIC substeps.
        // grid work at paper scale: more cells mean proportionally more
        // non-zeros and (for CG on a 3-D Laplacian) iterations growing
        // with the 1-D resolution ratio
        let gb = self.grid_boost;
        let nnz = (self.state.poisson.matrix.nnz() as f64 * gb) as usize;
        let nodes = (self.state.poisson.num_nodes() as f64 * gb) as usize;
        for (sub, tr) in rec.charged_transitions.iter().enumerate() {
            let mut moves = vec![0u64; k];
            for &(oc, _) in tr {
                moves[self.owner[oc as usize] as usize] += 1;
            }
            for r in 0..k {
                per_rank[r][Phase::PicMove] +=
                    self.cost.compute(moves[r] as f64 * self.boost, prof.move_rate);
            }
            let m = self.migration_matrix(tr);
            let s = self.resolve(&m);
            let t_exc = self.cost.exchange_time(s, &traffic(s, &m));
            let iters = (rec.poisson_iters[sub] as f64 * gb.cbrt()).ceil() as usize;
            let t_poi = self.cost.poisson_time(iters, nnz, nodes);
            for bd in per_rank.iter_mut() {
                bd[Phase::PicExchange] += t_exc;
                bd[Phase::PoissonSolve] += t_poi;
            }
        }

        // --- Reindex: prefix-scan of counts + local renumber.
        let mut owned = vec![0u64; k];
        for &c in &self.state.particles.cell {
            owned[self.owner[c as usize] as usize] += 1;
        }
        let scan_latency = (k as f64).log2().max(1.0) * self.cost.alpha();
        for r in 0..k {
            per_rank[r][Phase::Reindex] +=
                self.cost.compute(owned[r] as f64 * self.boost, prof.reindex_rate)
                    + scan_latency;
        }

        // --- lii + Rebalance (Algorithm 1).
        // Eq. 6 subtracts the components that are "largely constant"
        // across ranks. In this model Inject is cooperative and
        // rank-constant (like the exchanges and the Poisson solve),
        // so it is excluded from the adjusted compute time as well.
        let times: Vec<balance::RankTimes> = per_rank
            .iter()
            .map(|bd| balance::RankTimes {
                total: bd.total() - bd[Phase::Inject],
                migration: bd.migration(),
                poisson: bd.poisson(),
            })
            .collect();
        let lii = load_imbalance_indicator(&times);
        let mut rebalanced = false;
        let mut migrated = 0u64;
        if let Some(rb) = self.rebalancer.as_mut() {
            let use_km = rb.config.use_km;
            match rb.step(
                lii,
                &self.xadj,
                &self.adjncy,
                &neutral,
                &charged,
                &self.owner,
                k,
            ) {
                RebalanceOutcome::Remapped {
                    new_owner,
                    migration_volume,
                    ..
                } => {
                    // migration byte matrix: every particle in a cell
                    // changing hands moves once
                    let mut m = vec![vec![0u64; k]; k];
                    for c in 0..self.owner.len() {
                        let (o, n) = (self.owner[c] as usize, new_owner[c] as usize);
                        if o != n {
                            let load = neutral[c] + charged[c];
                            m[o][n] +=
                                (load as f64 * PACKED_SIZE as f64 * self.boost) as u64;
                        }
                    }
                    let cells_eff = (self.owner.len() as f64 * self.grid_boost) as usize;
                    let s = self.resolve(&m);
                    let t_reb =
                        self.cost.rebalance_time(cells_eff, &traffic(s, &m), s, use_km);
                    for bd in per_rank.iter_mut() {
                        bd[Phase::Rebalance] += t_reb;
                    }
                    self.owner = new_owner;
                    rebalanced = true;
                    migrated = migration_volume;
                }
                RebalanceOutcome::TooSoon | RebalanceOutcome::Balanced { .. } => {}
            }
        }

        // --- Step wall time: per phase, the slowest rank holds
        // everyone up (bulk-synchronous execution).
        let mut step_bd = Breakdown::new();
        for p in Phase::ALL {
            let mx = per_rank
                .iter()
                .map(|bd| bd[p])
                .fold(0.0f64, f64::max);
            step_bd[p] = mx;
        }

        let trace = StepTrace {
            step_time: step_bd.total(),
            lii,
            share: self.particle_share(),
            rebalanced,
        };
        let _ = migrated;
        (trace, step_bd)
    }

    /// Run `steps` DSMC iterations, returning the aggregate report.
    pub fn run(&mut self, steps: usize) -> ClusterReport {
        let mut report = ClusterReport::default();
        for _ in 0..steps {
            let (trace, bd) = self.step();
            report.total_time += trace.step_time;
            report.breakdown += bd;
            if trace.rebalanced {
                report.rebalances += 1;
            }
            report.trace.push(trace);
        }
        if let Some(rb) = &self.rebalancer {
            report.rebalances = rb.rebalance_count;
        }
        report.population = self.state.particles.len();
        report.strategy_uses = self.strategy_uses;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Dataset, RunConfig};
    use balance::RebalanceConfig;

    fn run_cfg(ranks: usize, lb: bool, strategy: Strategy) -> RunConfig {
        let mut sim = Dataset::D1.config(0.02);
        sim.seed = 11;
        RunConfig {
            sim,
            strategy,
            rebalance: lb.then(|| RebalanceConfig {
                t_interval: 5,
                ..RebalanceConfig::default()
            }),
            ranks,
            steps: 20,
            work_boost: Dataset::D1.work_boost(0.02),
            paper_cells: Some(Dataset::D1.paper_pic_cells()),
            threads_per_rank: 1,
            sort_every: 0,
        }
    }

    #[test]
    fn initial_partition_covers_all_ranks() {
        let cs = ClusterSim::new(&run_cfg(4, true, Strategy::Distributed), MachineProfile::tianhe2());
        for r in 0..4u32 {
            assert!(cs.owner.contains(&r), "rank {r} owns nothing");
        }
    }

    #[test]
    fn imbalance_appears_without_lb() {
        let mut cs = ClusterSim::new(&run_cfg(4, false, Strategy::Distributed), MachineProfile::tianhe2());
        let report = cs.run(15);
        // plume fills from the inlet: early steps should show one rank
        // holding the bulk of the particles (paper Fig. 5)
        let max_share = report.trace[5..]
            .iter()
            .map(|t| t.share.iter().copied().fold(0.0f64, f64::max))
            .fold(0.0f64, f64::max);
        assert!(max_share > 0.5, "expected concentration, got {max_share}");
        assert_eq!(report.rebalances, 0);
    }

    #[test]
    fn lb_reduces_total_time() {
        let profile = MachineProfile::tianhe2();
        let t_no = ClusterSim::new(&run_cfg(4, false, Strategy::Distributed), profile)
            .run(20)
            .total_time;
        let t_lb = ClusterSim::new(&run_cfg(4, true, Strategy::Distributed), profile)
            .run(20)
            .total_time;
        assert!(
            t_lb < t_no,
            "load balancing must help on the skewed plume: {t_lb} !< {t_no}"
        );
    }

    #[test]
    fn rebalance_fires_and_improves_share() {
        let mut cs = ClusterSim::new(&run_cfg(4, true, Strategy::Distributed), MachineProfile::tianhe2());
        let report = cs.run(25);
        assert!(report.rebalances >= 1, "balancer never fired");
        // after rebalance the worst share should drop well below the
        // no-LB concentration
        let last = report.trace.last().unwrap();
        let max_share = last.share.iter().copied().fold(0.0f64, f64::max);
        assert!(max_share < 0.9, "{max_share}");
    }

    #[test]
    fn breakdown_phases_all_populated() {
        let mut cs = ClusterSim::new(&run_cfg(3, true, Strategy::Distributed), MachineProfile::tianhe2());
        let report = cs.run(12);
        assert!(report.breakdown[Phase::Inject] > 0.0);
        assert!(report.breakdown[Phase::DsmcMove] > 0.0);
        assert!(report.breakdown[Phase::PoissonSolve] > 0.0);
        assert!(report.breakdown[Phase::Reindex] > 0.0);
        assert!(report.total_time > 0.0);
        assert_eq!(report.trace.len(), 12);
    }

    #[test]
    fn fixed_strategy_tallies_every_exchange() {
        let mut cs = ClusterSim::new(&run_cfg(4, false, Strategy::Distributed), MachineProfile::tianhe2());
        let report = cs.run(10);
        let [cc, dc, sparse] = report.strategy_uses;
        assert_eq!(cc, 0);
        assert_eq!(sparse, 0);
        // one DSMC exchange plus one per PIC substep, every step
        assert!(dc >= 20, "expected >= 2 exchanges/step, got {dc}");
    }

    #[test]
    fn auto_is_never_slower_than_a_fixed_strategy() {
        let profile = MachineProfile::tianhe2();
        let auto = ClusterSim::new(&run_cfg(4, false, Strategy::Auto), profile).run(15);
        let used: u64 = auto.strategy_uses.iter().sum();
        assert!(used > 0, "auto never resolved a strategy");
        // physics is strategy-independent, and auto picks the argmin
        // of the same per-exchange model, so it can only tie or win
        for s in Strategy::CONCRETE {
            let fixed = ClusterSim::new(&run_cfg(4, false, s), profile).run(15);
            assert_eq!(fixed.population, auto.population, "physics drifted under {s:?}");
            assert!(
                auto.total_time <= fixed.total_time * (1.0 + 1e-12),
                "auto {} slower than {s:?} {}",
                auto.total_time,
                fixed.total_time
            );
        }
    }

    #[test]
    fn more_ranks_do_not_slow_down_compute_phases() {
        let profile = MachineProfile::tianhe2();
        let r4 = ClusterSim::new(&run_cfg(4, true, Strategy::Distributed), profile).run(15);
        let r16 = ClusterSim::new(&run_cfg(16, true, Strategy::Distributed), profile).run(15);
        // DSMC_Move (pure compute) must speed up with more ranks
        assert!(
            r16.breakdown[Phase::DsmcMove] < r4.breakdown[Phase::DsmcMove],
            "{} !< {}",
            r16.breakdown[Phase::DsmcMove],
            r4.breakdown[Phase::DsmcMove]
        );
    }
}
