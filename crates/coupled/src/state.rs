//! Shared simulation state of the coupled DSMC/PIC solver.
//!
//! The per-rank state and the timestep itself live in
//! [`crate::engine`]: [`CoupledState`] is the whole-domain
//! [`RankEngine`] (one engine owning every cell, serial pool, full
//! injector), and [`CoupledState::dsmc_step`] drives the one
//! [`crate::engine::StepPipeline`] with the serial backend — Inject →
//! DSMC_Move → Colli_React → `R ×` (PIC_Move → Poisson_Solve) →
//! Reindex (paper Fig. 1) — returning a [`StepRecord`] with every
//! work quantity the serial validator and the modelled cluster driver
//! need.

use crate::engine::RankEngine;
use dsmc::ReactStats;

/// All state of one coupled simulation (physics only — ownership and
/// communication live in the drivers/backends). Alias of the unified
/// per-rank engine.
pub type CoupledState = RankEngine;

/// Work quantities of one DSMC iteration, for timing attribution.
#[derive(Debug, Clone, Default)]
pub struct StepRecord {
    /// Coarse cell of every particle injected this step.
    pub injected_cells: Vec<u32>,
    /// `(old_cell, new_cell)` per neutral moved in DSMC_Move
    /// (`new_cell == dsmc::EXITED` when it left the domain).
    pub neutral_transitions: Vec<(u32, u32)>,
    /// Same, per PIC substep, for charged particles.
    pub charged_transitions: Vec<Vec<(u32, u32)>>,
    /// NTC candidates examined.
    pub collision_candidates: usize,
    /// Accepted collisions.
    pub collisions: usize,
    /// Reaction counts.
    pub reactions: ReactStats,
    /// CG iterations of each PIC substep's Poisson solve.
    pub poisson_iters: Vec<usize>,
    /// Particles removed at the boundaries this step.
    pub exited: usize,
    /// Particles absorbed by the partial pump this step (disjoint
    /// from `exited`; always 0 when `pump_prob` is unset).
    pub pumped: usize,
    /// Particle population after the step.
    pub population: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Dataset;

    fn small_state() -> CoupledState {
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 7;
        CoupledState::new(cfg)
    }

    #[test]
    fn step_injects_and_grows_population() {
        let mut st = small_state();
        let rec = st.dsmc_step();
        assert!(!rec.injected_cells.is_empty(), "must inject particles");
        assert_eq!(rec.population, st.particles.len());
        assert!(!st.particles.is_empty());
        assert_eq!(rec.poisson_iters.len(), st.config.pic_per_dsmc);
        assert_eq!(rec.charged_transitions.len(), st.config.pic_per_dsmc);
    }

    #[test]
    fn population_reaches_quasi_steady_state() {
        let mut st = small_state();
        let mut pops = Vec::new();
        for _ in 0..60 {
            pops.push(st.dsmc_step().population);
        }
        // population grows at first then saturates (injection balanced
        // by outflow): the last-10 mean must be within 3x of the
        // mid-run mean and nonzero
        let mid: f64 = pops[25..35].iter().sum::<usize>() as f64 / 10.0;
        let end: f64 = pops[50..60].iter().sum::<usize>() as f64 / 10.0;
        assert!(end > 0.0);
        assert!(
            end < 3.0 * mid + 100.0,
            "population must not diverge: {pops:?}"
        );
    }

    #[test]
    fn particles_track_cells() {
        let mut st = small_state();
        for _ in 0..5 {
            st.dsmc_step();
        }
        for p in st.particles.iter() {
            assert!(
                st.nm.coarse.contains(p.cell as usize, p.pos, 1e-5),
                "particle/cell desync"
            );
        }
    }

    #[test]
    fn transitions_cover_all_moved_neutrals() {
        let mut st = small_state();
        st.dsmc_step();
        let rec = st.dsmc_step();
        // every neutral present at move time produces one record
        let exited_neutrals = rec
            .neutral_transitions
            .iter()
            .filter(|&&(_, n)| n == dsmc::EXITED)
            .count();
        let survived = rec.neutral_transitions.len() - exited_neutrals;
        let neutrals_now = st
            .particles
            .species
            .iter()
            .filter(|&&s| s == st.h_id)
            .count();
        // survivors can since have reacted, so allow slack of the
        // reaction counts
        let slack =
            rec.reactions.dissociations + rec.reactions.recombinations + rec.injected_cells.len();
        assert!(
            (neutrals_now as i64 - survived as i64).unsigned_abs() as usize <= slack,
            "{neutrals_now} vs {survived} (slack {slack})"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = small_state();
        let mut b = small_state();
        for _ in 0..3 {
            a.dsmc_step();
            b.dsmc_step();
        }
        assert_eq!(a.particles.len(), b.particles.len());
        for i in 0..a.particles.len() {
            assert_eq!(a.particles.pos(i), b.particles.pos(i));
        }
    }

    #[test]
    fn counts_per_cell_sum_to_population() {
        let mut st = small_state();
        for _ in 0..4 {
            st.dsmc_step();
        }
        let (n, c) = st.counts_per_cell();
        let total: u64 = n.iter().sum::<u64>() + c.iter().sum::<u64>();
        assert_eq!(total as usize, st.particles.len());
    }
}
