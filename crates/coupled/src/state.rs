//! Shared simulation state and the coupled DSMC/PIC timestep
//! (paper Fig. 1).
//!
//! One [`CoupledState`] owns the dual grids, the particle population
//! and all physics sub-models. [`CoupledState::dsmc_step`] executes
//! one full DSMC iteration — Inject → DSMC_Move → Colli_React →
//! `R ×` (PIC_Move → Poisson_Solve) → Reindex — and returns a
//! [`StepRecord`] with every work quantity the serial validator, the
//! threaded runner and the modelled cluster driver need.

use crate::config::SimConfig;
use dsmc::{
    move_particles_tracked, ChemistryModel, CollisionEvent, CollisionModel,
    CrossCollisionModel, Injector, MoveStats, ReactStats,
};
use mesh::NestedMesh;
use particles::{ParticleBuffer, SpeciesTable};
use pic::{accelerate_charged, deposit_charge, ElectricField, PoissonSolver};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparse::KrylovOptions;

/// Work quantities of one DSMC iteration, for timing attribution.
#[derive(Debug, Clone, Default)]
pub struct StepRecord {
    /// Coarse cell of every particle injected this step.
    pub injected_cells: Vec<u32>,
    /// `(old_cell, new_cell)` per neutral moved in DSMC_Move
    /// (`new_cell == dsmc::EXITED` when it left the domain).
    pub neutral_transitions: Vec<(u32, u32)>,
    /// Same, per PIC substep, for charged particles.
    pub charged_transitions: Vec<Vec<(u32, u32)>>,
    /// NTC candidates examined.
    pub collision_candidates: usize,
    /// Accepted collisions.
    pub collisions: usize,
    /// Reaction counts.
    pub reactions: ReactStats,
    /// CG iterations of each PIC substep's Poisson solve.
    pub poisson_iters: Vec<usize>,
    /// Particles removed at the boundaries this step.
    pub exited: usize,
    /// Particle population after the step.
    pub population: usize,
}

/// All state of one coupled simulation (physics only — ownership and
/// communication live in the drivers).
pub struct CoupledState {
    pub config: SimConfig,
    pub nm: NestedMesh,
    pub species: SpeciesTable,
    pub h_id: u8,
    pub hp_id: u8,
    pub particles: ParticleBuffer,
    pub injector: Injector,
    pub collisions: CollisionModel,
    pub cross: CrossCollisionModel,
    pub chemistry: ChemistryModel,
    pub poisson: PoissonSolver,
    pub efield: ElectricField,
    pub rng: StdRng,
    /// DSMC iterations completed.
    pub step_count: usize,
    events: Vec<CollisionEvent>,
}

impl CoupledState {
    /// Build the dual grids and all sub-models from a configuration.
    pub fn new(config: SimConfig) -> Self {
        let spec = config.nozzle;
        let coarse = spec.generate();
        let nm = NestedMesh::from_coarse(coarse, move |c, n| spec.classify(c, n));
        let (species, h_id, hp_id) =
            SpeciesTable::hydrogen_plasma(config.weight_h, config.weight_hplus);
        let injector = Injector::new(&nm.coarse);
        let collisions = CollisionModel::new(nm.num_coarse(), &species, config.t_inject);
        let poisson = PoissonSolver::new(
            &nm.fine,
            KrylovOptions {
                rtol: 1e-6,
                max_iters: 1000,
            },
        );
        let efield = ElectricField::zeros(&nm.fine);
        let rng = StdRng::seed_from_u64(config.seed);
        CoupledState {
            config,
            nm,
            species,
            h_id,
            hp_id,
            particles: ParticleBuffer::new(),
            injector,
            collisions,
            cross: CrossCollisionModel::default(),
            chemistry: ChemistryModel::default(),
            poisson,
            efield,
            rng,
            step_count: 0,
            events: Vec::new(),
        }
    }

    /// Per-step injection rate (simulation particles) for H.
    pub fn h_rate(&self) -> f64 {
        self.injector.particles_per_step(
            self.config.density_h,
            self.config.v_drift,
            self.config.dt_dsmc,
            self.config.weight_h,
        )
    }

    /// Per-step injection rate (simulation particles) for H⁺.
    pub fn ion_rate(&self) -> f64 {
        self.injector.particles_per_step(
            self.config.density_hplus,
            self.config.v_drift,
            self.config.dt_dsmc,
            self.config.weight_hplus,
        )
    }

    /// Execute one full DSMC iteration (paper Fig. 1 workflow).
    pub fn dsmc_step(&mut self) -> StepRecord {
        let mut rec = StepRecord::default();
        let cfg = self.config.clone();
        let dt = cfg.dt_dsmc;

        // --- Inject -------------------------------------------------
        let before = self.particles.len();
        let h_rate = self.h_rate();
        let ion_rate = self.ion_rate();
        let h_sp = self.species.get(self.h_id).clone();
        let ion_sp = self.species.get(self.hp_id).clone();
        self.injector.inject(
            &self.nm.coarse,
            &mut self.particles,
            self.h_id,
            &h_sp,
            h_rate,
            cfg.v_drift,
            cfg.t_inject,
            &mut self.rng,
        );
        self.injector.inject(
            &self.nm.coarse,
            &mut self.particles,
            self.hp_id,
            &ion_sp,
            ion_rate,
            cfg.v_drift,
            cfg.t_inject,
            &mut self.rng,
        );
        rec.injected_cells
            .extend_from_slice(&self.particles.cell[before..]);

        // --- DSMC_Move (neutrals) ------------------------------------
        let h_id = self.h_id;
        let stats: MoveStats = move_particles_tracked(
            &self.nm.coarse,
            &mut self.particles,
            &self.species,
            dt,
            cfg.t_wall,
            &mut self.rng,
            |s| s == h_id,
            Some(&mut rec.neutral_transitions),
        );
        rec.exited += stats.exited;

        // --- Colli_React ---------------------------------------------
        self.events.clear();
        let cstats = self.collisions.collide(
            &self.nm.coarse,
            &mut self.particles,
            &self.species,
            self.h_id,
            dt,
            &mut self.rng,
            &mut self.events,
        );
        rec.collision_candidates = cstats.candidates;
        rec.collisions = cstats.collisions;
        if cfg.cross_collisions {
            let xstats = self.cross.collide(
                &self.nm.coarse,
                &mut self.particles,
                &self.species,
                self.h_id,
                self.hp_id,
                dt,
                &mut self.rng,
                &mut self.events,
            );
            rec.collision_candidates += xstats.candidates;
            rec.collisions += xstats.mex + xstats.cex;
        }
        let r1 = self.chemistry.react_collisions(
            &mut self.particles,
            &self.species,
            self.h_id,
            self.hp_id,
            &self.events,
            &mut self.rng,
        );
        let r2 = self.chemistry.recombine(
            &self.nm.coarse,
            &mut self.particles,
            &self.species,
            self.h_id,
            self.hp_id,
            dt,
            &mut self.rng,
        );
        rec.reactions = ReactStats {
            dissociations: r1.dissociations + r2.dissociations,
            recombinations: r1.recombinations + r2.recombinations,
        };

        // --- PIC substeps ---------------------------------------------
        let dt_pic = cfg.dt_pic();
        let hp_id = self.hp_id;
        for _ in 0..cfg.pic_per_dsmc {
            // PIC_Move: kick with the *previous* step's field, then
            // advect (paper §III-B: "driven by the electric field of
            // the previous timestep")
            accelerate_charged(
                &self.nm,
                &mut self.particles,
                &self.species,
                &self.efield,
                cfg.b_field,
                dt_pic,
            );
            let mut tr = Vec::new();
            let stats = move_particles_tracked(
                &self.nm.coarse,
                &mut self.particles,
                &self.species,
                dt_pic,
                cfg.t_wall,
                &mut self.rng,
                |s| s == hp_id,
                Some(&mut tr),
            );
            rec.exited += stats.exited;
            rec.charged_transitions.push(tr);

            // Poisson_Solve: deposit, solve, refresh E
            let node_charge = deposit_charge(&self.nm, &self.particles, &self.species);
            let (phi, pstats) = self.poisson.solve(&node_charge);
            self.efield = ElectricField::from_potential(&self.nm.fine, phi);
            rec.poisson_iters.push(pstats.iterations);
        }

        // --- Reindex ---------------------------------------------------
        self.particles.renumber(0);

        self.step_count += 1;
        rec.population = self.particles.len();
        rec
    }

    /// Neutral / charged particle counts per coarse cell.
    pub fn counts_per_cell(&self) -> (Vec<u64>, Vec<u64>) {
        let nc = self.nm.num_coarse();
        let mut neutral = vec![0u64; nc];
        let mut charged = vec![0u64; nc];
        for i in 0..self.particles.len() {
            let c = self.particles.cell[i] as usize;
            if self.particles.species[i] == self.h_id {
                neutral[c] += 1;
            } else {
                charged[c] += 1;
            }
        }
        (neutral, charged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Dataset;

    fn small_state() -> CoupledState {
        let mut cfg = Dataset::D1.config(0.02);
        cfg.seed = 7;
        CoupledState::new(cfg)
    }

    #[test]
    fn step_injects_and_grows_population() {
        let mut st = small_state();
        let rec = st.dsmc_step();
        assert!(!rec.injected_cells.is_empty(), "must inject particles");
        assert_eq!(rec.population, st.particles.len());
        assert!(!st.particles.is_empty());
        assert_eq!(rec.poisson_iters.len(), st.config.pic_per_dsmc);
        assert_eq!(rec.charged_transitions.len(), st.config.pic_per_dsmc);
    }

    #[test]
    fn population_reaches_quasi_steady_state() {
        let mut st = small_state();
        let mut pops = Vec::new();
        for _ in 0..60 {
            pops.push(st.dsmc_step().population);
        }
        // population grows at first then saturates (injection balanced
        // by outflow): the last-10 mean must be within 3x of the
        // mid-run mean and nonzero
        let mid: f64 = pops[25..35].iter().sum::<usize>() as f64 / 10.0;
        let end: f64 = pops[50..60].iter().sum::<usize>() as f64 / 10.0;
        assert!(end > 0.0);
        assert!(end < 3.0 * mid + 100.0, "population must not diverge: {pops:?}");
    }

    #[test]
    fn particles_track_cells() {
        let mut st = small_state();
        for _ in 0..5 {
            st.dsmc_step();
        }
        for p in st.particles.iter() {
            assert!(
                st.nm.coarse.contains(p.cell as usize, p.pos, 1e-5),
                "particle/cell desync"
            );
        }
    }

    #[test]
    fn transitions_cover_all_moved_neutrals() {
        let mut st = small_state();
        st.dsmc_step();
        let rec = st.dsmc_step();
        // every neutral present at move time produces one record
        let exited_neutrals = rec
            .neutral_transitions
            .iter()
            .filter(|&&(_, n)| n == dsmc::EXITED)
            .count();
        let survived = rec.neutral_transitions.len() - exited_neutrals;
        let neutrals_now = st
            .particles
            .species
            .iter()
            .filter(|&&s| s == st.h_id)
            .count();
        // survivors can since have reacted, so allow slack of the
        // reaction counts
        let slack = rec.reactions.dissociations + rec.reactions.recombinations
            + rec.injected_cells.len();
        assert!(
            (neutrals_now as i64 - survived as i64).unsigned_abs() as usize <= slack,
            "{neutrals_now} vs {survived} (slack {slack})"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = small_state();
        let mut b = small_state();
        for _ in 0..3 {
            a.dsmc_step();
            b.dsmc_step();
        }
        assert_eq!(a.particles.len(), b.particles.len());
        for i in 0..a.particles.len() {
            assert_eq!(a.particles.pos[i], b.particles.pos[i]);
        }
    }

    #[test]
    fn counts_per_cell_sum_to_population() {
        let mut st = small_state();
        for _ in 0..4 {
            st.dsmc_step();
        }
        let (n, c) = st.counts_per_cell();
        let total: u64 = n.iter().sum::<u64>() + c.iter().sum::<u64>();
        assert_eq!(total as usize, st.particles.len());
    }
}
