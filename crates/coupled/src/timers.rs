//! Per-phase time accounting, mirroring the breakdown the paper
//! reports in Table IV.
//!
//! The types themselves — [`Phase`] and [`Breakdown`] — now live in
//! the `obs` crate so observers, sinks and exporters share one phase
//! vocabulary without depending on the solver; this module re-exports
//! them under their historical paths and adds the solver-side
//! [`BreakdownExt`] conversion into the balance crate's rank times.
//! The old ad-hoc `Stopwatch` is gone: wall-clock phase attribution
//! goes through [`obs::SpanTimer`] (see
//! [`crate::engine::WallClock`]).

pub use obs::{Breakdown, Phase};

/// Solver-side extensions of [`Breakdown`] (defined here because
/// `obs` cannot depend on the `balance` crate).
pub trait BreakdownExt {
    /// Convert to the balance crate's [`balance::RankTimes`].
    fn rank_times(&self) -> balance::RankTimes;
}

impl BreakdownExt for Breakdown {
    fn rank_times(&self) -> balance::RankTimes {
        balance::RankTimes {
            total: self.total(),
            migration: self.migration(),
            poisson: self.poisson(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_times_conversion() {
        let mut b = Breakdown::new();
        b[Phase::DsmcMove] = 4.0;
        b[Phase::DsmcExchange] = 1.0;
        b[Phase::PicExchange] = 0.5;
        b[Phase::PoissonSolve] = 2.0;
        let rt = b.rank_times();
        assert_eq!(rt.total, 7.5);
        assert_eq!(rt.migration, 1.5);
        assert_eq!(rt.poisson, 2.0);
        assert_eq!(rt.adjusted(), 4.0);
    }
}
