//! Per-phase time accounting, mirroring the breakdown the paper
//! reports in Table IV.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut};

/// The solver phases of Fig. 1 that we time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    Inject,
    DsmcMove,
    DsmcExchange,
    ColliReact,
    PicMove,
    PicExchange,
    PoissonSolve,
    Reindex,
    Rebalance,
}

impl Phase {
    /// All phases, in the paper's reporting order.
    pub const ALL: [Phase; 9] = [
        Phase::DsmcMove,
        Phase::DsmcExchange,
        Phase::Inject,
        Phase::PicMove,
        Phase::PicExchange,
        Phase::PoissonSolve,
        Phase::Reindex,
        Phase::ColliReact,
        Phase::Rebalance,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Inject => "Inject",
            Phase::DsmcMove => "DSMC_Move",
            Phase::DsmcExchange => "DSMC_Exchange",
            Phase::ColliReact => "Colli_React",
            Phase::PicMove => "PIC_Move",
            Phase::PicExchange => "PIC_Exchange",
            Phase::PoissonSolve => "Poisson_Solve",
            Phase::Reindex => "Reindex",
            Phase::Rebalance => "Rebalance",
        }
    }

    fn idx(self) -> usize {
        match self {
            Phase::Inject => 0,
            Phase::DsmcMove => 1,
            Phase::DsmcExchange => 2,
            Phase::ColliReact => 3,
            Phase::PicMove => 4,
            Phase::PicExchange => 5,
            Phase::PoissonSolve => 6,
            Phase::Reindex => 7,
            Phase::Rebalance => 8,
        }
    }
}

/// Seconds per phase.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Breakdown {
    t: [f64; 9],
}

impl Breakdown {
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Total time across all phases.
    pub fn total(&self) -> f64 {
        self.t.iter().sum()
    }

    /// Time in the two exchange phases (the `pm` term of eq. 6).
    pub fn migration(&self) -> f64 {
        self[Phase::DsmcExchange] + self[Phase::PicExchange]
    }

    /// The `poi` term of eq. 6.
    pub fn poisson(&self) -> f64 {
        self[Phase::PoissonSolve]
    }

    /// Convert to the balance crate's [`balance::RankTimes`].
    pub fn rank_times(&self) -> balance::RankTimes {
        balance::RankTimes {
            total: self.total(),
            migration: self.migration(),
            poisson: self.poisson(),
        }
    }
}

impl Index<Phase> for Breakdown {
    type Output = f64;
    fn index(&self, p: Phase) -> &f64 {
        &self.t[p.idx()]
    }
}

impl IndexMut<Phase> for Breakdown {
    fn index_mut(&mut self, p: Phase) -> &mut f64 {
        &mut self.t[p.idx()]
    }
}

impl Add for Breakdown {
    type Output = Breakdown;
    fn add(self, o: Breakdown) -> Breakdown {
        let mut out = self;
        out += o;
        out
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, o: Breakdown) {
        for (a, b) in self.t.iter_mut().zip(o.t) {
            *a += b;
        }
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in Phase::ALL {
            writeln!(f, "{:>14}: {:>10.3} s", p.name(), self[p])?;
        }
        writeln!(f, "{:>14}: {:>10.3} s", "TOTAL", self.total())
    }
}

/// Wall-clock stopwatch for real (threaded / serial) runs.
///
/// `lap` reads the clock exactly **once** and reuses that instant as
/// the start of the next lap, so consecutive laps tile the timeline
/// with no gaps: the phase times of a breakdown filled solely by laps
/// sum to exactly the origin-to-last-lap wall time.
#[derive(Debug)]
pub struct Stopwatch {
    origin: std::time::Instant,
    start: std::time::Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        let now = std::time::Instant::now();
        Stopwatch {
            origin: now,
            start: now,
        }
    }

    /// Elapsed seconds since the last lap (or construction).
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed seconds since construction.
    pub fn since_origin(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Add the elapsed time to `bd[phase]` and restart, using a
    /// single clock read for both.
    pub fn lap(&mut self, bd: &mut Breakdown, phase: Phase) {
        let now = std::time::Instant::now();
        bd[phase] += (now - self.start).as_secs_f64();
        self.start = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_total() {
        let mut b = Breakdown::new();
        b[Phase::Inject] = 1.5;
        b[Phase::PoissonSolve] = 2.0;
        assert_eq!(b[Phase::Inject], 1.5);
        assert!((b.total() - 3.5).abs() < 1e-15);
        assert_eq!(b.poisson(), 2.0);
    }

    #[test]
    fn add_merges_phases() {
        let mut a = Breakdown::new();
        a[Phase::DsmcMove] = 1.0;
        let mut b = Breakdown::new();
        b[Phase::DsmcMove] = 2.0;
        b[Phase::PicExchange] = 0.5;
        let c = a + b;
        assert_eq!(c[Phase::DsmcMove], 3.0);
        assert_eq!(c.migration(), 0.5);
    }

    #[test]
    fn rank_times_conversion() {
        let mut b = Breakdown::new();
        b[Phase::DsmcMove] = 4.0;
        b[Phase::DsmcExchange] = 1.0;
        b[Phase::PicExchange] = 0.5;
        b[Phase::PoissonSolve] = 2.0;
        let rt = b.rank_times();
        assert_eq!(rt.total, 7.5);
        assert_eq!(rt.migration, 1.5);
        assert_eq!(rt.poisson, 2.0);
        assert_eq!(rt.adjusted(), 4.0);
    }

    #[test]
    fn all_phases_have_unique_indices() {
        let mut seen = [false; 9];
        for p in Phase::ALL {
            assert!(!seen[p.idx()], "duplicate index for {p:?}");
            seen[p.idx()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stopwatch_measures_time() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut b = Breakdown::new();
        sw.lap(&mut b, Phase::Reindex);
        assert!(b[Phase::Reindex] >= 0.004);
    }

    #[test]
    fn laps_tile_the_timeline_without_gaps() {
        // phase times must sum to (essentially) the total wall time:
        // each lap reuses one clock read as start of the next lap
        let mut sw = Stopwatch::start();
        let mut b = Breakdown::new();
        for (k, p) in Phase::ALL.iter().enumerate() {
            if k % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            sw.lap(&mut b, *p);
        }
        let total = sw.since_origin();
        // all origin-to-last-lap time is attributed to some phase;
        // only the time after the final lap is unaccounted
        assert!(b.total() <= total);
        assert!(
            total - b.total() < 1e-3,
            "gap {} s between phase sum {} and wall {}",
            total - b.total(),
            b.total(),
            total
        );
    }
}
