//! The shared run report of every driver, plus minimal table/CSV
//! rendering for the experiment binaries (so every bench prints rows
//! in the same layout the paper's tables use).

use crate::job::JobMeta;
use crate::timers::{Breakdown, Phase};
use obs::json::{obj, Json};
use obs::Observer;
use std::fmt::Write as _;

pub use obs::StepTrace;

/// Unified result of a coupled run. The serial, threaded and
/// modelled-cluster drivers all return this one type (the old
/// `ThreadedRunResult` / `ClusterReport` are aliases of it), so every
/// consumer gets the same breakdown, traffic and per-step trace
/// regardless of which backend produced it.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// H number density per coarse cell at the end of the run.
    pub density_h: Vec<f64>,
    /// Trailing time-averaged H number density per coarse cell
    /// (empty unless `ObsConfig::avg_window > 0` on a serial or
    /// modelled run).
    pub density_h_avg: Vec<f64>,
    /// Trailing time-averaged electric potential per fine node (same
    /// opt-in as `density_h_avg`; kept out of the JSON export, which
    /// only carries coarse-cell fields).
    pub phi_avg: Vec<f64>,
    /// Final global particle population.
    pub population: usize,
    /// Total wall time attributed to phases (measured or modelled).
    pub total_time: f64,
    /// Accumulated per-phase times (rank 0's measurement for the
    /// threaded backend; max over ranks per step for the cluster).
    pub breakdown: Breakdown,
    /// Total messages sent in the world during the stepped run —
    /// measured for the threaded backend, protocol-predicted for the
    /// modelled one, 0 for serial. Always equals the sum of the
    /// per-step [`StepTrace::transactions`] exactly (end-of-run
    /// diagnostics collectives are not counted).
    pub transactions: u64,
    /// Total bytes sent in the world during the stepped run (same
    /// provenance and exact-sum property as `transactions`).
    pub bytes: u64,
    /// Number of rebalances performed.
    pub rebalances: usize,
    /// Total particles migrated by rebalancing.
    pub rebalance_migrated: u64,
    /// Exchanges carried per concrete strategy, indexed by
    /// [`vmpi::Strategy::CONCRETE`] order (CC, DC, Sparse, Hier).
    /// Under [`vmpi::Strategy::Auto`] the per-exchange decision rule
    /// fills whichever buckets it picks; a fixed strategy fills one.
    pub strategy_uses: [u64; 4],
    /// Times the run restored from a checkpoint and replayed after a
    /// detected rank death
    /// ([`crate::config::FaultPolicy::RestartFromCheckpoint`]); 0 on a
    /// fault-free run.
    pub recoveries: usize,
    /// Journal retransmissions the reliability sublayer performed to
    /// recover dropped or late messages (threaded runs under a
    /// [`vmpi::FaultPlan`]; 0 on a clean wire).
    pub comm_retries: u64,
    /// Duplicate frames the reliability sublayer discarded by
    /// sequence-number dedup.
    pub comm_dedup_dropped: u64,
    /// Faults the chaos layer injected (drops + duplicates + delays,
    /// cumulative across recovery replays).
    pub faults_injected: u64,
    /// Per-step traces.
    pub trace: Vec<StepTrace>,
    /// Provenance stamp when the report was served by the job server
    /// (schema v2 `"job"` key): job id, canonical config hash, cache
    /// hit, queue/run wall times. `None` for direct engine runs —
    /// the key is simply absent from the JSON, keeping v2 documents
    /// readable by v1 consumers.
    pub job: Option<JobMeta>,
}

impl RunReport {
    /// Versioned JSON export of the whole report (schema version
    /// [`obs::SCHEMA_VERSION`]); pass a registry snapshot to embed
    /// the run's metrics under a `"metrics"` key.
    pub fn to_json(&self, metrics: Option<&obs::MetricsSnapshot>) -> Json {
        let mut fields = vec![
            ("schema_version", Json::U64(obs::SCHEMA_VERSION as u64)),
            ("population", Json::U64(self.population as u64)),
            ("total_time", Json::Num(self.total_time)),
            (
                "breakdown",
                obj(Phase::ALL
                    .iter()
                    .map(|&p| (p.name(), Json::Num(self.breakdown[p])))
                    .collect()),
            ),
            ("transactions", Json::U64(self.transactions)),
            ("bytes", Json::U64(self.bytes)),
            ("rebalances", Json::U64(self.rebalances as u64)),
            ("rebalance_migrated", Json::U64(self.rebalance_migrated)),
            (
                "strategy_uses",
                obj(obs::STRATEGY_NAMES
                    .iter()
                    .zip(self.strategy_uses)
                    .map(|(&n, u)| (n, Json::U64(u)))
                    .collect()),
            ),
            ("recoveries", Json::U64(self.recoveries as u64)),
            ("comm_retries", Json::U64(self.comm_retries)),
            ("comm_dedup_dropped", Json::U64(self.comm_dedup_dropped)),
            ("faults_injected", Json::U64(self.faults_injected)),
            ("steps", Json::U64(self.trace.len() as u64)),
            (
                "density_h",
                Json::Arr(self.density_h.iter().map(|&d| Json::Num(d)).collect()),
            ),
        ];
        if !self.density_h_avg.is_empty() {
            fields.push((
                "density_h_avg",
                Json::Arr(self.density_h_avg.iter().map(|&d| Json::Num(d)).collect()),
            ));
        }
        if let Some(meta) = &self.job {
            fields.push(("job", meta.to_json()));
        }
        if let Some(snap) = metrics {
            fields.push(("metrics", snap.to_json()));
        }
        obj(fields)
    }
}

/// An [`Observer`] that accumulates phase times and step traces into
/// a [`RunReport`]; the driver fills in the end-of-run fields
/// (diagnostics, traffic, backend counters) and calls
/// [`ReportBuilder::finish`].
#[derive(Debug, Default)]
pub struct ReportBuilder {
    report: RunReport,
}

impl ReportBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn finish(self) -> RunReport {
        self.report
    }
}

impl Observer for ReportBuilder {
    fn phase(&mut self, phase: Phase, seconds: f64) {
        self.report.breakdown[phase] += seconds;
        self.report.total_time += seconds;
    }

    fn step(&mut self, _index: usize, trace: &StepTrace) {
        self.report.trace.push(trace.clone());
    }
}

/// Render an aligned text table. `headers.len()` must match every
/// row's length.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut width: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (w, cell) in width.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let hline: String = width
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    for (h, w) in headers.iter().zip(&width) {
        let _ = write!(out, " {h:>w$} |");
    }
    out.pop();
    out.push('\n');
    out.push_str(&hline);
    out.push('\n');
    for row in rows {
        for (cell, w) in row.iter().zip(&width) {
            let _ = write!(out, " {cell:>w$} |");
        }
        out.pop();
        out.push('\n');
    }
    out
}

/// Render rows as CSV (no quoting — experiment output is numeric).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Format seconds with one decimal, like the paper's tables.
pub fn secs(t: f64) -> String {
    format!("{t:.1}")
}

/// Format a speedup/ratio with two decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["procs", "time"],
            &[
                vec!["24".into(), "2258.5".into()],
                vec!["1536".into(), "245.8".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("procs"));
        assert!(lines[2].contains("2258.5"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_roundtrip() {
        let c = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn report_json_is_versioned_and_parseable() {
        let mut report = RunReport {
            population: 123,
            transactions: 45,
            bytes: 6789,
            strategy_uses: [1, 2, 3, 4],
            density_h: vec![0.5, 1.5],
            ..RunReport::default()
        };
        report.breakdown[Phase::PoissonSolve] = 2.0;
        let reg = obs::Registry::new();
        reg.counter("engine.steps").add(4);
        let text = report.to_json(Some(&reg.snapshot())).to_string();
        let v = obs::json::parse(&text).unwrap();
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(obs::SCHEMA_VERSION as u64)
        );
        assert_eq!(v.get("transactions").unwrap().as_u64(), Some(45));
        assert_eq!(
            v.get("breakdown")
                .unwrap()
                .get("Poisson_Solve")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
        assert_eq!(
            v.get("strategy_uses")
                .unwrap()
                .get("Sparse")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert_eq!(v.get("metrics").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn report_json_carries_fault_counters() {
        let report = RunReport {
            recoveries: 2,
            comm_retries: 17,
            comm_dedup_dropped: 5,
            faults_injected: 31,
            ..RunReport::default()
        };
        let v = obs::json::parse(&report.to_json(None).to_string()).unwrap();
        assert_eq!(v.get("recoveries").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("comm_retries").unwrap().as_u64(), Some(17));
        assert_eq!(v.get("comm_dedup_dropped").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("faults_injected").unwrap().as_u64(), Some(31));
    }

    #[test]
    fn schema_v2_adds_job_as_strict_superset_of_v1() {
        // Every key a v1 document had (frozen list — do not derive it
        // from the code, the point is catching accidental removals).
        const V1_KEYS: &[&str] = &[
            "schema_version",
            "population",
            "total_time",
            "breakdown",
            "transactions",
            "bytes",
            "rebalances",
            "rebalance_migrated",
            "strategy_uses",
            "recoveries",
            "comm_retries",
            "comm_dedup_dropped",
            "faults_injected",
            "steps",
            "density_h",
        ];
        let plain = RunReport::default();
        let v = obs::json::parse(&plain.to_json(None).to_string()).unwrap();
        for key in V1_KEYS {
            assert!(v.get(key).is_some(), "v1 key {key} missing from v2");
        }
        // A direct engine run omits the job key entirely, so a v1
        // consumer that iterates known keys sees exactly what it did.
        assert!(v.get("job").is_none());
        assert_eq!(v.get("schema_version").unwrap().as_u64(), Some(2));

        // A server-stamped report adds the job object on top.
        let served = RunReport {
            job: Some(JobMeta {
                job_id: 7,
                config_hash: 0x1234,
                cache_hit: true,
                queue_seconds: 0.5,
                run_seconds: 0.0,
                attempts: 0,
            }),
            ..RunReport::default()
        };
        let v = obs::json::parse(&served.to_json(None).to_string()).unwrap();
        for key in V1_KEYS {
            assert!(v.get(key).is_some(), "v1 key {key} missing from v2");
        }
        let job = v.get("job").unwrap();
        assert_eq!(job.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(
            job.get("config_hash").unwrap().as_str(),
            Some("0000000000001234")
        );
        assert_eq!(job.get("cache_hit").unwrap().as_bool(), Some(true));
    }
}
