//! Minimal table/CSV rendering for the experiment binaries, so every
//! bench prints rows in the same layout the paper's tables use.

use std::fmt::Write as _;

/// Render an aligned text table. `headers.len()` must match every
/// row's length.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut width: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (w, cell) in width.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let hline: String = width
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    for (h, w) in headers.iter().zip(&width) {
        let _ = write!(out, " {h:>w$} |");
    }
    out.pop();
    out.push('\n');
    out.push_str(&hline);
    out.push('\n');
    for row in rows {
        for (cell, w) in row.iter().zip(&width) {
            let _ = write!(out, " {cell:>w$} |");
        }
        out.pop();
        out.push('\n');
    }
    out
}

/// Render rows as CSV (no quoting — experiment output is numeric).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Format seconds with one decimal, like the paper's tables.
pub fn secs(t: f64) -> String {
    format!("{t:.1}")
}

/// Format a speedup/ratio with two decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["procs", "time"],
            &[
                vec!["24".into(), "2258.5".into()],
                vec!["1536".into(), "245.8".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("procs"));
        assert!(lines[2].contains("2258.5"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_roundtrip() {
        let c = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
