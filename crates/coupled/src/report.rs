//! The shared run report of every driver, plus minimal table/CSV
//! rendering for the experiment binaries (so every bench prints rows
//! in the same layout the paper's tables use).

use crate::engine::Probe;
use crate::timers::{Breakdown, Phase};
use std::fmt::Write as _;

/// Per-step scalar history of a run.
#[derive(Debug, Clone, Default)]
pub struct StepTrace {
    /// Wall time of this step — measured for the serial/threaded
    /// backends, modelled (max over ranks per phase) for the cluster.
    pub step_time: f64,
    /// Load-imbalance indicator measured this step.
    pub lii: f64,
    /// Particle share per rank (fraction of the population).
    pub share: Vec<f64>,
    /// Whether a rebalance happened this step.
    pub rebalanced: bool,
}

/// Unified result of a coupled run. The serial, threaded and
/// modelled-cluster drivers all return this one type (the old
/// `ThreadedRunResult` / `ClusterReport` are aliases of it), so every
/// consumer gets the same breakdown, traffic and per-step trace
/// regardless of which backend produced it.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// H number density per coarse cell at the end of the run.
    pub density_h: Vec<f64>,
    /// Final global particle population.
    pub population: usize,
    /// Total wall time attributed to phases (measured or modelled).
    pub total_time: f64,
    /// Accumulated per-phase times (rank 0's measurement for the
    /// threaded backend; max over ranks per step for the cluster).
    pub breakdown: Breakdown,
    /// Total messages sent in the world (0 without real comm).
    pub transactions: u64,
    /// Total bytes sent in the world (0 without real comm).
    pub bytes: u64,
    /// Number of rebalances performed.
    pub rebalances: usize,
    /// Total particles migrated by rebalancing.
    pub rebalance_migrated: u64,
    /// Exchanges carried per concrete strategy, indexed by
    /// [`vmpi::Strategy::CONCRETE`] order (CC, DC, Sparse). Under
    /// [`vmpi::Strategy::Auto`] the per-exchange decision rule fills
    /// whichever buckets it picks; a fixed strategy fills one.
    pub strategy_uses: [u64; 3],
    /// Per-step traces.
    pub trace: Vec<StepTrace>,
}

/// A [`Probe`] that accumulates phase times and step traces into a
/// [`RunReport`]; the driver fills in the end-of-run fields
/// (diagnostics, traffic, backend counters) and calls
/// [`ReportBuilder::finish`].
#[derive(Debug, Default)]
pub struct ReportBuilder {
    report: RunReport,
}

impl ReportBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn finish(self) -> RunReport {
        self.report
    }
}

impl Probe for ReportBuilder {
    fn phase(&mut self, phase: Phase, seconds: f64) {
        self.report.breakdown[phase] += seconds;
        self.report.total_time += seconds;
    }

    fn step(&mut self, _index: usize, trace: &StepTrace) {
        self.report.trace.push(trace.clone());
    }
}

/// Render an aligned text table. `headers.len()` must match every
/// row's length.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut width: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "ragged table row");
        for (w, cell) in width.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let hline: String = width
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    for (h, w) in headers.iter().zip(&width) {
        let _ = write!(out, " {h:>w$} |");
    }
    out.pop();
    out.push('\n');
    out.push_str(&hline);
    out.push('\n');
    for row in rows {
        for (cell, w) in row.iter().zip(&width) {
            let _ = write!(out, " {cell:>w$} |");
        }
        out.pop();
        out.push('\n');
    }
    out
}

/// Render rows as CSV (no quoting — experiment output is numeric).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Format seconds with one decimal, like the paper's tables.
pub fn secs(t: f64) -> String {
    format!("{t:.1}")
}

/// Format a speedup/ratio with two decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["procs", "time"],
            &[
                vec!["24".into(), "2258.5".into()],
                vec!["1536".into(), "245.8".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("procs"));
        assert!(lines[2].contains("2258.5"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_roundtrip() {
        let c = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
